//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), range/tuple/`prop::collection::vec`
//! strategies, and the `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Unlike upstream proptest there is no shrinking and no failure
//! persistence: cases are generated from a fixed seed, so every run explores
//! the same inputs and failures reproduce immediately.

use rand::rngs::SmallRng;
use rand::Rng;

pub mod test_runner {
    //! Deterministic case generation driven by the [`proptest!`] macro.

    use super::SmallRng;
    use rand::SeedableRng;

    /// Configuration accepted via `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The RNG threaded through strategies by the [`proptest!`] macro.
    #[derive(Debug)]
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        /// A generator with a fixed seed: every test run sees the same cases.
        #[must_use]
        pub fn deterministic() -> Self {
            TestRng(SmallRng::seed_from_u64(0x9e3779b97f4a7c15))
        }
    }
}

use test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.start..self.end)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Sizes accepted by [`vec`]: an exact length or a half-open range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.start..self.end)
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// A `Vec` strategy with `size` elements drawn from `element`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
///
/// Upstream proptest reports a `TestCaseError`; without shrinking there is
/// nothing to recover, so this stub panics like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a `proptest!` body (panicking like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Declares deterministic property tests.
///
/// Supports the upstream surface used in this workspace: an optional
/// `#![proptest_config(...)]` header and `#[test]` functions whose arguments
/// are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (@funcs ($config:expr)) => {};
    (@funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(n in 2usize..8, pair in (0usize..8, -1.0f32..1.0)) {
            prop_assert!((2..8).contains(&n));
            prop_assert!(pair.0 < 8);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }

        #[test]
        fn vec_lengths(fixed in prop::collection::vec(-1.5f32..1.5, 6),
                       ranged in prop::collection::vec((0usize..5, 0usize..5), 0..20)) {
            prop_assert_eq!(fixed.len(), 6);
            prop_assert!(ranged.len() < 20);
            for v in fixed {
                prop_assert!((-1.5..1.5).contains(&v));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        let s = crate::collection::vec(0usize..100, 0..10);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
