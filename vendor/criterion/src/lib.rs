//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the criterion API surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — as a plain wall-clock harness: each benchmark runs a short
//! warm-up, then a fixed number of timed samples, and prints median time per
//! iteration. No statistics, plots, or baselines; numbers are indicative,
//! not rigorous.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Throughput annotation attached to a benchmark (reported, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure under test; [`Bencher::iter`] runs the timing loop.
pub struct Bencher {
    samples: usize,
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `routine`, keeping the median of several samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes a
        // measurable slice of time without running forever.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_sample = (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 10_000);

        let mut sample_times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            sample_times.push(start.elapsed() / per_sample as u32);
        }
        sample_times.sort_unstable();
        self.elapsed_per_iter = sample_times[sample_times.len() / 2];
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Attaches a throughput annotation to subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, f);
        self
    }

    /// Runs one benchmark, passing `input` to the closure alongside the
    /// [`Bencher`].
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Finishes the group (output is flushed per benchmark; kept for API
    /// compatibility).
    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: self.samples,
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut bencher);
        let mut line = format!(
            "{}/{id}: {} per iter",
            self.name,
            format_duration(bencher.elapsed_per_iter)
        );
        if let Some(t) = self.throughput {
            let secs = bencher.elapsed_per_iter.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => {
                    let _ = write!(line, " ({:.3e} elem/s)", n as f64 / secs);
                }
                Throughput::Bytes(n) => {
                    let _ = write!(line, " ({:.3e} B/s)", n as f64 / secs);
                }
            }
        }
        self.criterion.report(&line);
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    /// Suppresses printing (used by the harness's own tests).
    quiet: bool,
}

impl Criterion {
    /// Starts a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 10,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_owned();
        self.benchmark_group(name).bench_function("iter", f);
        self
    }

    fn report(&self, line: &str) {
        if !self.quiet {
            println!("{line}");
        }
    }
}

/// Declares a benchmark group runner, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_benchmarks_run_closures() {
        let mut c = Criterion { quiet: true };
        let mut calls = 0u64;
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| {
                calls += n;
                std::hint::black_box(n * 2)
            });
        });
        group.finish();
        assert!(calls >= 4, "routine never ran");
    }

    #[test]
    fn bench_function_measures_time() {
        let mut c = Criterion { quiet: true };
        c.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn durations_format() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
