//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored crate re-implements exactly the deterministic subset of the
//! `rand 0.8` API the workspace uses:
//!
//! * [`rngs::SmallRng`] — a small, fast PRNG (xoshiro256++ here),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over integer and float ranges,
//! * [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams differ from upstream `rand` (no compatibility is attempted), but
//! every generator is fully deterministic for a given seed, which is all the
//! reproduction needs.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A uniform double in `[0, 1)` built from the top 53 bits of a word.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is irrelevant for a deterministic test stub.
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + ((hi - lo) as f64 * unit_f64(rng)) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                // The closed upper bound has measure zero; treat as half-open.
                lo + ((hi - lo) as f64 * unit_f64(rng)) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges a value can be drawn from (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and good enough for test data and weight
    /// initialisation. Seeded through SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let i = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
        assert!(v.as_slice().choose(&mut rng).is_some());
    }
}
