#!/usr/bin/env bash
# Regenerates every table and figure of the REVELIO paper.
#
# Usage:
#   ./run_experiments.sh           # quick budgets (default)
#   ./run_experiments.sh --full    # paper-scale budgets (50 instances, 500 epochs)
#
# Results print to stdout and land as CSV under target/experiments/.
set -euo pipefail

FLAGS=("$@")

cargo build --release -p revelio-bench

run() {
    echo
    echo "### $1 ####################################################"
    shift
    "$@" "${FLAGS[@]}"
}

BIN=target/release

run "Table III — dataset statistics and model accuracy" "$BIN/table3_datasets"
run "Table IV — explanation AUC on synthetic datasets" "$BIN/table4_auc"
run "Fig. 3 — Fidelity- vs sparsity (factual)" "$BIN/fig3_fidelity_minus"
run "Fig. 4 — Fidelity+ vs sparsity (counterfactual)" "$BIN/fig4_fidelity_plus"
run "Table V — running times" "$BIN/table5_runtime"
run "Fig. 5 — alpha sensitivity" "$BIN/fig5_sensitivity"
run "Fig. 6 — visualisations" "$BIN/fig6_visualization"
run "Tables VI-VII — top-10 message flows" "$BIN/tables6_7_topflows"
run "Table II — empirical complexity" "$BIN/table2_complexity"
run "Ablation — mask-transform design choices" "$BIN/ablation_masks"

echo
echo "All experiment CSVs are under target/experiments/."
