//! FlowX (Gui et al., 2023): flow-level Shapley-style attribution via
//! marginal-contribution sampling, refined by a learning stage.
//!
//! Stage 1 samples random layer-edge removal patterns; each sample's
//! prediction drop is divided equally among the message flows the removal
//! destroyed (the paper's marginal-contribution estimator). Stage 2 seeds
//! learnable flow masks from those estimates and fine-tunes them against the
//! explanation objective — FlowX's "learning" step. Unlike REVELIO, the
//! masks use a plain `σ(I · M)` transform without the tanh squashing or
//! per-layer `exp(w)` weights.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use revelio_core::{
    ControlledExplanation, Deadline, Degradation, ExplainControl, Explainer, Explanation,
    FlowScores, Objective,
};
use revelio_gnn::{Gnn, Instance};
use revelio_graph::FlowIndex;
use revelio_tensor::{Adam, Optimizer, Tensor};

/// FlowX hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct FlowXConfig {
    /// Marginal-contribution sampling iterations (stage 1).
    pub samples: usize,
    /// Per-layer-edge removal probability during sampling.
    pub remove_prob: f64,
    /// Learning-refinement epochs (stage 2).
    pub epochs: usize,
    pub lr: f32,
    /// Sparsity strength in the refinement objective.
    pub alpha: f32,
    pub objective: Objective,
    pub max_flows: usize,
    pub seed: u64,
}

impl Default for FlowXConfig {
    fn default() -> Self {
        FlowXConfig {
            samples: 25,
            remove_prob: 0.15,
            epochs: 100,
            lr: 1e-2,
            alpha: 0.05,
            objective: Objective::Factual,
            max_flows: 2_000_000,
            seed: 0,
        }
    }
}

/// The FlowX baseline.
pub struct FlowX {
    cfg: FlowXConfig,
}

impl FlowX {
    pub fn new(cfg: FlowXConfig) -> FlowX {
        FlowX { cfg }
    }

    pub fn factual() -> FlowX {
        Self::new(FlowXConfig::default())
    }

    pub fn counterfactual() -> FlowX {
        Self::new(FlowXConfig {
            objective: Objective::Counterfactual,
            ..Default::default()
        })
    }

    /// Stage 1: Shapley-style marginal-contribution estimates per flow.
    /// Stops sampling early (keeping the estimates accumulated so far) once
    /// `deadline` expires.
    fn sample_marginals(
        &self,
        model: &Gnn,
        instance: &Instance,
        index: &FlowIndex,
        deadline: &Deadline,
    ) -> Vec<f32> {
        let cfg = &self.cfg;
        let layers = index.num_layers();
        let ne = instance.mp.layer_edge_count();
        let nf = index.num_flows();
        let base = instance.orig_prob();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        let mut marginal = vec![0.0f64; nf];
        let mut count = vec![0u32; nf];
        let mut removed_flags = vec![false; nf];
        for _ in 0..cfg.samples {
            if deadline.expired() {
                break;
            }
            // Random removal pattern over layer edges, independent per layer.
            let removed: Vec<Vec<bool>> = (0..layers)
                .map(|_| (0..ne).map(|_| rng.gen_bool(cfg.remove_prob)).collect())
                .collect();
            // Which flows lose at least one of their layer edges.
            removed_flags.fill(false);
            let mut n_removed = 0usize;
            for (f, flag) in removed_flags.iter_mut().enumerate() {
                let edges = index.flow(f);
                if edges
                    .iter()
                    .enumerate()
                    .any(|(l, &e)| removed[l][e as usize])
                {
                    *flag = true;
                    n_removed += 1;
                }
            }
            if n_removed == 0 {
                continue;
            }
            let masks: Vec<Tensor> = removed
                .iter()
                .map(|layer_removed| {
                    Tensor::from_vec(
                        layer_removed
                            .iter()
                            .map(|&r| if r { 0.0 } else { 1.0 })
                            .collect(),
                        ne,
                        1,
                    )
                })
                .collect();
            let prob = model
                .target_logits(&instance.mp, &instance.x, Some(&masks), instance.target)
                .log_softmax_rows()
                .get(0, instance.class)
                .exp();
            let delta = (base - prob) as f64 / n_removed as f64;
            for (f, &flag) in removed_flags.iter().enumerate() {
                if flag {
                    marginal[f] += delta;
                    count[f] += 1;
                }
            }
        }
        marginal
            .iter()
            .zip(&count)
            .map(|(&m, &c)| if c > 0 { (m / c as f64) as f32 } else { 0.0 })
            .collect()
    }
}

impl Explainer for FlowX {
    fn name(&self) -> &'static str {
        "FlowX"
    }

    fn explain(&self, model: &Gnn, instance: &Instance) -> Explanation {
        self.explain_controlled(model, instance, &ExplainControl::default())
            .explanation
    }

    /// Budget-aware entry point: reuses a cache-shared flow index, shrinks
    /// oversized flow sets instead of failing when `shrink_on_overflow` is
    /// set, and polls the deadline in both the sampling and the refinement
    /// stage, returning the masks learned so far on expiry.
    fn explain_controlled(
        &self,
        model: &Gnn,
        instance: &Instance,
        ctl: &ExplainControl,
    ) -> ControlledExplanation {
        let cfg = &self.cfg;
        let layers = model.num_layers();
        let mut degradation = Degradation {
            epochs_planned: cfg.epochs,
            ..Default::default()
        };
        let index: Arc<FlowIndex> = match &ctl.flow_index {
            Some(idx) if idx.num_layers() == layers => Arc::clone(idx),
            _ if ctl.shrink_on_overflow => {
                let capped =
                    FlowIndex::build_capped(&instance.mp, layers, instance.target, cfg.max_flows);
                degradation.flows_dropped = capped.dropped;
                Arc::new(capped.index)
            }
            _ => Arc::new(
                FlowIndex::build(&instance.mp, layers, instance.target, cfg.max_flows)
                    .unwrap_or_else(|e| panic!("FlowX: {e}")),
            ),
        };
        let ne = instance.mp.layer_edge_count();

        let shapley = self.sample_marginals(model, instance, &index, &ctl.deadline);

        // Stage 2: learning refinement, masks seeded from the estimates.
        let max_abs = shapley
            .iter()
            .fold(0.0f32, |a, &s| a.max(s.abs()))
            .max(1e-6);
        let init: Vec<f32> = shapley.iter().map(|&s| 3.0 * s / max_abs).collect();
        let mask_params = Tensor::from_vec(init, index.num_flows(), 1).requires_grad();
        let mut opt = Adam::new(vec![mask_params.clone()], cfg.lr);

        for epoch in 0..cfg.epochs {
            if ctl.deadline.expired() {
                degradation.deadline_hit = true;
                break;
            }
            degradation.epochs_run = epoch + 1;
            opt.zero_grad();
            let masks: Vec<Tensor> = (0..layers)
                .map(|l| mask_params.sp_matvec(index.incidence(l)).sigmoid())
                .collect();
            let lp_c = model
                .target_logits(&instance.mp, &instance.x, Some(&masks), instance.target)
                .log_softmax_rows()
                .slice_cols(instance.class, instance.class + 1);
            let objective = match cfg.objective {
                Objective::Factual => lp_c.neg(),
                Objective::Counterfactual => {
                    lp_c.exp().neg().add_scalar(1.0).clamp_min(1e-6).ln().neg()
                }
            };
            // Fold the per-layer regulariser terms straight into the loss so
            // the sum needs no non-empty witness (layers ≥ 1 holds, but
            // nothing here depends on it).
            let scale = cfg.alpha / layers as f32;
            let mut loss = objective;
            for mask in &masks {
                let term = match cfg.objective {
                    Objective::Factual => mask.mean_all(),
                    Objective::Counterfactual => mask.neg().add_scalar(1.0).mean_all(),
                };
                loss = loss.add(&term.mul_scalar(scale));
            }
            loss.backward();
            opt.step();
        }

        // Refined masks drive the edge ranking; the reported flow scores are
        // the stage-1 Shapley estimates (matching the paper's Table VI/VII
        // magnitudes), sign-flipped for counterfactual mode.
        let final_masks: Vec<Vec<f32>> = (0..layers)
            .map(|l| {
                let m = mask_params.sp_matvec(index.incidence(l)).sigmoid().to_vec();
                match cfg.objective {
                    Objective::Factual => m,
                    Objective::Counterfactual => m.iter().map(|v| 1.0 - v).collect(),
                }
            })
            .collect();
        let m = instance.mp.num_orig_edges();
        let edge_scores: Vec<f32> = (0..m)
            .map(|e| final_masks.iter().map(|ls| ls[e]).sum::<f32>() / layers as f32)
            .collect();
        let _ = ne;
        let flow_scores = match cfg.objective {
            Objective::Factual => shapley,
            Objective::Counterfactual => shapley.iter().map(|s| -s).collect(),
        };

        ControlledExplanation {
            explanation: Explanation {
                edge_scores,
                layer_edge_scores: Some(final_masks),
                flows: Some(FlowScores {
                    index,
                    scores: flow_scores,
                }),
            },
            degradation,
            converged_mask: None,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use revelio_gnn::{GnnConfig, GnnKind, Task};
    use revelio_graph::{Graph, Target};

    fn setup() -> (Gnn, Instance) {
        let mut b = Graph::builder(4, 2);
        b.undirected_edge(0, 1)
            .undirected_edge(1, 2)
            .undirected_edge(2, 3);
        for v in 0..4 {
            b.node_features(v, &[1.0, v as f32 * 0.2]);
        }
        let g = b.build();
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            2,
            2,
            101,
        ));
        let inst = Instance::for_prediction(&model, g, Target::Node(2));
        (model, inst)
    }

    #[test]
    fn produces_flow_and_edge_scores() {
        let (model, inst) = setup();
        let exp = FlowX::new(FlowXConfig {
            samples: 8,
            epochs: 10,
            ..Default::default()
        })
        .explain(&model, &inst);
        assert_eq!(exp.edge_scores.len(), 6);
        let flows = exp.flows.expect("flow scores");
        assert!(flows.scores.iter().all(|s| s.is_finite()));
        assert!(exp.edge_scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn deterministic_given_seed() {
        let (model, inst) = setup();
        let cfg = FlowXConfig {
            samples: 5,
            epochs: 5,
            ..Default::default()
        };
        let a = FlowX::new(cfg).explain(&model, &inst);
        let b = FlowX::new(cfg).explain(&model, &inst);
        assert_eq!(a.edge_scores, b.edge_scores);
        assert_eq!(a.flows.unwrap().scores, b.flows.unwrap().scores);
    }
}
