//! GNNExplainer (Ying et al., 2019): a learnable edge mask, shared across
//! GNN layers, optimised per instance.

use revelio_core::{
    ControlledExplanation, Degradation, ExplainControl, Explainer, Explanation, Objective,
};
use revelio_gnn::{Gnn, Instance};
use revelio_tensor::{uniform, Adam, Optimizer, Tensor};

/// GNNExplainer hyperparameters. Defaults follow the paper's setup
/// (§V-A: learning rate 1e-2, 500 epochs) and the original regularisers.
#[derive(Debug, Clone, Copy)]
pub struct GnnExplainerConfig {
    pub epochs: usize,
    pub lr: f32,
    /// Mask-size penalty coefficient.
    pub size_coeff: f32,
    /// Mask-entropy penalty coefficient (pushes masks towards 0/1).
    pub entropy_coeff: f32,
    pub objective: Objective,
    pub seed: u64,
}

impl Default for GnnExplainerConfig {
    fn default() -> Self {
        GnnExplainerConfig {
            epochs: 500,
            lr: 1e-2,
            size_coeff: 0.005,
            entropy_coeff: 0.1,
            objective: Objective::Factual,
            seed: 0,
        }
    }
}

/// The GNNExplainer baseline.
pub struct GnnExplainer {
    cfg: GnnExplainerConfig,
}

impl GnnExplainer {
    pub fn new(cfg: GnnExplainerConfig) -> GnnExplainer {
        GnnExplainer { cfg }
    }

    pub fn factual() -> GnnExplainer {
        Self::new(GnnExplainerConfig::default())
    }

    pub fn counterfactual() -> GnnExplainer {
        Self::new(GnnExplainerConfig {
            objective: Objective::Counterfactual,
            ..Default::default()
        })
    }
}

impl Explainer for GnnExplainer {
    fn name(&self) -> &'static str {
        "GNNExplainer"
    }

    fn explain(&self, model: &Gnn, instance: &Instance) -> Explanation {
        self.explain_controlled(model, instance, &ExplainControl::default())
            .explanation
    }

    /// Deadline-aware entry point: stops the mask optimisation early when the
    /// deadline expires; the sigmoid mask at any epoch is a structurally
    /// valid (if less converged) explanation. Flow-index controls do not
    /// apply — this method never enumerates flows.
    fn explain_controlled(
        &self,
        model: &Gnn,
        instance: &Instance,
        ctl: &ExplainControl,
    ) -> ControlledExplanation {
        let cfg = &self.cfg;
        let ne = instance.mp.layer_edge_count();
        let layers = model.num_layers();
        let mut degradation = Degradation {
            epochs_planned: cfg.epochs,
            ..Default::default()
        };

        let mask_params = uniform(ne, 1, 0.1, cfg.seed).requires_grad();
        let mut opt = Adam::new(vec![mask_params.clone()], cfg.lr);

        for epoch in 0..cfg.epochs {
            if ctl.deadline.expired() {
                degradation.deadline_hit = true;
                break;
            }
            degradation.epochs_run = epoch + 1;
            opt.zero_grad();
            let mask = mask_params.sigmoid();
            let masks: Vec<Tensor> = (0..layers).map(|_| mask.clone()).collect();
            let logits =
                model.target_logits(&instance.mp, &instance.x, Some(&masks), instance.target);
            let lp_c = logits
                .log_softmax_rows()
                .slice_cols(instance.class, instance.class + 1);
            let objective = match cfg.objective {
                Objective::Factual => lp_c.neg(),
                Objective::Counterfactual => {
                    lp_c.exp().neg().add_scalar(1.0).clamp_min(1e-6).ln().neg()
                }
            };
            // Size: mean mask (or mean kept mass for counterfactual).
            let size = match cfg.objective {
                Objective::Factual => mask.mean_all(),
                Objective::Counterfactual => mask.neg().add_scalar(1.0).mean_all(),
            };
            // Element entropy: -m log m - (1-m) log(1-m).
            let m = mask.clamp_min(1e-6);
            let om = mask.neg().add_scalar(1.0).clamp_min(1e-6);
            let entropy = m.mul(&m.ln()).add(&om.mul(&om.ln())).neg().mean_all();
            let loss = objective
                .add(&size.mul_scalar(cfg.size_coeff))
                .add(&entropy.mul_scalar(cfg.entropy_coeff));
            loss.backward();
            opt.step();
        }

        let mask = mask_params.sigmoid().to_vec();
        let m = instance.mp.num_orig_edges();
        let edge_scores: Vec<f32> = match cfg.objective {
            Objective::Factual => mask[..m].to_vec(),
            Objective::Counterfactual => mask[..m].iter().map(|v| 1.0 - v).collect(),
        };
        ControlledExplanation {
            explanation: Explanation {
                edge_scores,
                layer_edge_scores: None,
                flows: None,
            },
            degradation,
            converged_mask: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_gnn::{GnnConfig, GnnKind, Task, TrainConfig};
    use revelio_graph::{Graph, Target};

    #[test]
    fn learns_mask_in_range_and_right_length() {
        let mut b = Graph::builder(4, 2);
        b.undirected_edge(0, 1)
            .undirected_edge(1, 2)
            .undirected_edge(2, 3);
        b.node_labels(vec![0, 1, 0, 1]);
        let g = b.build();
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            2,
            2,
            41,
        ));
        revelio_gnn::train_node_classifier(
            &model,
            &g,
            &[0, 1, 2, 3],
            &TrainConfig {
                epochs: 30,
                ..Default::default()
            },
        );
        let inst = Instance::for_prediction(&model, g, Target::Node(1));
        let exp = GnnExplainer::new(GnnExplainerConfig {
            epochs: 50,
            ..Default::default()
        })
        .explain(&model, &inst);
        assert_eq!(exp.edge_scores.len(), 6);
        assert!(exp.edge_scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }
}
