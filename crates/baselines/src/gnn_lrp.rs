//! GNN-LRP (Schnake et al., 2021): decomposition-based flow scoring.
//!
//! Implemented as a z⁺-rule relevance decomposition chained along message
//! flows (DESIGN.md §4): at each layer, a node's relevance is distributed
//! over its incoming layer edges proportionally to the positive mass of the
//! message each edge carries. Because the per-node distribution ratios do
//! not depend on the relevance amount, a flow's score factorises into the
//! product of its per-layer shares times the relevance seeded at its end
//! node — mirroring GNN-LRP's walk-wise relevance with an `L`-fold chain.
//!
//! Like the original, the method is **model-specific**: it supports GCN and
//! GIN but not GAT (the paper notes the same limitation).

use std::sync::Arc;

use revelio_core::{
    aggregate_flow_scores, ControlledExplanation, Degradation, ExplainControl, Explainer,
    Explanation, FlowScores,
};
use revelio_gnn::{Gnn, Instance, Layer, Task};
use revelio_graph::{FlowIndex, Target};

/// The GNN-LRP baseline.
pub struct GnnLrp {
    /// Flow-enumeration cap (explicit failure beyond it).
    pub max_flows: usize,
}

impl Default for GnnLrp {
    fn default() -> Self {
        GnnLrp {
            max_flows: 2_000_000,
        }
    }
}

impl GnnLrp {
    /// Positive message mass `p_e` per layer edge for one layer, given the
    /// layer's input `h` (row-major `[n, d]`).
    fn positive_message_mass(layer: &Layer, instance: &Instance, h: &[f32], d: usize) -> Vec<f32> {
        let mp = &instance.mp;
        let norm = mp.gcn_norm();
        match layer {
            Layer::Gcn { weight, .. } => {
                // msg_e = (h[src] · W) * norm_e; mass = Σ_dim max(0, msg).
                let w = weight.data();
                let (din, dout) = weight.shape();
                assert_eq!(din, d, "layer input dim mismatch");
                // Precompute per-node transformed positive mass.
                let n = mp.num_nodes();
                let mut node_mass = vec![0.0f32; n];
                for v in 0..n {
                    let row = &h[v * d..(v + 1) * d];
                    let mut mass = 0.0f32;
                    for j in 0..dout {
                        let mut acc = 0.0f32;
                        for (i, &hv) in row.iter().enumerate() {
                            acc += hv * w[i * dout + j];
                        }
                        mass += acc.max(0.0);
                    }
                    node_mass[v] = mass;
                }
                (0..mp.layer_edge_count())
                    .map(|e| node_mass[mp.src()[e]] * norm[e])
                    .collect()
            }
            Layer::Gin { .. } => {
                // msg_e = h[src]; mass = Σ_dim max(0, h).
                let n = mp.num_nodes();
                let mut node_mass = vec![0.0f32; n];
                for v in 0..n {
                    node_mass[v] = h[v * d..(v + 1) * d].iter().map(|x| x.max(0.0)).sum();
                }
                (0..mp.layer_edge_count())
                    .map(|e| node_mass[mp.src()[e]])
                    .collect()
            }
            Layer::Gat { .. } => {
                panic!("GNN-LRP is not compatible with GAT (model-specific method)")
            }
        }
    }
}

impl Explainer for GnnLrp {
    fn name(&self) -> &'static str {
        "GNN-LRP"
    }

    fn explain(&self, model: &Gnn, instance: &Instance) -> Explanation {
        self.explain_controlled(model, instance, &ExplainControl::default())
            .explanation
    }

    /// Budget-aware entry point: reuses a cache-shared flow index when one
    /// is supplied and (with `shrink_on_overflow`) decomposes over the
    /// capped flow prefix instead of failing on oversized instances. The
    /// method itself is single-pass, so deadlines cannot interrupt it
    /// mid-way.
    fn explain_controlled(
        &self,
        model: &Gnn,
        instance: &Instance,
        ctl: &ExplainControl,
    ) -> ControlledExplanation {
        let layers = model.num_layers();
        let mp = &instance.mp;
        let mut degradation = Degradation::default();
        let index: Arc<FlowIndex> = match &ctl.flow_index {
            Some(idx) if idx.num_layers() == layers => Arc::clone(idx),
            _ if ctl.shrink_on_overflow => {
                let capped = FlowIndex::build_capped(mp, layers, instance.target, self.max_flows);
                degradation.flows_dropped = capped.dropped;
                Arc::new(capped.index)
            }
            _ => Arc::new(
                FlowIndex::build(mp, layers, instance.target, self.max_flows)
                    .unwrap_or_else(|e| panic!("GNN-LRP: {e}")),
            ),
        };

        // Layer inputs: features, then each layer's output.
        let outs = model.forward_layers(mp, &instance.x, None);
        let mut inputs: Vec<(Vec<f32>, usize)> = vec![(instance.x.to_vec(), instance.x.cols())];
        for out in outs.iter().take(layers - 1) {
            inputs.push((out.to_vec(), out.cols()));
        }

        // Per-layer in-edge shares.
        let mut shares: Vec<Vec<f32>> = Vec::with_capacity(layers);
        for (l, layer) in model.layers().iter().enumerate() {
            let (h, d) = &inputs[l];
            let mass = Self::positive_message_mass(layer, instance, h, *d);
            // Normalise within each destination node's in-edges.
            let mut denom = vec![0.0f32; mp.num_nodes()];
            for e in 0..mp.layer_edge_count() {
                denom[mp.dst()[e]] += mass[e];
            }
            let share: Vec<f32> = (0..mp.layer_edge_count())
                .map(|e| {
                    let dst = mp.dst()[e];
                    if denom[dst] > 0.0 {
                        mass[e] / denom[dst]
                    } else {
                        // Uniform fallback when no positive mass reaches dst.
                        1.0 / mp.in_degree(dst) as f32
                    }
                })
                .collect();
            shares.push(share);
        }

        // Relevance seeded at the flow's end node.
        let end_relevance: Vec<f32> = match (model.config().task, instance.target) {
            (Task::NodeClassification, Target::Node(_)) => vec![1.0; mp.num_nodes()],
            (Task::GraphClassification, Target::Graph) => {
                // Positive readout contribution of each node to the class.
                let h = outs.last().expect("layers").to_vec();
                let d = outs.last().expect("layers").cols();
                let (w, _) = model.readout().expect("graph task readout");
                let wd = w.data();
                let c = instance.class;
                let cols = w.cols();
                let mut r: Vec<f32> = (0..mp.num_nodes())
                    .map(|v| {
                        let contrib: f32 = (0..d).map(|j| h[v * d + j] * wd[j * cols + c]).sum();
                        contrib.max(0.0)
                    })
                    .collect();
                let total: f32 = r.iter().sum();
                if total > 0.0 {
                    for x in &mut r {
                        *x /= total;
                    }
                } else {
                    r.fill(1.0 / mp.num_nodes() as f32);
                }
                r
            }
            (task, target) => panic!("target {target:?} does not match task {task:?}"),
        };

        // Flow score = end relevance × product of per-layer shares.
        let scores: Vec<f32> = (0..index.num_flows())
            .map(|f| {
                let edges = index.flow(f);
                let end = mp.dst()[edges[layers - 1] as usize];
                let mut s = end_relevance[end];
                for (l, &e) in edges.iter().enumerate() {
                    s *= shares[l][e as usize];
                }
                s
            })
            .collect();

        let (layer_edge_scores, edge_scores) = aggregate_flow_scores(mp, &index, &scores);
        ControlledExplanation {
            explanation: Explanation {
                edge_scores,
                layer_edge_scores: Some(layer_edge_scores),
                flows: Some(FlowScores { index, scores }),
            },
            degradation,
            converged_mask: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_gnn::GnnConfig;
    use revelio_gnn::GnnKind;
    use revelio_graph::Graph;

    fn setup(kind: GnnKind) -> (Gnn, Instance) {
        let mut b = Graph::builder(4, 2);
        b.undirected_edge(0, 1)
            .undirected_edge(1, 2)
            .undirected_edge(2, 3);
        for v in 0..4 {
            b.node_features(v, &[1.0, v as f32 * 0.3]);
        }
        let g = b.build();
        let model = Gnn::new(GnnConfig::standard(
            kind,
            Task::NodeClassification,
            2,
            2,
            91,
        ));
        let inst = Instance::for_prediction(&model, g, Target::Node(1));
        (model, inst)
    }

    #[test]
    fn flow_scores_sum_to_seeded_relevance() {
        let (model, inst) = setup(GnnKind::Gcn);
        let exp = GnnLrp::default().explain(&model, &inst);
        let flows = exp.flows.expect("flow scores present");
        // Shares are normalised per node, so flow scores ending at the
        // target sum to the seeded relevance (1.0).
        let total: f32 = flows.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "total relevance {total}");
        assert!(flows.scores.iter().all(|s| *s >= 0.0));
    }

    #[test]
    fn gin_supported() {
        let (model, inst) = setup(GnnKind::Gin);
        let exp = GnnLrp::default().explain(&model, &inst);
        assert_eq!(exp.edge_scores.len(), 6);
    }

    #[test]
    #[should_panic(expected = "not compatible with GAT")]
    fn gat_rejected() {
        let (model, inst) = setup(GnnKind::Gat);
        let _ = GnnLrp::default().explain(&model, &inst);
    }
}
