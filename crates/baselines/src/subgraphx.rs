//! SubgraphX (Yuan et al., 2021): Monte-Carlo tree search over connected
//! node subsets, scored by the model's prediction on the induced subgraph.
//!
//! The search starts from the full node set and prunes one node per step;
//! leaf value is the predicted probability of the explained class on the
//! induced subgraph (the "prize" also used by the reference implementation's
//! zero-filling mode). Edge scores accumulate the best value of any visited
//! subgraph containing the edge, giving a graded ranking. The iteration
//! budget is capped, mirroring the paper's caveat that SubgraphX runs with
//! reduced settings (Table V's asterisk).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use revelio_core::{Explainer, Explanation};
use revelio_gnn::{Gnn, Instance};
use revelio_graph::Target;

/// SubgraphX hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct SubgraphXConfig {
    /// MCTS rollouts.
    pub rollouts: usize,
    /// Minimum subgraph size (search depth bound).
    pub min_nodes: usize,
    /// UCT exploration constant.
    pub exploration: f64,
    pub seed: u64,
}

impl Default for SubgraphXConfig {
    fn default() -> Self {
        SubgraphXConfig {
            rollouts: 30,
            min_nodes: 4,
            exploration: 5.0,
            seed: 0,
        }
    }
}

/// The SubgraphX baseline.
pub struct SubgraphX {
    cfg: SubgraphXConfig,
}

impl SubgraphX {
    pub fn new(cfg: SubgraphXConfig) -> SubgraphX {
        SubgraphX { cfg }
    }
}

impl Default for SubgraphX {
    fn default() -> Self {
        SubgraphX::new(SubgraphXConfig::default())
    }
}

#[derive(Default)]
struct NodeStats {
    visits: u32,
    total_value: f64,
    /// Children keyed by the removed node.
    children: Vec<(usize, Vec<usize>)>,
    expanded: bool,
}

fn subset_key(subset: &[usize]) -> String {
    let strs: Vec<String> = subset.iter().map(ToString::to_string).collect();
    strs.join(",")
}

/// Model probability of the explained class on the subgraph induced by
/// `subset`.
fn induced_value(model: &Gnn, instance: &Instance, subset: &[usize]) -> f64 {
    let keep: Vec<usize> = instance
        .graph
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, &(s, d))| {
            subset.binary_search(&(s as usize)).is_ok()
                && subset.binary_search(&(d as usize)).is_ok()
        })
        .map(|(e, _)| e)
        .collect();
    let g = instance.graph.with_edges(&keep);
    model.predict_probs(&g, instance.target)[instance.class] as f64
}

impl Explainer for SubgraphX {
    fn name(&self) -> &'static str {
        "SubgraphX"
    }

    fn explain(&self, model: &Gnn, instance: &Instance) -> Explanation {
        let cfg = &self.cfg;
        let n = instance.graph.num_nodes();
        let protected = match instance.target {
            Target::Node(v) => Some(v),
            Target::Graph => None,
        };
        let root: Vec<usize> = (0..n).collect();
        let mut tree: HashMap<String, NodeStats> = HashMap::new();
        tree.insert(subset_key(&root), NodeStats::default());
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        // Best value seen per edge across all evaluated subsets.
        let mut edge_best = vec![0.0f64; instance.graph.num_edges()];
        let record = |subset: &[usize], value: f64, edge_best: &mut [f64]| {
            for (e, &(s, d)) in instance.graph.edges().iter().enumerate() {
                if subset.binary_search(&(s as usize)).is_ok()
                    && subset.binary_search(&(d as usize)).is_ok()
                    && value > edge_best[e]
                {
                    edge_best[e] = value;
                }
            }
        };

        for _ in 0..cfg.rollouts {
            // Selection + expansion.
            let mut path: Vec<Vec<usize>> = vec![root.clone()];
            loop {
                let current = path.last().expect("non-empty path").clone();
                if current.len() <= cfg.min_nodes {
                    break;
                }
                let key = subset_key(&current);
                let parent_visits = tree.get(&key).map_or(0, |s| s.visits);
                let stats = tree.entry(key).or_default();
                if !stats.expanded {
                    // Expand: children remove one removable node each.
                    let mut removable: Vec<usize> = current
                        .iter()
                        .copied()
                        .filter(|v| Some(*v) != protected)
                        .collect();
                    removable.shuffle(&mut rng);
                    // Bounded branching factor keeps the tree tractable.
                    for &v in removable.iter().take(8) {
                        let child: Vec<usize> =
                            current.iter().copied().filter(|&u| u != v).collect();
                        stats.children.push((v, child));
                    }
                    stats.expanded = true;
                }
                if stats.children.is_empty() {
                    break;
                }
                // UCT selection over children.
                let children = stats.children.clone();
                let total = parent_visits.max(1) as f64;
                let mut best: Option<(f64, &Vec<usize>)> = None;
                for (_, child) in &children {
                    let ck = subset_key(child);
                    let (v, w) = tree
                        .get(&ck)
                        .map_or((0u32, 0.0f64), |s| (s.visits, s.total_value));
                    let mean = if v == 0 { 0.5 } else { w / v as f64 };
                    let uct = mean + cfg.exploration * (total.ln() / (1.0 + v as f64)).sqrt();
                    if best.as_ref().is_none_or(|(b, _)| uct > *b) {
                        best = Some((uct, child));
                    }
                }
                let (_, chosen) = best.expect("children non-empty");
                let chosen = chosen.clone();
                let first_visit = !tree.contains_key(&subset_key(&chosen));
                path.push(chosen);
                if first_visit {
                    break;
                }
            }

            // Evaluation + backpropagation.
            let leaf = path.last().expect("non-empty");
            let value = induced_value(model, instance, leaf);
            record(leaf, value, &mut edge_best);
            for subset in &path {
                let stats = tree.entry(subset_key(subset)).or_default();
                stats.visits += 1;
                stats.total_value += value;
            }
        }

        Explanation::from_edge_scores(edge_best.iter().map(|&v| v as f32).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_gnn::{GnnConfig, GnnKind, Task};
    use revelio_graph::Graph;

    #[test]
    fn produces_scores_and_respects_protected_target() {
        let mut b = Graph::builder(6, 2);
        for i in 0..5 {
            b.undirected_edge(i, i + 1);
        }
        for v in 0..6 {
            b.node_features(v, &[1.0, v as f32 * 0.1]);
        }
        let g = b.build();
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            2,
            2,
            81,
        ));
        let inst = Instance::for_prediction(&model, g, Target::Node(2));
        let exp = SubgraphX::new(SubgraphXConfig {
            rollouts: 10,
            ..Default::default()
        })
        .explain(&model, &inst);
        assert_eq!(exp.edge_scores.len(), 10);
        assert!(exp.edge_scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut b = Graph::builder(5, 2);
        for i in 0..4 {
            b.undirected_edge(i, i + 1);
        }
        let g = b.build();
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gin,
            Task::NodeClassification,
            2,
            2,
            82,
        ));
        let inst = Instance::for_prediction(&model, g, Target::Node(1));
        let cfg = SubgraphXConfig {
            rollouts: 6,
            ..Default::default()
        };
        let a = SubgraphX::new(cfg).explain(&model, &inst);
        let b2 = SubgraphX::new(cfg).explain(&model, &inst);
        assert_eq!(a.edge_scores, b2.edge_scores);
    }
}
