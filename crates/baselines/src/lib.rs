//! Baseline GNN explainers (§V-A of the paper).
//!
//! Nine baselines spanning every family of the Yuan et al. taxonomy:
//!
//! | Method | Family | Output granularity |
//! |---|---|---|
//! | [`GradCam`] | gradient-based | node → edge |
//! | [`DeepLift`] | gradient-based | feature → node → edge |
//! | [`GnnExplainer`] | perturbation (learned mask) | edge |
//! | [`PgExplainer`] | perturbation, group-level | edge |
//! | [`GraphMask`] | perturbation, group-level | layer edge |
//! | [`PgmExplainer`] | surrogate (probabilistic) | node → edge |
//! | [`SubgraphX`] | search (MCTS + Shapley) | subgraph → edge |
//! | [`GnnLrp`] | decomposition | message flow |
//! | [`FlowX`] | perturbation (Shapley + learning) | message flow |
//!
//! Each implements [`revelio_core::Explainer`] so the evaluation harness can
//! treat them uniformly. The algorithmic variant implemented for each method
//! is documented in `DESIGN.md` §4.

#![deny(clippy::print_stdout, clippy::print_stderr)]

use std::error::Error;
use std::fmt;

mod flowx;
mod gnn_explainer;
mod gnn_lrp;
mod gradient;
mod graph_mask;
mod pg_explainer;
mod pgm_explainer;
mod subgraphx;

pub use flowx::{FlowX, FlowXConfig};
pub use gnn_explainer::{GnnExplainer, GnnExplainerConfig};
pub use gnn_lrp::GnnLrp;
pub use gradient::{DeepLift, GradCam};
pub use graph_mask::{GraphMask, GraphMaskConfig};
pub use pg_explainer::{PgExplainer, PgExplainerConfig};
pub use pgm_explainer::{PgmExplainer, PgmExplainerConfig};
pub use subgraphx::{SubgraphX, SubgraphXConfig};

/// A group-level explainer ([`PgExplainer`], [`GraphMask`]) was asked to
/// explain before `fit` installed its shared parameters.
///
/// The `Explainer::explain` trait method never surfaces this — it fits on
/// the single instance it was handed (degrading to instance-level) — but
/// the inherent `try_explain` methods return it so callers that require
/// the group-level semantics can refuse instead of silently degrading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotFitted {
    /// The explainer's `name()`.
    pub method: &'static str,
}

impl fmt::Display for NotFitted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} has not been fitted; call fit first", self.method)
    }
}

impl Error for NotFitted {}
