//! PGExplainer (Luo et al., 2020): a group-level explainer that trains a
//! shared MLP mapping endpoint embeddings to edge importance, with a
//! concrete (Gumbel-sigmoid) relaxation during training.

use std::cell::RefCell;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use revelio_core::{Explainer, Explanation, Objective};

use crate::NotFitted;
use revelio_gnn::{Gnn, Instance, Task};
use revelio_graph::Target;
use revelio_tensor::{glorot_uniform, Adam, Optimizer, Tensor};

/// PGExplainer hyperparameters. The paper's setup uses learning rate 3e-3
/// and 500 epochs; the default epoch count here is lower because training
/// iterates over the whole instance group per epoch (use
/// [`PgExplainerConfig::paper`] for the full budget).
#[derive(Debug, Clone, Copy)]
pub struct PgExplainerConfig {
    pub epochs: usize,
    pub lr: f32,
    pub hidden: usize,
    /// Concrete-distribution temperature annealed `temp_start → temp_end`.
    pub temp_start: f32,
    pub temp_end: f32,
    pub size_coeff: f32,
    pub objective: Objective,
    pub seed: u64,
}

impl Default for PgExplainerConfig {
    fn default() -> Self {
        PgExplainerConfig {
            epochs: 30,
            lr: 3e-3,
            hidden: 64,
            temp_start: 5.0,
            temp_end: 1.0,
            size_coeff: 0.01,
            objective: Objective::Factual,
            seed: 0,
        }
    }
}

impl PgExplainerConfig {
    /// The paper's full training budget (500 epochs).
    pub fn paper() -> Self {
        PgExplainerConfig {
            epochs: 500,
            ..Default::default()
        }
    }
}

struct Mlp {
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
}

impl Mlp {
    fn new(in_dim: usize, hidden: usize, seed: u64) -> Mlp {
        Mlp {
            w1: glorot_uniform(in_dim, hidden, seed).requires_grad(),
            b1: Tensor::zeros(1, hidden).requires_grad(),
            w2: glorot_uniform(hidden, 1, seed ^ 0xfeed).requires_grad(),
            b2: Tensor::zeros(1, 1).requires_grad(),
        }
    }

    fn params(&self) -> Vec<Tensor> {
        vec![
            self.w1.clone(),
            self.b1.clone(),
            self.w2.clone(),
            self.b2.clone(),
        ]
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        x.matmul(&self.w1)
            .add_row_broadcast(&self.b1)
            .relu()
            .matmul(&self.w2)
            .add_row_broadcast(&self.b2)
    }
}

/// The PGExplainer baseline. Call [`PgExplainer::fit`] on a group of
/// instances before explaining; an unfitted explainer fits itself on the
/// single instance it is asked to explain (degrading to instance-level).
pub struct PgExplainer {
    cfg: PgExplainerConfig,
    mlp: RefCell<Option<Mlp>>,
}

impl PgExplainer {
    pub fn new(cfg: PgExplainerConfig) -> PgExplainer {
        PgExplainer {
            cfg,
            mlp: RefCell::new(None),
        }
    }

    /// Whether [`PgExplainer::fit`] has run.
    pub fn is_fitted(&self) -> bool {
        self.mlp.borrow().is_some()
    }

    /// Node embeddings used as MLP inputs: the last hidden layer for node
    /// tasks, the final layer for graph tasks — detached from the model's
    /// autodiff graph.
    fn embeddings(model: &Gnn, instance: &Instance) -> Tensor {
        let outs = model.forward_layers(&instance.mp, &instance.x, None);
        let idx = match model.config().task {
            Task::NodeClassification => model.num_layers().saturating_sub(2),
            Task::GraphClassification => model.num_layers() - 1,
        };
        outs[idx].detach()
    }

    /// Per-layer-edge MLP input rows: `[z_u ; z_v]`, plus `z_target` for
    /// node tasks (following the original).
    fn edge_inputs(instance: &Instance, z: &Tensor) -> Tensor {
        let src = z.gather_rows(instance.mp.src());
        let dst = z.gather_rows(instance.mp.dst());
        let cat = src.concat_cols(&dst);
        match instance.target {
            Target::Node(v) => {
                let zt = z.gather_rows(&vec![v; instance.mp.layer_edge_count()]);
                cat.concat_cols(&zt)
            }
            Target::Graph => cat,
        }
    }

    fn input_dim(model: &Gnn, task_is_node: bool) -> usize {
        let h = match model.config().task {
            Task::NodeClassification => model.config().hidden_dim,
            Task::GraphClassification => model.config().hidden_dim,
        };
        if task_is_node {
            3 * h
        } else {
            2 * h
        }
    }

    /// Trains the shared edge-scoring MLP over a group of instances.
    pub fn fit_group(&self, model: &Gnn, instances: &[&Instance]) {
        assert!(!instances.is_empty(), "PGExplainer.fit needs instances");
        let cfg = &self.cfg;
        let is_node = model.config().task == Task::NodeClassification;
        let mlp = Mlp::new(Self::input_dim(model, is_node), cfg.hidden, cfg.seed);
        let mut opt = Adam::new(mlp.params(), cfg.lr);
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x96);

        // Precompute embeddings and edge inputs per instance.
        let prepared: Vec<Tensor> = instances
            .iter()
            .map(|inst| {
                let z = Self::embeddings(model, inst);
                Self::edge_inputs(inst, &z)
            })
            .collect();

        for epoch in 0..cfg.epochs {
            let t = epoch as f32 / cfg.epochs.max(1) as f32;
            let temp = cfg.temp_start * (cfg.temp_end / cfg.temp_start).powf(t);
            for (inst, inputs) in instances.iter().zip(&prepared) {
                opt.zero_grad();
                let logits = mlp.forward(inputs);
                // Concrete relaxation: σ((logit + ln u − ln(1−u)) / τ).
                let noise: Vec<f32> = (0..logits.rows())
                    .map(|_| {
                        let u: f32 = rng.gen_range(1e-6..1.0 - 1e-6);
                        u.ln() - (1.0 - u).ln()
                    })
                    .collect();
                let noise_t = Tensor::from_vec(noise, logits.rows(), 1);
                let gate = logits.add(&noise_t).mul_scalar(1.0 / temp).sigmoid();
                let masks: Vec<Tensor> = (0..model.num_layers()).map(|_| gate.clone()).collect();
                let out = model.target_logits(&inst.mp, &inst.x, Some(&masks), inst.target);
                let lp_c = out
                    .log_softmax_rows()
                    .slice_cols(inst.class, inst.class + 1);
                let objective = match cfg.objective {
                    Objective::Factual => lp_c.neg(),
                    Objective::Counterfactual => {
                        lp_c.exp().neg().add_scalar(1.0).clamp_min(1e-6).ln().neg()
                    }
                };
                let size = match cfg.objective {
                    Objective::Factual => gate.mean_all(),
                    Objective::Counterfactual => gate.neg().add_scalar(1.0).mean_all(),
                };
                objective.add(&size.mul_scalar(cfg.size_coeff)).backward();
                opt.step();
            }
        }
        *self.mlp.borrow_mut() = Some(mlp);
    }

    /// Pure inference through the fitted MLP; refuses with [`NotFitted`]
    /// instead of self-fitting, so callers that require the group-level
    /// semantics never silently degrade to instance-level.
    pub fn try_explain(&self, model: &Gnn, instance: &Instance) -> Result<Explanation, NotFitted> {
        let mlp_ref = self.mlp.borrow();
        let mlp = mlp_ref.as_ref().ok_or(NotFitted {
            method: "PGExplainer",
        })?;
        let z = Self::embeddings(model, instance);
        let inputs = Self::edge_inputs(instance, &z);
        let gate = mlp.forward(&inputs).sigmoid().to_vec();
        let m = instance.mp.num_orig_edges();
        let edge_scores = match self.cfg.objective {
            Objective::Factual => gate[..m].to_vec(),
            Objective::Counterfactual => gate[..m].iter().map(|v| 1.0 - v).collect(),
        };
        Ok(Explanation::from_edge_scores(edge_scores))
    }
}

impl Explainer for PgExplainer {
    fn name(&self) -> &'static str {
        "PGExplainer"
    }

    fn fit(&self, model: &Gnn, instances: &[&Instance]) {
        self.fit_group(model, instances);
    }

    fn explain(&self, model: &Gnn, instance: &Instance) -> Explanation {
        match self.try_explain(model, instance) {
            Ok(exp) => exp,
            Err(NotFitted { .. }) => {
                self.fit_group(model, &[instance]);
                // fit_group unconditionally installs the MLP.
                match self.try_explain(model, instance) {
                    Ok(exp) => exp,
                    Err(e) => unreachable!("{e}"),
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use revelio_gnn::{GnnConfig, GnnKind};
    use revelio_graph::Graph;

    #[test]
    fn fit_then_explain_is_deterministic_inference() {
        let mut b = Graph::builder(4, 2);
        b.undirected_edge(0, 1)
            .undirected_edge(1, 2)
            .undirected_edge(2, 3);
        let g = b.build();
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            2,
            2,
            51,
        ));
        let i1 = Instance::for_prediction(&model, g.clone(), Target::Node(1));
        let i2 = Instance::for_prediction(&model, g, Target::Node(2));
        let pg = PgExplainer::new(PgExplainerConfig {
            epochs: 5,
            ..Default::default()
        });
        pg.fit_group(&model, &[&i1, &i2]);
        assert!(pg.is_fitted());
        let a = pg.explain(&model, &i1);
        let b2 = pg.explain(&model, &i1);
        assert_eq!(a.edge_scores, b2.edge_scores);
        assert_eq!(a.edge_scores.len(), 6);
    }

    #[test]
    fn try_explain_refuses_before_fit() {
        let mut b = Graph::builder(3, 2);
        b.undirected_edge(0, 1).undirected_edge(1, 2);
        let g = b.build();
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            2,
            2,
            53,
        ));
        let inst = Instance::for_prediction(&model, g, Target::Node(1));
        let pg = PgExplainer::new(PgExplainerConfig {
            epochs: 2,
            ..Default::default()
        });
        match pg.try_explain(&model, &inst) {
            Err(err) => assert_eq!(err.method, "PGExplainer"),
            Ok(_) => panic!("unfitted try_explain must refuse"),
        }
        assert!(!pg.is_fitted());
        pg.fit_group(&model, &[&inst]);
        assert!(pg.try_explain(&model, &inst).is_ok());
    }

    #[test]
    fn unfitted_explainer_self_fits() {
        let mut b = Graph::builder(3, 2);
        b.undirected_edge(0, 1).undirected_edge(1, 2);
        let g = b.build();
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gin,
            Task::NodeClassification,
            2,
            2,
            52,
        ));
        let inst = Instance::for_prediction(&model, g, Target::Node(0));
        let pg = PgExplainer::new(PgExplainerConfig {
            epochs: 3,
            ..Default::default()
        });
        let exp = pg.explain(&model, &inst);
        assert_eq!(exp.edge_scores.len(), 4);
        assert!(pg.is_fitted());
    }
}
