//! PGM-Explainer (Vu & Thai, 2020): a black-box probabilistic method that
//! perturbs node features and measures statistical dependence between each
//! node's perturbation indicator and the prediction change.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use revelio_core::{Explainer, Explanation};
use revelio_gnn::{Gnn, Instance};

/// PGM-Explainer hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct PgmExplainerConfig {
    /// Number of random perturbation samples.
    pub samples: usize,
    /// Probability that a node's features are perturbed in one sample.
    pub perturb_prob: f64,
    /// Prediction-probability drop that counts as "changed".
    pub change_threshold: f32,
    pub seed: u64,
}

impl Default for PgmExplainerConfig {
    fn default() -> Self {
        PgmExplainerConfig {
            samples: 100,
            perturb_prob: 0.3,
            change_threshold: 0.05,
            seed: 0,
        }
    }
}

/// The PGM-Explainer baseline.
pub struct PgmExplainer {
    cfg: PgmExplainerConfig,
}

impl PgmExplainer {
    pub fn new(cfg: PgmExplainerConfig) -> PgmExplainer {
        PgmExplainer { cfg }
    }
}

impl Default for PgmExplainer {
    fn default() -> Self {
        PgmExplainer::new(PgmExplainerConfig::default())
    }
}

/// Chi-square statistic of a 2×2 contingency table (with 0.5 continuity
/// padding to avoid division by zero).
fn chi_square_2x2(a: f64, b: f64, c: f64, d: f64) -> f64 {
    let (a, b, c, d) = (a + 0.5, b + 0.5, c + 0.5, d + 0.5);
    let n = a + b + c + d;
    let num = n * (a * d - b * c).powi(2);
    let den = (a + b) * (c + d) * (a + c) * (b + d);
    num / den
}

impl Explainer for PgmExplainer {
    fn name(&self) -> &'static str {
        "PGMExplainer"
    }

    fn explain(&self, model: &Gnn, instance: &Instance) -> Explanation {
        let cfg = &self.cfg;
        let n = instance.graph.num_nodes();
        let f = instance.graph.feat_dim();
        let base_prob = instance.orig_prob();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        // Per-feature column means, the perturbation fill value.
        let feats = instance.graph.features();
        let mut mean = vec![0.0f32; f];
        for v in 0..n {
            for j in 0..f {
                mean[j] += feats[v * f + j];
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }

        // Contingency counts per node: [perturbed & changed, perturbed &
        // unchanged, untouched & changed, untouched & unchanged].
        let mut table = vec![[0u32; 4]; n];
        for _ in 0..cfg.samples {
            let perturbed: Vec<bool> = (0..n).map(|_| rng.gen_bool(cfg.perturb_prob)).collect();
            if !perturbed.iter().any(|&p| p) {
                continue;
            }
            let mut new_feats = feats.to_vec();
            for (v, &p) in perturbed.iter().enumerate() {
                if p {
                    new_feats[v * f..(v + 1) * f].copy_from_slice(&mean);
                }
            }
            let g2 = instance.graph.with_features(new_feats);
            let prob = model.predict_probs(&g2, instance.target)[instance.class];
            let changed = base_prob - prob > cfg.change_threshold;
            for (v, &p) in perturbed.iter().enumerate() {
                let idx = match (p, changed) {
                    (true, true) => 0,
                    (true, false) => 1,
                    (false, true) => 2,
                    (false, false) => 3,
                };
                table[v][idx] += 1;
            }
        }

        let node_scores: Vec<f32> = table
            .iter()
            .map(|t| {
                let chi = chi_square_2x2(t[0] as f64, t[1] as f64, t[2] as f64, t[3] as f64);
                // Direction: only count dependence where perturbation
                // associates with change.
                let assoc = (t[0] as f64) * (t[3] as f64) - (t[1] as f64) * (t[2] as f64);
                if assoc > 0.0 {
                    chi as f32
                } else {
                    0.0
                }
            })
            .collect();

        let edge_scores = instance
            .graph
            .edges()
            .iter()
            .map(|&(s, d)| 0.5 * (node_scores[s as usize] + node_scores[d as usize]))
            .collect();
        Explanation::from_edge_scores(edge_scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_gnn::{GnnConfig, GnnKind, Task};
    use revelio_graph::{Graph, Target};

    #[test]
    fn chi_square_detects_dependence() {
        // Strong dependence vs none.
        let dep = chi_square_2x2(40.0, 10.0, 10.0, 40.0);
        let indep = chi_square_2x2(25.0, 25.0, 25.0, 25.0);
        assert!(dep > indep);
        assert!(indep < 1e-9);
    }

    #[test]
    fn produces_nonnegative_edge_scores() {
        let mut b = Graph::builder(4, 3);
        b.undirected_edge(0, 1)
            .undirected_edge(1, 2)
            .undirected_edge(2, 3);
        for v in 0..4 {
            b.node_features(v, &[v as f32, 1.0, 0.5]);
        }
        let g = b.build();
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            3,
            2,
            71,
        ));
        let inst = Instance::for_prediction(&model, g, Target::Node(1));
        let exp = PgmExplainer::new(PgmExplainerConfig {
            samples: 30,
            ..Default::default()
        })
        .explain(&model, &inst);
        assert_eq!(exp.edge_scores.len(), 6);
        assert!(exp.edge_scores.iter().all(|s| *s >= 0.0 && s.is_finite()));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut b = Graph::builder(3, 2);
        b.undirected_edge(0, 1).undirected_edge(1, 2);
        let g = b.build();
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gin,
            Task::NodeClassification,
            2,
            2,
            72,
        ));
        let inst = Instance::for_prediction(&model, g, Target::Node(1));
        let e1 = PgmExplainer::default().explain(&model, &inst);
        let e2 = PgmExplainer::default().explain(&model, &inst);
        assert_eq!(e1.edge_scores, e2.edge_scores);
    }
}
