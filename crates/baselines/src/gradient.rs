//! Gradient-based baselines: GradCAM and DeepLIFT.

use revelio_core::{Explainer, Explanation};
use revelio_gnn::{Gnn, Instance, Task};
use revelio_graph::Target;

/// GradCAM adapted to GNNs (Pope et al., 2019).
///
/// Channel weights are the mean gradient of the explained class score with
/// respect to the last *hidden* layer's node embeddings; the node heat is the
/// ReLU of the weighted embedding sum, and an edge scores the mean of its
/// endpoint heats.
pub struct GradCam;

/// DeepLIFT with the rescale rule collapsed to gradient × (input − baseline)
/// with a zero baseline (the approximation used by the DIG library's
/// implementation for piecewise-linear networks).
///
/// Per-node attribution is the sum of its feature attributions; an edge
/// scores the mean of its endpoint attributions (absolute value).
pub struct DeepLift;

/// Runs a forward pass, differentiates the explained class score, and
/// returns (gradient w.r.t. `wrt`, data of `wrt`).
fn class_gradient(model: &Gnn, instance: &Instance, wrt: &revelio_tensor::Tensor) -> Vec<f32> {
    let logits = match (model.config().task, instance.target) {
        (Task::NodeClassification, Target::Node(v)) => model
            .node_logits(&instance.mp, &instance.x, None)
            .gather_rows(&[v]),
        (Task::GraphClassification, Target::Graph) => {
            model.graph_logits(&instance.mp, &instance.x, None)
        }
        (task, target) => panic!("target {target:?} does not match task {task:?}"),
    };
    let score = logits.slice_cols(instance.class, instance.class + 1);
    wrt.zero_grad();
    score.backward();
    wrt.grad_vec()
}

fn node_heat_to_edge_scores(instance: &Instance, heat: &[f32]) -> Vec<f32> {
    instance
        .graph
        .edges()
        .iter()
        .map(|&(s, d)| 0.5 * (heat[s as usize] + heat[d as usize]))
        .collect()
}

impl Explainer for GradCam {
    fn name(&self) -> &'static str {
        "GradCAM"
    }

    fn explain(&self, model: &Gnn, instance: &Instance) -> Explanation {
        let layers = model.num_layers();
        assert!(layers >= 2, "GradCAM needs a hidden layer before the head");
        // Flag the last convolutional feature map so its gradient is
        // retained: the layer before the logits head for node tasks, the
        // final layer (pre-readout) for graph tasks.
        let outs = model.forward_layers(&instance.mp, &instance.x, None);
        let fm_idx = match model.config().task {
            Task::NodeClassification => layers - 2,
            Task::GraphClassification => layers - 1,
        };
        let feature_map = outs[fm_idx].clone().requires_grad();
        // Recompute from the retained tensor: cheaper to just backprop the
        // full graph — the tensors in `outs` are the live graph nodes.
        let logits = outs.last().expect("layers").clone();
        let score = match (model.config().task, instance.target) {
            (Task::NodeClassification, Target::Node(v)) => logits
                .gather_rows(&[v])
                .slice_cols(instance.class, instance.class + 1),
            (Task::GraphClassification, Target::Graph) => {
                let (w, b) = model.readout().expect("graph task readout");
                logits
                    .mean_rows()
                    .matmul(w)
                    .add_row_broadcast(b)
                    .slice_cols(instance.class, instance.class + 1)
            }
            (task, target) => panic!("target {target:?} does not match task {task:?}"),
        };
        feature_map.zero_grad();
        score.backward();
        let grad = feature_map.grad_vec();

        let (n, d) = feature_map.shape();
        // alpha_k = mean over nodes of dL/dF[:, k].
        let mut alpha = vec![0.0f32; d];
        for v in 0..n {
            for k in 0..d {
                alpha[k] += grad[v * d + k];
            }
        }
        for a in &mut alpha {
            *a /= n as f32;
        }
        let fm = feature_map.data();
        let heat: Vec<f32> = (0..n)
            .map(|v| {
                let s: f32 = (0..d).map(|k| alpha[k] * fm[v * d + k]).sum();
                s.max(0.0)
            })
            .collect();
        drop(fm);

        Explanation::from_edge_scores(node_heat_to_edge_scores(instance, &heat))
    }
}

impl Explainer for DeepLift {
    fn name(&self) -> &'static str {
        "DeepLIFT"
    }

    fn explain(&self, model: &Gnn, instance: &Instance) -> Explanation {
        let grad = class_gradient(model, instance, &instance.x);
        let x = instance.x.data();
        let (n, f) = instance.x.shape();
        // Rescale rule with zero baseline: contribution = grad * (x - 0).
        let heat: Vec<f32> = (0..n)
            .map(|v| {
                (0..f)
                    .map(|j| grad[v * f + j] * x[v * f + j])
                    .sum::<f32>()
                    .abs()
            })
            .collect();
        drop(x);
        Explanation::from_edge_scores(node_heat_to_edge_scores(instance, &heat))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_gnn::{GnnConfig, GnnKind};
    use revelio_graph::Graph;

    fn setup() -> (Gnn, Instance) {
        let mut b = Graph::builder(4, 3);
        b.undirected_edge(0, 1)
            .undirected_edge(1, 2)
            .undirected_edge(2, 3);
        for v in 0..4 {
            b.node_features(v, &[v as f32 * 0.5, 1.0, 0.2]);
        }
        let g = b.build();
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            3,
            2,
            31,
        ));
        let inst = Instance::for_prediction(&model, g, Target::Node(1));
        (model, inst)
    }

    #[test]
    fn gradcam_produces_finite_scores_per_edge() {
        let (model, inst) = setup();
        let exp = GradCam.explain(&model, &inst);
        assert_eq!(exp.edge_scores.len(), inst.graph.num_edges());
        assert!(exp.edge_scores.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn deeplift_produces_finite_scores_per_edge() {
        let (model, inst) = setup();
        let exp = DeepLift.explain(&model, &inst);
        assert_eq!(exp.edge_scores.len(), inst.graph.num_edges());
        assert!(exp.edge_scores.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn gradient_methods_work_on_graph_task() {
        let mut b = Graph::builder(3, 2);
        b.undirected_edge(0, 1).undirected_edge(1, 2);
        b.graph_label(1);
        let g = b.build();
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gin,
            Task::GraphClassification,
            2,
            2,
            32,
        ));
        let inst = Instance::for_prediction(&model, g, Target::Graph);
        assert_eq!(GradCam.explain(&model, &inst).edge_scores.len(), 4);
        assert_eq!(DeepLift.explain(&model, &inst).edge_scores.len(), 4);
    }
}
