//! GraphMask (Schlichtkrull et al., 2021): amortised per-layer edge gates
//! trained with an L0-style sparsity penalty.
//!
//! The variant here keeps GraphMask's two distinctive properties — one gate
//! network *per GNN layer* (so an edge can matter at layer 1 but not layer
//! 3) and amortised training over a group of instances — while realising the
//! hard-concrete gate as a plain sigmoid with an L0 surrogate penalty.

use std::cell::RefCell;

use revelio_core::{Explainer, Explanation, Objective};
use revelio_gnn::{Gnn, Instance};

use crate::NotFitted;
use revelio_tensor::{glorot_uniform, Adam, Optimizer, Tensor};

/// GraphMask hyperparameters (paper setup: learning rate 1e-2, 200 epochs).
#[derive(Debug, Clone, Copy)]
pub struct GraphMaskConfig {
    pub epochs: usize,
    pub lr: f32,
    pub hidden: usize,
    /// L0-surrogate penalty weight.
    pub l0_coeff: f32,
    pub objective: Objective,
    pub seed: u64,
}

impl Default for GraphMaskConfig {
    fn default() -> Self {
        GraphMaskConfig {
            epochs: 40,
            lr: 1e-2,
            hidden: 32,
            l0_coeff: 0.02,
            objective: Objective::Factual,
            seed: 0,
        }
    }
}

impl GraphMaskConfig {
    /// The paper's full budget (200 epochs).
    pub fn paper() -> Self {
        GraphMaskConfig {
            epochs: 200,
            ..Default::default()
        }
    }
}

struct GateNet {
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
}

impl GateNet {
    fn new(in_dim: usize, hidden: usize, seed: u64) -> GateNet {
        GateNet {
            w1: glorot_uniform(in_dim, hidden, seed).requires_grad(),
            b1: Tensor::zeros(1, hidden).requires_grad(),
            w2: glorot_uniform(hidden, 1, seed ^ 0x6a7e).requires_grad(),
            // Bias towards open gates at initialisation.
            b2: Tensor::full(2.0, 1, 1).requires_grad(),
        }
    }

    fn params(&self) -> Vec<Tensor> {
        vec![
            self.w1.clone(),
            self.b1.clone(),
            self.w2.clone(),
            self.b2.clone(),
        ]
    }

    /// Gate values in (0,1) for every layer edge of `instance` given the
    /// layer's input embeddings `h`.
    fn gates(&self, instance: &Instance, h: &Tensor) -> Tensor {
        let src = h.gather_rows(instance.mp.src());
        let dst = h.gather_rows(instance.mp.dst());
        src.concat_cols(&dst)
            .matmul(&self.w1)
            .add_row_broadcast(&self.b1)
            .relu()
            .matmul(&self.w2)
            .add_row_broadcast(&self.b2)
            .sigmoid()
    }
}

/// The GraphMask baseline. Like [`crate::PgExplainer`], fit over a group of
/// instances first; an unfitted explainer self-fits on its single instance.
pub struct GraphMask {
    cfg: GraphMaskConfig,
    gates: RefCell<Option<Vec<GateNet>>>,
}

impl GraphMask {
    pub fn new(cfg: GraphMaskConfig) -> GraphMask {
        GraphMask {
            cfg,
            gates: RefCell::new(None),
        }
    }

    /// Whether [`GraphMask::fit`] has run.
    pub fn is_fitted(&self) -> bool {
        self.gates.borrow().is_some()
    }

    /// Per-layer input embeddings (detached): the features for layer 1, then
    /// each layer's output for the next.
    fn layer_inputs(model: &Gnn, instance: &Instance) -> Vec<Tensor> {
        let outs = model.forward_layers(&instance.mp, &instance.x, None);
        let mut inputs = Vec::with_capacity(model.num_layers());
        inputs.push(instance.x.detach());
        for out in outs.iter().take(model.num_layers() - 1) {
            inputs.push(out.detach());
        }
        inputs
    }

    fn masks_for(gates: &[GateNet], model: &Gnn, instance: &Instance) -> Vec<Tensor> {
        Self::layer_inputs(model, instance)
            .iter()
            .zip(gates)
            .map(|(h, g)| g.gates(instance, h))
            .collect()
    }

    /// Trains the per-layer gate networks over a group of instances.
    pub fn fit_group(&self, model: &Gnn, instances: &[&Instance]) {
        assert!(!instances.is_empty(), "GraphMask.fit needs instances");
        let cfg = &self.cfg;
        let layers = model.num_layers();
        let in_dim_first = 2 * model.config().in_dim;
        let in_dim_rest = 2 * model.config().hidden_dim;
        let gates: Vec<GateNet> = (0..layers)
            .map(|l| {
                let in_dim = if l == 0 { in_dim_first } else { in_dim_rest };
                GateNet::new(in_dim, cfg.hidden, cfg.seed ^ (l as u64 * 0x3f))
            })
            .collect();
        let mut params = Vec::new();
        for g in &gates {
            params.extend(g.params());
        }
        let mut opt = Adam::new(params, cfg.lr);

        for _ in 0..cfg.epochs {
            for inst in instances {
                opt.zero_grad();
                let masks = Self::masks_for(&gates, model, inst);
                let out = model.target_logits(&inst.mp, &inst.x, Some(&masks), inst.target);
                let lp_c = out
                    .log_softmax_rows()
                    .slice_cols(inst.class, inst.class + 1);
                let objective = match cfg.objective {
                    Objective::Factual => lp_c.neg(),
                    Objective::Counterfactual => {
                        lp_c.exp().neg().add_scalar(1.0).clamp_min(1e-6).ln().neg()
                    }
                };
                // Fold the per-layer penalty terms straight into the loss so
                // the sum needs no non-empty witness (layers ≥ 1 holds, but
                // nothing here depends on it).
                let scale = cfg.l0_coeff / layers as f32;
                let mut loss = objective;
                for mask in &masks {
                    let term = match cfg.objective {
                        Objective::Factual => mask.mean_all(),
                        Objective::Counterfactual => mask.neg().add_scalar(1.0).mean_all(),
                    };
                    loss = loss.add(&term.mul_scalar(scale));
                }
                loss.backward();
                opt.step();
            }
        }
        *self.gates.borrow_mut() = Some(gates);
    }

    /// Pure inference through the fitted gate networks; refuses with
    /// [`NotFitted`] instead of self-fitting, so callers that require the
    /// group-level semantics never silently degrade to instance-level.
    pub fn try_explain(&self, model: &Gnn, instance: &Instance) -> Result<Explanation, NotFitted> {
        let gates_ref = self.gates.borrow();
        let gates = gates_ref.as_ref().ok_or(NotFitted {
            method: "GraphMask",
        })?;
        let masks = Self::masks_for(gates, model, instance);
        let mut layer_edge_scores: Vec<Vec<f32>> = masks.iter().map(Tensor::to_vec).collect();
        if self.cfg.objective == Objective::Counterfactual {
            for ls in &mut layer_edge_scores {
                for v in ls.iter_mut() {
                    *v = 1.0 - *v;
                }
            }
        }
        let m = instance.mp.num_orig_edges();
        let layers = layer_edge_scores.len() as f32;
        let edge_scores: Vec<f32> = (0..m)
            .map(|e| layer_edge_scores.iter().map(|ls| ls[e]).sum::<f32>() / layers)
            .collect();
        Ok(Explanation {
            edge_scores,
            layer_edge_scores: Some(layer_edge_scores),
            flows: None,
        })
    }
}

impl Explainer for GraphMask {
    fn name(&self) -> &'static str {
        "GraphMask"
    }

    fn fit(&self, model: &Gnn, instances: &[&Instance]) {
        self.fit_group(model, instances);
    }

    fn explain(&self, model: &Gnn, instance: &Instance) -> Explanation {
        match self.try_explain(model, instance) {
            Ok(exp) => exp,
            Err(NotFitted { .. }) => {
                self.fit_group(model, &[instance]);
                // fit_group unconditionally installs the gate networks.
                match self.try_explain(model, instance) {
                    Ok(exp) => exp,
                    Err(e) => unreachable!("{e}"),
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use revelio_gnn::{GnnConfig, GnnKind, Task};
    use revelio_graph::{Graph, Target};

    #[test]
    fn per_layer_scores_and_edge_aggregation() {
        let mut b = Graph::builder(4, 2);
        b.undirected_edge(0, 1)
            .undirected_edge(1, 2)
            .undirected_edge(2, 3);
        let g = b.build();
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            2,
            2,
            61,
        ));
        let inst = Instance::for_prediction(&model, g, Target::Node(2));
        let gm = GraphMask::new(GraphMaskConfig {
            epochs: 4,
            ..Default::default()
        });
        let exp = gm.explain(&model, &inst);
        assert_eq!(exp.edge_scores.len(), 6);
        let ls = exp.layer_edge_scores.as_ref().unwrap();
        assert_eq!(ls.len(), 3);
        // Layer-edge vectors cover self-loops too.
        assert_eq!(ls[0].len(), inst.mp.layer_edge_count());
        assert!(exp.edge_scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }
}
