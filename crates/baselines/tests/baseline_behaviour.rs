//! Behavioural tests of the baseline explainers beyond the shared contract:
//! method-specific invariants from their defining papers.

use revelio_baselines::{
    FlowX, FlowXConfig, GnnExplainer, GnnExplainerConfig, GnnLrp, GradCam, PgmExplainer,
    PgmExplainerConfig, SubgraphX, SubgraphXConfig,
};
use revelio_core::{Explainer, Objective};
use revelio_gnn::{train_node_classifier, Gnn, GnnConfig, GnnKind, Instance, Task, TrainConfig};
use revelio_graph::{Graph, Target};

/// A small trained model on a two-community graph where edges inside the
/// target's community matter.
fn trained_setup() -> (Gnn, Instance) {
    let mut b = Graph::builder(8, 2);
    // Community A: 0-1-2-3 (path + chord), community B: 4-5-6-7, one bridge.
    b.undirected_edge(0, 1)
        .undirected_edge(1, 2)
        .undirected_edge(2, 3)
        .undirected_edge(0, 2)
        .undirected_edge(4, 5)
        .undirected_edge(5, 6)
        .undirected_edge(6, 7)
        .undirected_edge(3, 4);
    let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
    for (v, &label) in labels.iter().enumerate() {
        let c = label as f32;
        b.node_features(v, &[1.0 - c, c]);
    }
    b.node_labels(labels);
    let g = b.build();
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gcn,
        Task::NodeClassification,
        2,
        2,
        17,
    ));
    train_node_classifier(
        &model,
        &g,
        &(0..8).collect::<Vec<_>>(),
        &TrainConfig {
            epochs: 80,
            weight_decay: 0.0,
            ..Default::default()
        },
    );
    let inst = Instance::for_prediction(&model, g, Target::Node(1));
    (model, inst)
}

#[test]
fn gnn_lrp_flow_relevance_is_conserved() {
    let (model, inst) = trained_setup();
    let exp = GnnLrp::default().explain(&model, &inst);
    let flows = exp.flows.expect("flow scores");
    let total: f32 = flows.scores.iter().sum();
    // z+-rule shares are normalised per node, so total relevance routed to
    // the target equals the seeded unit.
    assert!((total - 1.0).abs() < 1e-3, "total relevance {total}");
    assert!(flows.scores.iter().all(|s| *s >= 0.0));
}

#[test]
fn gnn_lrp_prefers_near_flows_over_far_ones() {
    let (model, inst) = trained_setup();
    let exp = GnnLrp::default().explain(&model, &inst);
    let flows = exp.flows.expect("flow scores");
    // The self-loop-only flow (1→1→1→1) should carry more relevance than any
    // flow starting three hops away across the bridge.
    let mut self_flow = None;
    let mut far_max = 0.0f32;
    for f in 0..flows.index.num_flows() {
        let nodes = flows.index.flow_nodes(&inst.mp, f);
        if nodes.iter().all(|&v| v == 1) {
            self_flow = Some(flows.scores[f]);
        }
        if nodes[0] >= 4 {
            far_max = far_max.max(flows.scores[f]);
        }
    }
    let self_score = self_flow.expect("self flow exists");
    assert!(
        self_score > far_max,
        "self flow {self_score} should outrank cross-bridge flows ({far_max})"
    );
}

#[test]
fn flowx_shapley_estimates_average_prediction_drops() {
    let (model, inst) = trained_setup();
    let exp = FlowX::new(FlowXConfig {
        samples: 20,
        epochs: 0, // isolate stage 1
        ..Default::default()
    })
    .explain(&model, &inst);
    let flows = exp.flows.expect("flow scores");
    // Marginal contributions are prediction-probability deltas divided among
    // flows, so they are bounded by 1 in magnitude and not all zero.
    assert!(flows.scores.iter().all(|s| s.abs() <= 1.0));
    assert!(flows.scores.iter().any(|s| *s != 0.0));
}

#[test]
fn gnnexplainer_size_penalty_shrinks_masks() {
    let (model, inst) = trained_setup();
    let mean_mask = |size_coeff: f32| {
        let exp = GnnExplainer::new(GnnExplainerConfig {
            epochs: 120,
            size_coeff,
            entropy_coeff: 0.0,
            ..Default::default()
        })
        .explain(&model, &inst);
        exp.edge_scores.iter().sum::<f32>() / exp.edge_scores.len() as f32
    };
    let loose = mean_mask(0.0);
    let tight = mean_mask(2.0);
    assert!(
        tight < loose,
        "size penalty must shrink masks: {loose} -> {tight}"
    );
}

#[test]
fn pgm_explainer_scores_connected_nodes_over_far_ones() {
    let (model, inst) = trained_setup();
    let exp = PgmExplainer::new(PgmExplainerConfig {
        samples: 200,
        ..Default::default()
    })
    .explain(&model, &inst);
    // Mean score of edges touching the target's 1-hop neighbourhood vs the
    // far community.
    let near: Vec<f32> = inst
        .graph
        .edges()
        .iter()
        .zip(&exp.edge_scores)
        .filter(|(&(s, d), _)| s <= 3 && d <= 3)
        .map(|(_, &sc)| sc)
        .collect();
    let far: Vec<f32> = inst
        .graph
        .edges()
        .iter()
        .zip(&exp.edge_scores)
        .filter(|(&(s, d), _)| s >= 4 && d >= 4)
        .map(|(_, &sc)| sc)
        .collect();
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    assert!(
        mean(&near) >= mean(&far),
        "near {:.4} vs far {:.4}",
        mean(&near),
        mean(&far)
    );
}

#[test]
fn subgraphx_never_scores_above_probability_one() {
    let (model, inst) = trained_setup();
    let exp = SubgraphX::new(SubgraphXConfig {
        rollouts: 12,
        ..Default::default()
    })
    .explain(&model, &inst);
    assert!(exp.edge_scores.iter().all(|s| (0.0..=1.0).contains(s)));
    // At least one subgraph containing the target's community scored well.
    assert!(exp.edge_scores.iter().any(|&s| s > 0.3));
}

#[test]
fn gradcam_is_nonnegative_by_construction() {
    let (model, inst) = trained_setup();
    let exp = GradCam.explain(&model, &inst);
    assert!(exp.edge_scores.iter().all(|&s| s >= 0.0));
}

#[test]
fn counterfactual_gnnexplainer_prefers_removing_informative_edges() {
    let (model, inst) = trained_setup();
    let factual = GnnExplainer::new(GnnExplainerConfig {
        epochs: 150,
        ..Default::default()
    })
    .explain(&model, &inst);
    let counter = GnnExplainer::new(GnnExplainerConfig {
        epochs: 150,
        objective: Objective::Counterfactual,
        ..Default::default()
    })
    .explain(&model, &inst);
    // Both must be valid distributions over edges but need not agree.
    assert_eq!(factual.edge_scores.len(), counter.edge_scores.len());
    assert!(counter.edge_scores.iter().all(|s| (0.0..=1.0).contains(s)));
}
