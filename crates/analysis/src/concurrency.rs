//! Source-level concurrency-discipline lint for the serving stack.
//!
//! The model checker (`revelio-check`) explores interleavings under
//! *sequentially consistent* semantics and detects ordering bugs through
//! vector clocks; what it cannot see is code that never routes through the
//! facade, or a `Relaxed` that the author *meant* as a publication fence.
//! This lint closes that gap at the source level, the same way the tape
//! audits close the shape/stability gap: plain line matching, no syntax
//! tree, so it runs in the `audit` gate with zero dependencies.
//!
//! Two checks:
//!
//! * [`ConcurrencyCheck::RelaxedPublication`] — `Ordering::Relaxed` on an
//!   operation that is not a pure counter access. Relaxed `fetch_add` /
//!   `fetch_sub` / `fetch_max` / `fetch_min` and relaxed `load`s are the
//!   monotonic-counter idiom the stack uses everywhere (metrics, drop
//!   accounting, cache stats) and are exact under quiescence — the model
//!   checker proves that. A relaxed **store** (or `swap` /
//!   `compare_exchange`) is how a publication bug is written: the
//!   seeded-defect suite's histogram-bucket race is exactly a relaxed
//!   store standing in for a `Release` fence.
//! * [`ConcurrencyCheck::FacadeBypass`] — direct `std::sync::atomic` /
//!   `std::sync::Mutex` / `std::sync::mpsc` / `std::thread::spawn` use in
//!   a crate that is supposed to speak [`revelio_check::sync`]. A bypassed
//!   primitive is invisible to the checker, so every new one must either
//!   move onto the facade or carry an explicit [`ConcurrencyAllowance`].
//!
//! Lines inside a trailing `#[cfg(test)] mod …` are skipped (tests
//! legitimately poke internals, e.g. the ring journal's stalled-writer
//! regression rolls the claim counter back with a relaxed store), as are
//! comments.
//!
//! [`revelio_check::sync`]: https://docs.rs/revelio-check

use crate::{ConcurrencyCheck, Diagnostic, DiagnosticKind};

/// A reviewed exemption: a line in `file_suffix` containing
/// `line_contains` is exempt from both checks, for the stated reason.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrencyAllowance {
    /// Matched against the end of the linted file's label.
    pub file_suffix: &'static str,
    /// Substring the exempted line must contain.
    pub line_contains: &'static str,
    /// Why the site is allowed — shown nowhere, reviewed here.
    pub reason: &'static str,
}

/// The reviewed exemptions for this workspace.
pub const WORKSPACE_CONCURRENCY_ALLOWANCES: &[ConcurrencyAllowance] = &[
    ConcurrencyAllowance {
        file_suffix: "runtime/src/pool.rs",
        line_contains: "use std::sync::atomic::AtomicBool;",
        reason: "the cancel flag crosses the facade boundary into \
                 revelio-core's Deadline::with_cancel, which takes the std type",
    },
    ConcurrencyAllowance {
        file_suffix: "runtime/src/pool.rs",
        line_contains: "cancel.store(true, Ordering::Relaxed)",
        reason: "sticky cooperative cancel flag: polled between epochs, \
                 publishes no data, and never resets",
    },
];

/// Lints one source file. `file` is the label used in diagnostics (and
/// matched against allowance suffixes); `facade_required` enables the
/// bypass check — set it for the crates ported onto `revelio_check::sync`
/// (`revelio-trace`, `revelio-runtime`), leave it off for crates that
/// legitimately speak `std` (the server's connection threads, the
/// load generator) where only the `Relaxed` discipline applies.
pub fn lint_concurrency(
    file: &str,
    source: &str,
    facade_required: bool,
    allow: &[ConcurrencyAllowance],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut cfg_test_armed = false;
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let trimmed = raw.trim();
        // Stop at a trailing `#[cfg(test)] mod …`: test internals (seeded
        // counter rollbacks, std fixtures) are out of scope.
        if trimmed.starts_with("#[cfg(test)]") {
            cfg_test_armed = true;
            continue;
        }
        if cfg_test_armed {
            if trimmed.starts_with("mod ") {
                break;
            }
            if !trimmed.starts_with('#') && !trimmed.is_empty() {
                cfg_test_armed = false;
            }
        }
        // Strip line comments (also drops `//!` and `///` doc lines).
        let code = match raw.find("//") {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        if code.trim().is_empty() {
            continue;
        }
        if allow
            .iter()
            .any(|a| file.ends_with(a.file_suffix) && code.contains(a.line_contains))
        {
            continue;
        }

        if code.contains("Ordering::Relaxed") && !is_pure_counter_access(code) {
            diags.push(Diagnostic::container(
                DiagnosticKind::ConcurrencyLint(ConcurrencyCheck::RelaxedPublication),
                format!(
                    "{file}:{lineno}: relaxed ordering outside the pure-counter \
                     idiom (store/swap/CAS must publish with Release/Acquire or \
                     carry a reviewed allowance): `{}`",
                    code.trim()
                ),
            ));
        }

        if facade_required {
            if let Some(pattern) = facade_bypass(code) {
                diags.push(Diagnostic::container(
                    DiagnosticKind::ConcurrencyLint(ConcurrencyCheck::FacadeBypass),
                    format!(
                        "{file}:{lineno}: `{pattern}` bypasses revelio_check::sync, \
                         so the model checker cannot see this primitive: `{}`",
                        code.trim()
                    ),
                ));
            }
        }
    }
    diags
}

/// The counter idiom: relaxed RMW accumulators and relaxed reads. Exact
/// after quiescence (the checker's `metrics_snapshot_is_exact` test), and
/// incapable of standing in for a publication fence by construction.
fn is_pure_counter_access(code: &str) -> bool {
    [
        ".load(",
        ".fetch_add(",
        ".fetch_sub(",
        ".fetch_max(",
        ".fetch_min(",
    ]
    .iter()
    .any(|op| code.contains(op))
}

/// The first `std` concurrency primitive named outside the facade, if any.
fn facade_bypass(code: &str) -> Option<&'static str> {
    [
        "std::sync::atomic",
        "std::sync::Mutex",
        "std::sync::MutexGuard",
        "std::sync::Condvar",
        "std::sync::mpsc",
        "std::thread::spawn",
        "std::thread::Builder",
        "use std::thread",
    ]
    .into_iter()
    .find(|pattern| code.contains(pattern))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(diags: &[Diagnostic]) -> Vec<DiagnosticKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn relaxed_counters_and_loads_are_clean() {
        let src = "
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.max_us.fetch_max(us, Ordering::Relaxed);
            let depth = self.queue_depth.load(Ordering::Relaxed);
        ";
        assert!(lint_concurrency("a.rs", src, true, &[]).is_empty());
    }

    #[test]
    fn relaxed_store_is_flagged_as_publication_suspect() {
        let src = "ready.store(1, Ordering::Relaxed);";
        assert_eq!(
            kinds(&lint_concurrency("a.rs", src, false, &[])),
            vec![DiagnosticKind::ConcurrencyLint(
                ConcurrencyCheck::RelaxedPublication
            )]
        );
    }

    #[test]
    fn relaxed_compare_exchange_is_flagged() {
        let src = "state.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)";
        assert_eq!(lint_concurrency("a.rs", src, false, &[]).len(), 1);
    }

    #[test]
    fn release_acquire_publication_is_clean() {
        let src = "
            self.stop.store(true, Ordering::Release);
            while !shared.stop.load(Ordering::Acquire) {}
        ";
        assert!(lint_concurrency("a.rs", src, false, &[]).is_empty());
    }

    #[test]
    fn std_primitives_are_flagged_only_in_facade_crates() {
        let src = "
            use std::sync::atomic::AtomicU64;
            let t = std::thread::spawn(move || {});
        ";
        let facade = lint_concurrency("facade.rs", src, true, &[]);
        assert_eq!(
            kinds(&facade),
            vec![
                DiagnosticKind::ConcurrencyLint(ConcurrencyCheck::FacadeBypass),
                DiagnosticKind::ConcurrencyLint(ConcurrencyCheck::FacadeBypass),
            ]
        );
        assert!(lint_concurrency("plain.rs", src, false, &[]).is_empty());
    }

    #[test]
    fn allowance_suppresses_a_reviewed_site() {
        let src = "use std::sync::atomic::AtomicBool;";
        let allow = [ConcurrencyAllowance {
            file_suffix: "pool.rs",
            line_contains: "use std::sync::atomic::AtomicBool;",
            reason: "test",
        }];
        assert!(lint_concurrency("crates/runtime/src/pool.rs", src, true, &allow).is_empty());
        // The allowance is site-specific: other files stay flagged.
        assert_eq!(lint_concurrency("other.rs", src, true, &allow).len(), 1);
    }

    #[test]
    fn comments_and_test_modules_are_skipped() {
        let src = "
//! Workers are plain `std::thread::spawn` threads. (doc comment)
fn body() {} // std::sync::atomic in a trailing comment

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicU64;
    fn rollback() { ring.next.store(1, Ordering::Relaxed); }
}
";
        assert!(lint_concurrency("a.rs", src, true, &[]).is_empty());
    }

    #[test]
    fn cfg_test_on_a_non_module_does_not_swallow_the_rest() {
        let src = "
#[cfg(test)]
fn helper() {}
ready.store(1, Ordering::Relaxed);
";
        assert_eq!(lint_concurrency("a.rs", src, false, &[]).len(), 1);
    }
}
