//! Static analysis over the autodiff tape and the graph containers.
//!
//! The autodiff engine in `revelio-tensor` records an [`Op`] graph while the
//! forward pass runs. This crate walks that recorded tape **without executing
//! anything** and reports typed [`Diagnostic`]s:
//!
//! * **Symbolic shape inference** ([`audit_tape`]) — re-derives every node's
//!   shape from its operands and flags broadcast/matmul mismatches, bad
//!   gather/scatter indices, and malformed reductions.
//! * **Dead-gradient detection** ([`audit_tape_with_params`]) — finds
//!   `requires_grad` leaves that are unreachable from the loss, i.e.
//!   parameters that will silently never train (a detached mask is the
//!   classic REVELIO failure mode).
//! * **Numeric-stability lints** — structural pattern matches over the tape:
//!   `ln(sigmoid(x))` instead of `softplus`, unstabilised `exp` chains
//!   (`exp ∘ exp`), and hand-rolled softmax built from an unshifted `exp`.
//! * **Flow-incidence / CSR invariant audits** ([`audit_flow_index`],
//!   [`audit_incidence`], [`audit_mp_graph`]) — Eq. 7 requires every column
//!   of each per-layer incidence matrix `I_l ∈ {0,1}^{|E|×|F|}` to sum to
//!   exactly 1 (each flow crosses one layer edge per layer); the
//!   message-passing view requires sorted in-edge lists and exactly one
//!   self-loop per node.
//! * **Concurrency-discipline lint** ([`lint_concurrency`]) — line-level
//!   source checks backing the `revelio-check` model checker: flags
//!   `Ordering::Relaxed` outside the pure-counter idiom (a relaxed store
//!   is the classic missing-`Release` publication bug) and direct
//!   `std::sync`/`std::thread` primitives in crates that must speak the
//!   `revelio_check::sync` facade to stay checkable.
//!
//! `revelio-core` calls [`audit_tape_with_params`] on the first mask-learning
//! epoch in debug builds; the `audit` binary runs every audit over an example
//! workload and a suite of deliberately seeded defects.

#![deny(clippy::print_stdout, clippy::print_stderr)]

mod concurrency;

pub use concurrency::{lint_concurrency, ConcurrencyAllowance, WORKSPACE_CONCURRENCY_ALLOWANCES};

use std::collections::HashSet;
use std::fmt;

use revelio_graph::{FlowIndex, MpGraph};
use revelio_tensor::{BinCsr, Op, Tensor};

/// What a diagnostic is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticKind {
    /// A tape node whose shape is inconsistent with its operands.
    ShapeMismatch,
    /// A `requires_grad` leaf unreachable from the audited root: its
    /// gradient will always be zero.
    DetachedGradient,
    /// A numerically fragile op pattern matched structurally on the tape.
    UnstablePattern(StabilityPattern),
    /// A violated invariant of a flow-incidence matrix or graph container.
    IncidenceViolation(IncidenceCheck),
    /// A source-level concurrency-discipline violation (see
    /// [`lint_concurrency`]).
    ConcurrencyLint(ConcurrencyCheck),
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagnosticKind::ShapeMismatch => write!(f, "shape-mismatch"),
            DiagnosticKind::DetachedGradient => write!(f, "detached-gradient"),
            DiagnosticKind::UnstablePattern(p) => write!(f, "unstable-pattern/{p}"),
            DiagnosticKind::IncidenceViolation(c) => write!(f, "incidence-violation/{c}"),
            DiagnosticKind::ConcurrencyLint(c) => write!(f, "concurrency-lint/{c}"),
        }
    }
}

/// Concurrency-discipline rules checked at the source level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConcurrencyCheck {
    /// `Ordering::Relaxed` on an operation outside the pure-counter idiom
    /// (relaxed RMW accumulators and relaxed loads): a relaxed store,
    /// swap, or CAS is how a missing `Release`/`Acquire` publication
    /// fence is usually written.
    RelaxedPublication,
    /// A direct `std::sync` / `std::thread` primitive in a crate ported
    /// onto the `revelio_check::sync` facade — invisible to the model
    /// checker, so it needs a reviewed [`ConcurrencyAllowance`] or a port.
    FacadeBypass,
}

impl fmt::Display for ConcurrencyCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcurrencyCheck::RelaxedPublication => write!(f, "relaxed-publication"),
            ConcurrencyCheck::FacadeBypass => write!(f, "facade-bypass"),
        }
    }
}

/// Numerically fragile patterns matched on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StabilityPattern {
    /// `ln(sigmoid(x))`: overflows to `-inf` for moderately negative `x`;
    /// `-softplus(-x)` is the stable identity.
    LnOfSigmoid,
    /// `exp` applied (possibly through scalar-affine ops) to the output of
    /// another `exp`: doubly exponential growth overflows `f32` almost
    /// immediately.
    ExpOfExp,
    /// A softmax hand-rolled as `exp(x) / Σ exp(x)` without subtracting the
    /// row maximum first (`segment_softmax` / `log_softmax_rows` shift
    /// internally).
    SoftmaxWithoutShift,
}

impl fmt::Display for StabilityPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StabilityPattern::LnOfSigmoid => write!(f, "ln-of-sigmoid"),
            StabilityPattern::ExpOfExp => write!(f, "exp-of-exp"),
            StabilityPattern::SoftmaxWithoutShift => write!(f, "softmax-without-shift"),
        }
    }
}

/// Invariants checked on incidence matrices and the message-passing view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncidenceCheck {
    /// Eq. 7: every column of `I_l` must sum to exactly 1.
    ColumnSum,
    /// CSR rows must hold strictly ascending column indices.
    UnsortedRow,
    /// A stored column index is outside the matrix bounds.
    ColumnBounds,
    /// Incidence dimensions disagree with the layer-edge/flow counts, or an
    /// incidence entry contradicts the flow's recorded path.
    FlowConsistency,
    /// A node does not have exactly one self-loop layer edge.
    SelfLoopUniqueness,
    /// A per-node in/out-edge list is unsorted or inconsistent with the
    /// edge endpoint arrays.
    AdjacencyConsistency,
}

impl fmt::Display for IncidenceCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncidenceCheck::ColumnSum => write!(f, "column-sum"),
            IncidenceCheck::UnsortedRow => write!(f, "unsorted-row"),
            IncidenceCheck::ColumnBounds => write!(f, "column-bounds"),
            IncidenceCheck::FlowConsistency => write!(f, "flow-consistency"),
            IncidenceCheck::SelfLoopUniqueness => write!(f, "self-loop-uniqueness"),
            IncidenceCheck::AdjacencyConsistency => write!(f, "adjacency-consistency"),
        }
    }
}

/// One finding of the static analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// What was found.
    pub kind: DiagnosticKind,
    /// The tensor id of the tape node the finding anchors to, when the
    /// finding is about a tape node.
    pub tensor: Option<u64>,
    /// The op name at that node, when applicable.
    pub op: Option<&'static str>,
    /// Human-readable description with the concrete values involved.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.kind)?;
        if let Some(op) = self.op {
            write!(f, " {op}")?;
        }
        if let Some(id) = self.tensor {
            write!(f, " (tensor #{id})")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl Diagnostic {
    fn tape(kind: DiagnosticKind, node: &Tensor, message: String) -> Diagnostic {
        Diagnostic {
            kind,
            tensor: Some(node.id()),
            op: node.op().map(Op::name),
            message,
        }
    }

    fn container(kind: DiagnosticKind, message: String) -> Diagnostic {
        Diagnostic {
            kind,
            tensor: None,
            op: None,
            message,
        }
    }
}

// ---------------------------------------------------------------------------
// Tape walking
// ---------------------------------------------------------------------------

/// Every distinct tensor reachable from `root` through recorded ops
/// (iterative DFS; the audits below are per-node, so order is irrelevant).
fn tape_nodes(root: &Tensor) -> Vec<Tensor> {
    let mut nodes = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut stack = vec![root.clone()];
    while let Some(t) = stack.pop() {
        if !seen.insert(t.id()) {
            continue;
        }
        if let Some(op) = t.op() {
            stack.extend(op.parents());
        }
        nodes.push(t);
    }
    nodes
}

/// Statically audits the tape below `root`: symbolic shape inference plus
/// the numeric-stability lints. Nothing is executed; only recorded metadata
/// (shapes, op kinds, saved indices) is inspected.
pub fn audit_tape(root: &Tensor) -> Vec<Diagnostic> {
    let nodes = tape_nodes(root);
    let mut diags = Vec::new();
    for node in &nodes {
        if let Some(op) = node.op() {
            match infer_shape(op) {
                Ok(expected) if expected != node.shape() => {
                    diags.push(Diagnostic::tape(
                        DiagnosticKind::ShapeMismatch,
                        node,
                        format!(
                            "recorded output shape {:?} but operands imply {:?}",
                            node.shape(),
                            expected
                        ),
                    ));
                }
                Ok(_) => {}
                Err(msg) => {
                    diags.push(Diagnostic::tape(DiagnosticKind::ShapeMismatch, node, msg));
                }
            }
            diags.extend(stability_lints(node, op));
        }
    }
    diags
}

/// [`audit_tape`] plus dead-gradient detection: every tensor in `params`
/// that is flagged `requires_grad` must be reachable from `root`, otherwise
/// its gradient is identically zero and it will never train.
pub fn audit_tape_with_params(root: &Tensor, params: &[Tensor]) -> Vec<Diagnostic> {
    let mut diags = audit_tape(root);
    let reachable: HashSet<u64> = tape_nodes(root).iter().map(Tensor::id).collect();
    for (i, p) in params.iter().enumerate() {
        if p.requires_grad_flag() && !reachable.contains(&p.id()) {
            diags.push(Diagnostic {
                kind: DiagnosticKind::DetachedGradient,
                tensor: Some(p.id()),
                op: None,
                message: format!(
                    "parameter {i} (shape {:?}) requires a gradient but is unreachable \
                     from the loss; it will never receive updates",
                    p.shape()
                ),
            });
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Symbolic shape inference
// ---------------------------------------------------------------------------

/// Re-derives the output shape of `op` from its operand shapes and saved
/// context, or explains why no valid output shape exists.
fn infer_shape(op: &Op) -> Result<(usize, usize), String> {
    match op {
        Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::Div(a, b) => {
            if a.shape() != b.shape() {
                return Err(format!(
                    "elementwise operands differ in shape: {:?} vs {:?}",
                    a.shape(),
                    b.shape()
                ));
            }
            Ok(a.shape())
        }
        Op::Neg(a)
        | Op::AddScalar(a, _)
        | Op::MulScalar(a, _)
        | Op::Relu(a)
        | Op::LeakyRelu(a, _)
        | Op::Tanh(a)
        | Op::Sigmoid(a)
        | Op::Exp(a)
        | Op::Ln(a)
        | Op::Softplus(a)
        | Op::ClampMin(a, _)
        | Op::LogSoftmaxRows(a) => Ok(a.shape()),
        Op::MatMul(a, b) => {
            let (m, k) = a.shape();
            let (k2, n) = b.shape();
            if k != k2 {
                return Err(format!(
                    "matmul inner dimensions disagree: [{m},{k}] · [{k2},{n}]"
                ));
            }
            Ok((m, n))
        }
        Op::MatMulNt(a, b) => {
            let (m, n) = a.shape();
            let (k, n2) = b.shape();
            if n != n2 {
                return Err(format!(
                    "matmul_nt inner dimensions disagree: [{m},{n}] · [{k},{n2}]ᵀ"
                ));
            }
            Ok((m, k))
        }
        Op::MatMulTn(a, b) => {
            let (m, k) = a.shape();
            let (m2, n) = b.shape();
            if m != m2 {
                return Err(format!(
                    "matmul_tn inner dimensions disagree: [{m},{k}]ᵀ · [{m2},{n}]"
                ));
            }
            Ok((k, n))
        }
        Op::SigmoidScale(a, w) => {
            let (m, n) = a.shape();
            if w.shape() != (1, 1) && w.shape() != (m, n) {
                return Err(format!(
                    "sigmoid_scale weight must be [1,1] or [{m},{n}], got {:?}",
                    w.shape()
                ));
            }
            Ok((m, n))
        }
        Op::BiasLeakyRelu(a, bias, slope) => {
            let (m, n) = a.shape();
            if bias.shape() != (1, n) {
                return Err(format!(
                    "bias_leaky_relu bias must be [1,{n}] for a [{m},{n}] operand, got {:?}",
                    bias.shape()
                ));
            }
            if *slope < 0.0 {
                return Err(format!(
                    "bias_leaky_relu slope must be non-negative, got {slope}"
                ));
            }
            Ok((m, n))
        }
        Op::SoftmaxXent(a, targets) => {
            let (m, n) = a.shape();
            if targets.len() != m {
                return Err(format!(
                    "softmax_xent has {} targets for {m} rows",
                    targets.len()
                ));
            }
            if let Some(&t) = targets.iter().find(|&&t| t >= n) {
                return Err(format!(
                    "softmax_xent target {t} out of range for {n} classes"
                ));
            }
            Ok((1, 1))
        }
        Op::AddRowBroadcast(a, b) => {
            let (m, n) = a.shape();
            if b.shape() != (1, n) {
                return Err(format!(
                    "row-broadcast bias must be [1,{n}] for a [{m},{n}] operand, got {:?}",
                    b.shape()
                ));
            }
            Ok((m, n))
        }
        Op::MulColBroadcast(a, b) => {
            let (m, n) = a.shape();
            if b.shape() != (m, 1) {
                return Err(format!(
                    "column-broadcast scale must be [{m},1] for a [{m},{n}] operand, got {:?}",
                    b.shape()
                ));
            }
            Ok((m, n))
        }
        Op::SumAll(_) | Op::MeanAll(_) => Ok((1, 1)),
        Op::MeanRows(a) => {
            let (m, n) = a.shape();
            if m == 0 {
                return Err("mean over zero rows is undefined".to_string());
            }
            Ok((1, n))
        }
        Op::NllLoss(a, targets) => {
            let (m, n) = a.shape();
            if targets.len() != m {
                return Err(format!(
                    "nll_loss has {} targets for {m} rows",
                    targets.len()
                ));
            }
            if let Some(&t) = targets.iter().find(|&&t| t >= n) {
                return Err(format!(
                    "nll_loss target class {t} out of range for {n} classes"
                ));
            }
            Ok((1, 1))
        }
        Op::GatherRows(a, idx) => {
            let (m, n) = a.shape();
            if let Some(&i) = idx.iter().find(|&&i| i >= m) {
                return Err(format!("gather index {i} out of bounds for {m} rows"));
            }
            Ok((idx.len(), n))
        }
        Op::ScatterAddRows(a, idx, n_out) => {
            let (m, n) = a.shape();
            if idx.len() != m {
                return Err(format!(
                    "scatter_add_rows has {} indices for {m} rows",
                    idx.len()
                ));
            }
            if let Some(&i) = idx.iter().find(|&&i| i >= *n_out) {
                return Err(format!(
                    "scatter index {i} out of bounds for {n_out} output rows"
                ));
            }
            Ok((*n_out, n))
        }
        Op::SliceCols(a, c0, c1) => {
            let (m, n) = a.shape();
            if !(c0 < c1 && *c1 <= n) {
                return Err(format!("column slice {c0}..{c1} invalid for {n} columns"));
            }
            Ok((m, c1 - c0))
        }
        Op::ConcatCols(a, b) => {
            let (m, na) = a.shape();
            let (m2, nb) = b.shape();
            if m != m2 {
                return Err(format!("concat_cols row counts differ: {m} vs {m2}"));
            }
            Ok((m, na + nb))
        }
        Op::SegmentSoftmax(a, segs) => {
            let (m, n) = a.shape();
            if segs.len() != m {
                return Err(format!(
                    "segment_softmax has {} segment ids for {m} rows",
                    segs.len()
                ));
            }
            Ok((m, n))
        }
        Op::SpMatVec(mat, x) => {
            if x.shape() != (mat.cols(), 1) {
                return Err(format!(
                    "sp_matvec vector must be [{},1] for a {}×{} matrix, got {:?}",
                    mat.cols(),
                    mat.rows(),
                    mat.cols(),
                    x.shape()
                ));
            }
            Ok((mat.rows(), 1))
        }
    }
}

// ---------------------------------------------------------------------------
// Numeric-stability lints
// ---------------------------------------------------------------------------

/// Follows a chain of scalar-affine ops (`neg`, `add_scalar`, `mul_scalar`)
/// upward to the first structurally interesting producer.
fn through_affine(t: &Tensor) -> Tensor {
    let mut cur = t.clone();
    loop {
        let next = match cur.op() {
            Some(Op::Neg(a) | Op::AddScalar(a, _) | Op::MulScalar(a, _)) => a.clone(),
            _ => return cur,
        };
        cur = next;
    }
}

fn stability_lints(node: &Tensor, op: &Op) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    match op {
        // ln(sigmoid(x)) → use -softplus(-x).
        Op::Ln(a) => {
            if matches!(through_affine(a).op(), Some(Op::Sigmoid(_))) {
                diags.push(Diagnostic::tape(
                    DiagnosticKind::UnstablePattern(StabilityPattern::LnOfSigmoid),
                    node,
                    "ln(sigmoid(x)) underflows to -inf for moderately negative x; \
                     rewrite as -softplus(-x)"
                        .to_string(),
                ));
            }
        }
        // exp(exp(x)) — possibly through scalar-affine ops.
        Op::Exp(a) => {
            if matches!(through_affine(a).op(), Some(Op::Exp(_))) {
                diags.push(Diagnostic::tape(
                    DiagnosticKind::UnstablePattern(StabilityPattern::ExpOfExp),
                    node,
                    "exp applied to the output of another exp overflows f32 for inputs \
                     above ~4.6; restructure the chain or work in log space"
                        .to_string(),
                ));
            }
        }
        // exp(x) / (something aggregating that same exp(x)) — a softmax
        // hand-rolled without the max shift. The tell-tale is the numerator
        // tensor itself appearing in the denominator's ancestry.
        Op::Div(a, b) => {
            let numerator = through_affine(a);
            if matches!(numerator.op(), Some(Op::Exp(_)))
                && tape_nodes(b).iter().any(|t| t.id() == numerator.id())
            {
                diags.push(Diagnostic::tape(
                    DiagnosticKind::UnstablePattern(StabilityPattern::SoftmaxWithoutShift),
                    node,
                    "softmax built from an unshifted exp: subtract the per-group maximum \
                     before exponentiating, or use segment_softmax / log_softmax_rows"
                        .to_string(),
                ));
            }
        }
        _ => {}
    }
    diags
}

// ---------------------------------------------------------------------------
// Incidence / graph-container audits
// ---------------------------------------------------------------------------

/// Structural CSR checks shared by every [`BinCsr`] audit: column indices in
/// bounds and strictly ascending within each row (the builders emit sorted
/// rows; downstream code relies on that for deterministic iteration).
pub fn audit_bin_csr(mat: &BinCsr) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for r in 0..mat.rows() {
        let row = mat.row(r);
        if let Some(&c) = row.iter().find(|&&c| (c as usize) >= mat.cols()) {
            diags.push(Diagnostic::container(
                DiagnosticKind::IncidenceViolation(IncidenceCheck::ColumnBounds),
                format!(
                    "row {r} stores column {c}, out of bounds for {} columns",
                    mat.cols()
                ),
            ));
        }
        if row.windows(2).any(|w| w[0] >= w[1]) {
            diags.push(Diagnostic::container(
                DiagnosticKind::IncidenceViolation(IncidenceCheck::UnsortedRow),
                format!("row {r} is not strictly ascending: {row:?}"),
            ));
        }
    }
    diags
}

/// Audits one per-layer flow-incidence matrix `I_l` against Eq. 7: on top of
/// the CSR checks, every column (flow) must appear in exactly one row (layer
/// edge) — each flow crosses exactly one edge per layer.
pub fn audit_incidence(mat: &BinCsr) -> Vec<Diagnostic> {
    let mut diags = audit_bin_csr(mat);
    let mut col_counts = vec![0usize; mat.cols()];
    for (_, c) in mat.iter() {
        if let Some(slot) = col_counts.get_mut(c as usize) {
            *slot += 1;
        }
    }
    for (f, &count) in col_counts.iter().enumerate() {
        if count != 1 {
            diags.push(Diagnostic::container(
                DiagnosticKind::IncidenceViolation(IncidenceCheck::ColumnSum),
                format!("flow {f} has column sum {count}, Eq. 7 requires exactly 1"),
            ));
        }
    }
    diags
}

/// Audits a complete [`FlowIndex`] against its graph: per-layer incidence
/// dimensions, Eq. 7 column sums, and agreement between each incidence entry
/// and the flow's recorded layer-edge path.
pub fn audit_flow_index(mp: &MpGraph, index: &FlowIndex) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for l in 0..index.num_layers() {
        let inc = index.incidence(l);
        if inc.rows() != mp.layer_edge_count() || inc.cols() != index.num_flows() {
            diags.push(Diagnostic::container(
                DiagnosticKind::IncidenceViolation(IncidenceCheck::FlowConsistency),
                format!(
                    "layer {l} incidence is {}×{}, expected {}×{}",
                    inc.rows(),
                    inc.cols(),
                    mp.layer_edge_count(),
                    index.num_flows()
                ),
            ));
            continue;
        }
        diags.extend(audit_incidence(inc));
        for e in 0..inc.rows() {
            for &f in inc.row(e) {
                let path = index.flow(f as usize);
                if path.get(l) != Some(&(e as u32)) {
                    diags.push(Diagnostic::container(
                        DiagnosticKind::IncidenceViolation(IncidenceCheck::FlowConsistency),
                        format!(
                            "layer {l} incidence places flow {f} on edge {e}, but the flow's \
                             recorded path uses edge {:?} there",
                            path.get(l)
                        ),
                    ));
                }
            }
        }
    }
    diags
}

/// Audits the message-passing view: edge endpoints in range, exactly one
/// self-loop per node (at the id [`MpGraph::self_loop_edge`] reports), and
/// per-node in/out-edge lists sorted and consistent with the endpoint
/// arrays.
pub fn audit_mp_graph(mp: &MpGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = mp.num_nodes();

    for (e, (&s, &d)) in mp.src().iter().zip(mp.dst()).enumerate() {
        if s >= n || d >= n {
            diags.push(Diagnostic::container(
                DiagnosticKind::IncidenceViolation(IncidenceCheck::AdjacencyConsistency),
                format!("layer edge {e} has endpoints ({s}, {d}) outside {n} nodes"),
            ));
        }
    }

    for v in 0..n {
        let loops: Vec<usize> = (0..mp.layer_edge_count())
            .filter(|&e| mp.src()[e] == v && mp.dst()[e] == v)
            .collect();
        if loops != [mp.self_loop_edge(v)] {
            diags.push(Diagnostic::container(
                DiagnosticKind::IncidenceViolation(IncidenceCheck::SelfLoopUniqueness),
                format!(
                    "node {v} has self-loop edges {loops:?}, expected exactly [{}]",
                    mp.self_loop_edge(v)
                ),
            ));
        }

        for (label, edges, key) in [
            ("in", mp.in_edges(v), mp.dst()),
            ("out", mp.out_edges(v), mp.src()),
        ] {
            if edges.windows(2).any(|w| w[0] >= w[1]) {
                diags.push(Diagnostic::container(
                    DiagnosticKind::IncidenceViolation(IncidenceCheck::AdjacencyConsistency),
                    format!("node {v} {label}-edge list is not strictly ascending: {edges:?}"),
                ));
            }
            let expected = key.iter().filter(|&&k| k == v).count();
            let endpoint_ok = edges.iter().all(|&e| key.get(e as usize) == Some(&v));
            if edges.len() != expected || !endpoint_ok {
                diags.push(Diagnostic::container(
                    DiagnosticKind::IncidenceViolation(IncidenceCheck::AdjacencyConsistency),
                    format!(
                        "node {v} {label}-edge list {edges:?} disagrees with the endpoint \
                         arrays ({expected} edges expected)"
                    ),
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_graph::{Graph, Target};

    fn kinds(diags: &[Diagnostic]) -> Vec<DiagnosticKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    // ---------------- tape: clean ----------------

    #[test]
    fn healthy_tape_is_clean() {
        let w = Tensor::from_vec(vec![0.2, -0.4, 0.6, 0.1, 0.5, -0.2], 2, 3).requires_grad();
        let x = Tensor::from_vec(vec![1.0, 2.0, 0.5, -1.0, 0.0, 1.5], 3, 2);
        let b = Tensor::from_vec(vec![0.1, -0.1], 1, 2).requires_grad();
        let loss = w
            .matmul(&x)
            .add_row_broadcast(&b)
            .tanh_t()
            .log_softmax_rows()
            .nll_loss(&[0, 1]);
        assert!(audit_tape(&loss).is_empty());
        assert!(audit_tape_with_params(&loss, &[w, b]).is_empty());
    }

    // ---------------- tape: shape mismatch ----------------

    #[test]
    fn detects_matmul_shape_mismatch() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 2); // inner dims 3 vs 2 disagree
        let bad = Tensor::from_op_unchecked(vec![0.0; 4], 2, 2, Op::MatMul(a, b));
        let diags = audit_tape(&bad.sum_all());
        assert_eq!(kinds(&diags), vec![DiagnosticKind::ShapeMismatch]);
        assert!(diags[0].message.contains("inner dimensions"));
    }

    #[test]
    fn detects_wrong_recorded_output_shape() {
        let a = Tensor::zeros(2, 2);
        let b = Tensor::zeros(2, 2);
        // Valid matmul but the recorded output claims the wrong shape.
        let bad = Tensor::from_op_unchecked(vec![0.0; 4], 1, 4, Op::MatMul(a, b));
        let diags = audit_tape(&bad);
        assert_eq!(kinds(&diags), vec![DiagnosticKind::ShapeMismatch]);
        assert!(diags[0].message.contains("operands imply"));
    }

    #[test]
    fn detects_broadcast_and_index_defects() {
        let a = Tensor::zeros(3, 2);
        let bias = Tensor::zeros(1, 3); // should be [1,2]
        let bad = Tensor::from_op_unchecked(vec![0.0; 6], 3, 2, Op::AddRowBroadcast(a, bias));
        assert_eq!(
            kinds(&audit_tape(&bad)),
            vec![DiagnosticKind::ShapeMismatch]
        );

        let src = Tensor::zeros(2, 1);
        let bad_gather = Tensor::from_op_unchecked(
            vec![0.0; 2],
            2,
            1,
            Op::GatherRows(src, std::rc::Rc::new(vec![0, 5])),
        );
        let diags = audit_tape(&bad_gather);
        assert_eq!(kinds(&diags), vec![DiagnosticKind::ShapeMismatch]);
        assert!(diags[0].message.contains("gather index 5"));
    }

    // ---------------- tape: dead gradients ----------------

    #[test]
    fn detects_detached_parameter() {
        let used = Tensor::scalar(1.0).requires_grad();
        let detached = Tensor::scalar(2.0).requires_grad();
        let loss = used.mul_scalar(3.0).sum_all();
        let diags = audit_tape_with_params(&loss, &[used, detached.clone()]);
        assert_eq!(kinds(&diags), vec![DiagnosticKind::DetachedGradient]);
        assert_eq!(diags[0].tensor, Some(detached.id()));
    }

    #[test]
    fn detach_call_is_flagged() {
        // The realistic bug: a mask whose history was severed by detach().
        let mask = Tensor::from_vec(vec![0.5, 0.5], 2, 1).requires_grad();
        let loss = mask.detach().sigmoid().sum_all();
        let diags = audit_tape_with_params(&loss, &[mask]);
        assert_eq!(kinds(&diags), vec![DiagnosticKind::DetachedGradient]);
    }

    // ---------------- tape: stability lints ----------------

    #[test]
    fn detects_ln_of_sigmoid() {
        let x = Tensor::from_vec(vec![-3.0, 0.5], 2, 1).requires_grad();
        let loss = x.sigmoid().ln().neg().sum_all();
        let diags = audit_tape(&loss);
        assert_eq!(
            kinds(&diags),
            vec![DiagnosticKind::UnstablePattern(
                StabilityPattern::LnOfSigmoid
            )]
        );
        // The stable rewrite passes.
        let stable = x.neg().softplus().sum_all();
        assert!(audit_tape(&stable).is_empty());
    }

    #[test]
    fn detects_exp_of_exp_through_affine_ops() {
        let x = Tensor::scalar(1.0).requires_grad();
        let loss = x.exp().mul_scalar(0.5).exp().sum_all();
        let diags = audit_tape(&loss);
        assert_eq!(
            kinds(&diags),
            vec![DiagnosticKind::UnstablePattern(StabilityPattern::ExpOfExp)]
        );
    }

    #[test]
    fn detects_softmax_without_shift() {
        // Hand-rolled segment softmax sharing the unshifted exp between
        // numerator and denominator.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], 3, 1).requires_grad();
        let e = x.exp();
        let denom = e.scatter_add_rows(&[0, 0, 0], 1).gather_rows(&[0, 0, 0]);
        let p = e.div(&denom);
        let diags = audit_tape(&p.sum_all());
        assert_eq!(
            kinds(&diags),
            vec![DiagnosticKind::UnstablePattern(
                StabilityPattern::SoftmaxWithoutShift
            )]
        );
        // The built-in (shifted) segment softmax is clean.
        let clean = x.segment_softmax(&[0, 0, 0]).sum_all();
        assert!(audit_tape(&clean).is_empty());
    }

    // ---------------- incidence / containers ----------------

    #[test]
    fn healthy_flow_index_is_clean() {
        let mut b = Graph::builder(4, 1);
        b.edge(0, 1).edge(1, 2).edge(2, 3).edge(0, 2);
        let mp = MpGraph::new(&b.build());
        assert!(audit_mp_graph(&mp).is_empty());
        let index =
            FlowIndex::build(&mp, 3, Target::Node(3), 100_000).expect("small graph fits cap");
        assert!(audit_flow_index(&mp, &index).is_empty());
    }

    #[test]
    fn detects_corrupted_incidence_column_sums() {
        // 3 edges × 4 flows: flow 1 appears twice, flow 3 never.
        let mat = BinCsr::from_rows(3, 4, &[vec![0, 1], vec![1, 2], vec![]]);
        let diags = audit_incidence(&mat);
        let ks = kinds(&diags);
        assert_eq!(
            ks,
            vec![
                DiagnosticKind::IncidenceViolation(IncidenceCheck::ColumnSum),
                DiagnosticKind::IncidenceViolation(IncidenceCheck::ColumnSum),
            ]
        );
        assert!(diags[0].message.contains("flow 1"));
        assert!(diags[1].message.contains("flow 3"));
    }

    #[test]
    fn detects_unsorted_incidence_row() {
        let mat = BinCsr::from_rows(1, 2, &[vec![1, 0]]);
        let ks = kinds(&audit_bin_csr(&mat));
        assert_eq!(
            ks,
            vec![DiagnosticKind::IncidenceViolation(
                IncidenceCheck::UnsortedRow
            )]
        );
    }

    #[test]
    fn empty_bin_csr_is_clean() {
        let mat = BinCsr::from_rows(0, 0, &[]);
        assert!(audit_bin_csr(&mat).is_empty());
        assert!(audit_incidence(&mat).is_empty());
    }
}
