//! `audit` — runs every static analysis over a real REVELIO workload, then
//! over four deliberately seeded defects.
//!
//! ```text
//! cargo run -p revelio-analysis --bin audit
//! ```
//!
//! Part 1 mirrors the quickstart example: train a GCN on Tree-Cycles,
//! extract the 3-hop computation subgraph of a motif node, build the flow
//! index, and record one mask-learning loss tape (Eqs. 4/5/7 + factual
//! objective). Every audit must come back clean.
//!
//! Part 2 seeds the four defect classes the analyzer exists to catch — a
//! matmul shape mismatch, a detached mask parameter, an unstabilised
//! hand-rolled softmax, and a corrupted flow-incidence matrix — and checks
//! each is reported as its distinct [`DiagnosticKind`].
//!
//! Part 3 lints the serving stack's concurrency discipline: the sources of
//! the facade crates (`revelio-trace`, `revelio-runtime`) are embedded at
//! compile time and must come back clean (pure-counter `Relaxed` only, no
//! `std::sync`/`std::thread` bypassing `revelio_check::sync`), the
//! `Relaxed`-discipline rule also sweeps the server/bench/core sources,
//! and two seeded source defects — a relaxed publication store and a
//! facade bypass — must each be flagged.
//!
//! Exits non-zero if a healthy audit reports anything or a seeded defect
//! goes undetected, so CI can run it as a gate.

use std::process::ExitCode;

use revelio_analysis::{
    audit_flow_index, audit_incidence, audit_mp_graph, audit_tape, audit_tape_with_params,
    lint_concurrency, ConcurrencyCheck, Diagnostic, DiagnosticKind, IncidenceCheck,
    StabilityPattern, WORKSPACE_CONCURRENCY_ALLOWANCES,
};
use revelio_datasets::tree_cycles;
use revelio_gnn::{train_node_classifier, Gnn, GnnConfig, GnnKind, Instance, Task, TrainConfig};
use revelio_graph::{khop_subgraph, FlowIndex, Target};
use revelio_tensor::{BinCsr, Op, Tensor};

fn report(label: &str, ok: bool, diags: &[Diagnostic], failures: &mut u32) {
    if ok {
        println!("  ok   {label}");
    } else {
        *failures += 1;
        println!("  FAIL {label}");
    }
    for d in diags {
        println!("         {d}");
    }
}

/// A healthy run must produce no diagnostics.
fn expect_clean(label: &str, diags: Vec<Diagnostic>, failures: &mut u32) {
    report(label, diags.is_empty(), &diags, failures);
}

/// A seeded defect must be reported with the expected kind.
fn expect_kind(label: &str, diags: Vec<Diagnostic>, kind: DiagnosticKind, failures: &mut u32) {
    let ok = diags.iter().any(|d| d.kind == kind);
    report(label, ok, &diags, failures);
}

fn main() -> ExitCode {
    let mut failures = 0u32;

    // ---- Part 1: audits over the quickstart workload --------------------
    println!("auditing the Tree-Cycles / GCN quickstart workload:");
    let data = tree_cycles(0);
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gcn,
        Task::NodeClassification,
        data.graph.feat_dim(),
        data.num_classes,
        0,
    ));
    train_node_classifier(
        &model,
        &data.graph,
        &data.split.train,
        &TrainConfig {
            epochs: 30,
            ..Default::default()
        },
    );

    let target = 511; // first cycle-motif node, as in the quickstart
    let sub = khop_subgraph(&data.graph, target, model.num_layers());
    let instance = Instance::for_prediction(&model, sub.graph.clone(), Target::Node(sub.target));
    expect_clean(
        "message-passing view invariants",
        audit_mp_graph(&instance.mp),
        &mut failures,
    );

    let index = FlowIndex::build(&instance.mp, model.num_layers(), instance.target, 1_000_000)
        .expect("quickstart subgraph fits the flow cap");
    expect_clean(
        "flow-incidence invariants (Eq. 7)",
        audit_flow_index(&instance.mp, &index),
        &mut failures,
    );

    // One REVELIO mask-learning step, recorded but never executed further:
    // ω[E] = σ(I_l · tanh(M) ⊙ exp(w_l)), factual NLL on the masked logits.
    let nf = index.num_flows();
    let ne = instance.mp.layer_edge_count();
    let mask = Tensor::from_vec(vec![0.1; nf], nf, 1).requires_grad();
    let weights: Vec<Tensor> = (0..model.num_layers())
        .map(|_| Tensor::from_vec(vec![0.0], 1, 1).requires_grad())
        .collect();
    let all_rows = vec![0usize; ne];
    let masks: Vec<Tensor> = (0..model.num_layers())
        .map(|l| {
            mask.tanh_t()
                .sp_matvec(index.incidence(l))
                .mul(&weights[l].exp().gather_rows(&all_rows))
                .sigmoid()
        })
        .collect();
    let loss = model
        .target_logits(&instance.mp, &instance.x, Some(&masks), instance.target)
        .log_softmax_rows()
        .nll_loss(&[instance.class]);
    let mut params = vec![mask.clone()];
    params.extend(weights.iter().cloned());
    expect_clean(
        "mask-learning loss tape (shapes, stability, gradient reach)",
        audit_tape_with_params(&loss, &params),
        &mut failures,
    );

    // ---- Part 2: seeded defects must each be caught ---------------------
    println!("seeding the four defect classes:");

    // 1. Shape mismatch: a recorded matmul whose inner dimensions disagree.
    let bad_matmul = Tensor::from_op_unchecked(
        vec![0.0; 4],
        2,
        2,
        Op::MatMul(Tensor::zeros(2, 3), Tensor::zeros(2, 2)),
    );
    expect_kind(
        "matmul inner-dimension mismatch",
        audit_tape(&bad_matmul.sum_all()),
        DiagnosticKind::ShapeMismatch,
        &mut failures,
    );

    // 2. Detached-gradient mask: history severed by detach(), so the mask
    //    parameter can never train.
    let detached_loss = mask.detach().tanh_t().sum_all();
    expect_kind(
        "detached mask parameter",
        audit_tape_with_params(&detached_loss, std::slice::from_ref(&mask)),
        DiagnosticKind::DetachedGradient,
        &mut failures,
    );

    // 3. Unstable pattern: softmax hand-rolled from an unshifted exp.
    let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0], 3, 1).requires_grad();
    let e = logits.exp();
    let denom = e.scatter_add_rows(&[0, 0, 0], 1).gather_rows(&[0, 0, 0]);
    expect_kind(
        "softmax without max shift",
        audit_tape(&e.div(&denom).sum_all()),
        DiagnosticKind::UnstablePattern(StabilityPattern::SoftmaxWithoutShift),
        &mut failures,
    );

    // 4. Corrupted flow incidence: one flow crosses two layer edges, one
    //    crosses none — both violate Eq. 7's unit column sums.
    let healthy = index.incidence(0);
    let mut rows: Vec<Vec<u32>> = (0..healthy.rows())
        .map(|r| healthy.row(r).to_vec())
        .collect();
    let moved = rows
        .iter()
        .position(|r| !r.is_empty())
        .expect("incidence has at least one entry");
    let f = rows[moved][0];
    rows[moved].retain(|&c| c != f);
    let dup_row = (moved + 1) % rows.len();
    rows[dup_row] = {
        let mut r = rows[dup_row].clone();
        r.push(f);
        r.push(f); // duplicate entry also breaks strict ordering
        r.sort_unstable();
        r
    };
    let corrupted = BinCsr::from_rows(healthy.rows(), healthy.cols(), &rows);
    expect_kind(
        "corrupted incidence column sums",
        audit_incidence(&corrupted),
        DiagnosticKind::IncidenceViolation(IncidenceCheck::ColumnSum),
        &mut failures,
    );

    // ---- Part 3: concurrency-discipline lint over the real sources ------
    println!("linting concurrency discipline (facade crates must be clean):");

    // Facade crates: both rules (counter-only `Relaxed`, no std bypass).
    let facade_sources: [(&str, &str); 9] = [
        (
            "crates/trace/src/lib.rs",
            include_str!("../../../trace/src/lib.rs"),
        ),
        (
            "crates/runtime/src/lib.rs",
            include_str!("../../../runtime/src/lib.rs"),
        ),
        (
            "crates/runtime/src/pool.rs",
            include_str!("../../../runtime/src/pool.rs"),
        ),
        (
            "crates/runtime/src/pool_core.rs",
            include_str!("../../../runtime/src/pool_core.rs"),
        ),
        (
            "crates/runtime/src/cache.rs",
            include_str!("../../../runtime/src/cache.rs"),
        ),
        (
            "crates/runtime/src/metrics.rs",
            include_str!("../../../runtime/src/metrics.rs"),
        ),
        (
            "crates/runtime/src/trace_store.rs",
            include_str!("../../../runtime/src/trace_store.rs"),
        ),
        (
            "crates/runtime/src/job.rs",
            include_str!("../../../runtime/src/job.rs"),
        ),
        (
            "crates/runtime/src/prometheus.rs",
            include_str!("../../../runtime/src/prometheus.rs"),
        ),
    ];
    for (path, source) in facade_sources {
        expect_clean(
            &format!("facade discipline: {path}"),
            lint_concurrency(path, source, true, WORKSPACE_CONCURRENCY_ALLOWANCES),
            &mut failures,
        );
    }

    // Non-facade concurrent crates: only the `Relaxed` discipline applies
    // (their threads and locks legitimately speak `std`).
    let counter_only_sources: [(&str, &str); 3] = [
        (
            "crates/core/src/control.rs",
            include_str!("../../../core/src/control.rs"),
        ),
        (
            "crates/server/src/server.rs",
            include_str!("../../../server/src/server.rs"),
        ),
        (
            "crates/bench/src/bin/loadgen.rs",
            include_str!("../../../bench/src/bin/loadgen.rs"),
        ),
    ];
    for (path, source) in counter_only_sources {
        expect_clean(
            &format!("relaxed discipline: {path}"),
            lint_concurrency(path, source, false, WORKSPACE_CONCURRENCY_ALLOWANCES),
            &mut failures,
        );
    }

    // Seeded source defects: each rule must fire on its textbook instance.
    let seeded_relaxed_store = "
fn publish(&self, bucket: u64) {
    self.bucket.store(bucket, Ordering::Relaxed);
    self.ready.store(1, Ordering::Relaxed);
}
";
    expect_kind(
        "seeded relaxed publication store",
        lint_concurrency("seeded/relaxed.rs", seeded_relaxed_store, false, &[]),
        DiagnosticKind::ConcurrencyLint(ConcurrencyCheck::RelaxedPublication),
        &mut failures,
    );
    let seeded_facade_bypass = "
use std::sync::atomic::AtomicU64;
fn fire_and_forget() {
    std::thread::spawn(|| {});
}
";
    expect_kind(
        "seeded facade bypass",
        lint_concurrency("seeded/bypass.rs", seeded_facade_bypass, true, &[]),
        DiagnosticKind::ConcurrencyLint(ConcurrencyCheck::FacadeBypass),
        &mut failures,
    );

    if failures == 0 {
        println!("audit passed: healthy workload clean, all seeded defects detected");
        ExitCode::SUCCESS
    } else {
        println!("audit FAILED: {failures} check(s) did not behave as expected");
        ExitCode::FAILURE
    }
}
