//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every binary accepts:
//!
//! * `--full` — the paper's scale (50 instances, 500 learning epochs);
//!   without it a reduced "quick" budget runs (8 instances, ~100 epochs);
//! * `--datasets A,B,...` — restrict to the named Table III datasets;
//! * `--models gcn,gin,gat` — restrict architectures;
//! * `--methods M1,M2,...` — restrict explanation methods;
//! * `--instances N` — override the per-dataset instance count;
//! * `--seed N` — the global seed.

#![deny(clippy::print_stdout, clippy::print_stderr)]

use std::time::Instant;

use revelio_core::Objective;
use revelio_datasets::{by_name, Dataset, ALL_DATASETS};
use revelio_eval::{
    fidelity_minus, fidelity_plus, flow_cap, is_flow_based, is_group_level, make_method,
    method_factory, sample_instances, sample_instances_cached, trained_model, Effort, EvalInstance,
    SamplingConfig, ALL_METHODS,
};
use revelio_gnn::{Gnn, GnnKind, ModelZoo};
use revelio_runtime::{ExplainJob, Runtime, RuntimeConfig};

/// Parsed command-line options shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    pub effort: Effort,
    pub seed: u64,
    pub datasets: Vec<&'static str>,
    pub models: Vec<GnnKind>,
    pub methods: Vec<&'static str>,
    pub instances: usize,
    pub sparsities: Vec<f64>,
}

impl HarnessArgs {
    /// Parses `std::env::args`, panicking with a usage message on errors.
    pub fn parse() -> HarnessArgs {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        Self::parse_from(&argv)
    }

    /// Parses an explicit argument list (exposed for tests).
    pub fn parse_from(argv: &[String]) -> HarnessArgs {
        let mut effort = Effort::Quick;
        let mut seed = 0u64;
        let mut datasets: Vec<&'static str> = ALL_DATASETS.to_vec();
        let mut models = vec![GnnKind::Gcn, GnnKind::Gin, GnnKind::Gat];
        let mut methods: Vec<&'static str> = ALL_METHODS.to_vec();
        let mut instances: Option<usize> = None;

        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--full" => effort = Effort::Paper,
                "--quick" => effort = Effort::Quick,
                "--seed" => {
                    i += 1;
                    seed = argv[i].parse().expect("--seed takes an integer");
                }
                "--instances" => {
                    i += 1;
                    instances = Some(argv[i].parse().expect("--instances takes an integer"));
                }
                "--datasets" => {
                    i += 1;
                    datasets = argv[i]
                        .split(',')
                        .map(|d| {
                            *ALL_DATASETS
                                .iter()
                                .find(|n| n.eq_ignore_ascii_case(d))
                                .unwrap_or_else(|| panic!("unknown dataset {d:?}"))
                        })
                        .collect();
                }
                "--models" => {
                    i += 1;
                    models = argv[i]
                        .split(',')
                        .map(|m| match m.to_lowercase().as_str() {
                            "gcn" => GnnKind::Gcn,
                            "gin" => GnnKind::Gin,
                            "gat" => GnnKind::Gat,
                            other => panic!("unknown model {other:?}"),
                        })
                        .collect();
                }
                "--methods" => {
                    i += 1;
                    methods = argv[i]
                        .split(',')
                        .map(|m| {
                            *ALL_METHODS
                                .iter()
                                .find(|n| n.eq_ignore_ascii_case(m))
                                .unwrap_or_else(|| panic!("unknown method {m:?}"))
                        })
                        .collect();
                }
                other => panic!("unknown flag {other:?}"),
            }
            i += 1;
        }

        let default_instances = match effort {
            Effort::Quick => 8,
            Effort::Paper => 50,
        };
        HarnessArgs {
            effort,
            seed,
            datasets,
            models,
            methods,
            instances: instances.unwrap_or(default_instances),
            sparsities: match effort {
                Effort::Quick => vec![0.5, 0.7, 0.9],
                Effort::Paper => vec![0.5, 0.6, 0.7, 0.8, 0.9],
            },
        }
    }

    /// The sampling configuration matching these arguments. The flow cap is
    /// [`flow_cap`], the same value the runtime's artifact-prep stage uses,
    /// so cache keys align between sampling and serving.
    pub fn sampling(&self, only_motif_correct: bool) -> SamplingConfig {
        SamplingConfig {
            count: self.instances,
            max_flows: flow_cap(self.effort) as u64,
            only_motif_correct,
            seed: self.seed ^ 0x1257,
        }
    }

    /// The serving runtime for a harness run: one worker per available
    /// core, seeded from the harness seed.
    pub fn runtime(&self) -> Runtime {
        Runtime::with_config(RuntimeConfig {
            workers: available_workers(),
            seed: self.seed,
            ..Default::default()
        })
    }
}

/// Worker threads to use by default: one per available core.
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// The synthetic serving workload shared by the `throughput` and `loadgen`
/// benchmarks: a family of `n` small labelled graph variants and a model
/// trained to classify their nodes. Variants differ in one chord so jobs
/// with distinct `graph_id`s genuinely enumerate distinct flow sets.
pub fn serving_workload(n: usize) -> (Gnn, Vec<revelio_graph::Graph>) {
    let graphs: Vec<revelio_graph::Graph> = (0..n)
        .map(|variant| {
            let mut b = revelio_graph::Graph::builder(6, 2);
            b.undirected_edge(0, 1)
                .undirected_edge(1, 2)
                .undirected_edge(2, 3)
                .undirected_edge(3, 4)
                .undirected_edge(4, 5);
            if variant % 3 == 1 {
                b.undirected_edge(0, 2);
            }
            if variant % 3 == 2 {
                b.undirected_edge(1, 3);
            }
            for v in 0..6 {
                b.node_features(v, &[1.0, (v + variant) as f32 * 0.25]);
            }
            b.node_labels((0..6).map(|v| (v + variant) % 2).collect());
            b.build()
        })
        .collect();
    let model = Gnn::new(revelio_gnn::GnnConfig {
        kind: GnnKind::Gcn,
        task: revelio_gnn::Task::NodeClassification,
        in_dim: 2,
        hidden_dim: 8,
        num_classes: 2,
        num_layers: 2,
        heads: 1,
        seed: 7,
    });
    revelio_gnn::train_node_classifier(
        &model,
        &graphs[0],
        &[0, 1, 2, 3, 4, 5],
        &revelio_gnn::TrainConfig {
            epochs: 20,
            ..Default::default()
        },
    );
    (model, graphs)
}

/// The synthetic datasets on which the paper does not run GAT.
pub fn is_synthetic(dataset: &str) -> bool {
    matches!(dataset, "BA-Shapes" | "Tree-Cycles" | "BA-2motifs")
}

/// Whether a (method, model, dataset) combination runs in the paper:
/// GAT is skipped on synthetic datasets, and GNN-LRP is incompatible with
/// GAT (§V-B "Specification").
pub fn combination_applicable(method: &str, kind: GnnKind, dataset: &str) -> bool {
    if kind == GnnKind::Gat && is_synthetic(dataset) {
        return false;
    }
    if method == "GNN-LRP" && kind == GnnKind::Gat {
        return false;
    }
    true
}

/// Loads (or generates) a dataset by name with the harness seed.
pub fn load_dataset(name: &str, seed: u64) -> Dataset {
    by_name(name, seed)
}

/// Trains or loads the cached model for a (dataset, architecture) pair.
pub fn model_for(zoo: &ModelZoo, dataset: &Dataset, kind: GnnKind, args: &HarnessArgs) -> Gnn {
    trained_model(zoo, dataset, kind, args.effort, args.seed)
}

/// Result rows of a fidelity experiment: `(method, sparsity, mean fidelity)`.
pub struct FidelityResult {
    pub method: &'static str,
    pub rows: Vec<(f64, f32)>,
    /// Mean wall-clock seconds per instance explanation.
    pub seconds_per_instance: f64,
}

/// Runs one (dataset, model) fidelity experiment across methods, returning
/// per-method mean Fidelity−/Fidelity+ at each sparsity, plus timings
/// (shared by Figs. 3–4 and Table V).
///
/// Instance-level methods are served through `rt`'s worker pool: each
/// instance is one deadline-capable job, flow enumerations are shared via
/// the runtime's artifact cache across methods, and results are
/// deterministic for a given runtime seed regardless of worker count.
/// Group-level methods (PGExplainer, GraphMask) train shared state that
/// cannot cross threads, so they run on the serial path against the same
/// instances.
#[allow(clippy::too_many_arguments)] // mirrors the experiment grid's axes
pub fn run_fidelity(
    rt: &Runtime,
    model: &Gnn,
    eval_instances: &[EvalInstance],
    methods: &[&'static str],
    objective: Objective,
    sparsities: &[f64],
    effort: Effort,
    seed: u64,
) -> Vec<FidelityResult> {
    let handle = rt.register_model(model);
    let mut out = Vec::new();
    for &method in methods {
        let start = Instant::now();
        let explanations: Vec<revelio_core::Explanation> = if is_group_level(method) {
            let explainer = make_method(method, objective, effort, seed);
            let refs: Vec<&revelio_gnn::Instance> =
                eval_instances.iter().map(|e| &e.instance).collect();
            explainer.fit(model, &refs);
            eval_instances
                .iter()
                .map(|e| explainer.explain(model, &e.instance))
                .collect()
        } else {
            let jobs: Vec<ExplainJob> = eval_instances
                .iter()
                .map(|e| ExplainJob {
                    graph: e.instance.graph.clone(),
                    target: e.instance.target,
                    graph_id: e.graph_id,
                    make_explainer: method_factory(method, objective, effort),
                    needs_flows: is_flow_based(method),
                    max_flows: flow_cap(effort),
                    shrink_on_overflow: true,
                    deadline: None,
                    trace: false,
                    trace_key: None,
                    warm_start: false,
                    batch_spec: None,
                })
                .collect();
            rt.explain_batch(handle, jobs)
                .into_iter()
                .map(|r| {
                    r.unwrap_or_else(|e| panic!("{method}: job failed: {e}"))
                        .explanation
                })
                .collect()
        };
        let seconds_per_instance =
            start.elapsed().as_secs_f64() / eval_instances.len().max(1) as f64;

        let rows = sparsities
            .iter()
            .map(|&s| {
                let mean: f32 = eval_instances
                    .iter()
                    .zip(&explanations)
                    .map(|(e, exp)| match objective {
                        Objective::Factual => fidelity_minus(model, &e.instance, exp, s),
                        Objective::Counterfactual => fidelity_plus(model, &e.instance, exp, s),
                    })
                    .sum::<f32>()
                    / eval_instances.len().max(1) as f32;
                (s, mean)
            })
            .collect();
        out.push(FidelityResult {
            method,
            rows,
            seconds_per_instance,
        });
    }
    out
}

/// Samples the evaluation instances for a (dataset, model) pair.
pub fn instances_for(
    dataset: &Dataset,
    model: &Gnn,
    args: &HarnessArgs,
    only_motif_correct: bool,
) -> Vec<EvalInstance> {
    sample_instances(dataset, model, &args.sampling(only_motif_correct))
}

/// [`instances_for`], warming the runtime's artifact cache: subgraph
/// extraction goes through the cache and each accepted instance's flow
/// index is pre-built, so the first explainer already hits.
pub fn instances_for_runtime(
    dataset: &Dataset,
    model: &Gnn,
    args: &HarnessArgs,
    only_motif_correct: bool,
    rt: &Runtime,
) -> Vec<EvalInstance> {
    sample_instances_cached(
        dataset,
        model,
        &args.sampling(only_motif_correct),
        rt.cache(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applicability_matrix_matches_paper() {
        assert!(!combination_applicable(
            "REVELIO",
            GnnKind::Gat,
            "BA-Shapes"
        ));
        assert!(!combination_applicable("GNN-LRP", GnnKind::Gat, "Cora"));
        assert!(combination_applicable("GNN-LRP", GnnKind::Gcn, "Cora"));
        assert!(combination_applicable("REVELIO", GnnKind::Gat, "MUTAG"));
        assert!(combination_applicable("FlowX", GnnKind::Gin, "BA-2motifs"));
    }

    fn parse(args: &[&str]) -> HarnessArgs {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        HarnessArgs::parse_from(&argv)
    }

    #[test]
    fn default_args_cover_everything() {
        let a = parse(&[]);
        assert_eq!(a.effort, Effort::Quick);
        assert_eq!(a.datasets.len(), 8);
        assert_eq!(a.models.len(), 3);
        assert_eq!(a.methods.len(), 10);
        assert_eq!(a.instances, 8);
    }

    #[test]
    fn full_flag_switches_budgets() {
        let a = parse(&["--full"]);
        assert_eq!(a.effort, Effort::Paper);
        assert_eq!(a.instances, 50);
        assert_eq!(a.sparsities.len(), 5);
    }

    #[test]
    fn filters_parse_case_insensitively() {
        let a = parse(&[
            "--datasets",
            "ba-shapes,MUTAG",
            "--models",
            "GCN",
            "--methods",
            "revelio,FlowX",
            "--instances",
            "3",
            "--seed",
            "9",
        ]);
        assert_eq!(a.datasets, vec!["BA-Shapes", "MUTAG"]);
        assert_eq!(a.models, vec![GnnKind::Gcn]);
        assert_eq!(a.methods, vec!["REVELIO", "FlowX"]);
        assert_eq!(a.instances, 3);
        assert_eq!(a.seed, 9);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        let _ = parse(&["--datasets", "Reddit"]);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = parse(&["--explode"]);
    }

    #[test]
    fn run_fidelity_serves_instance_methods_through_the_runtime() {
        use revelio_datasets::tree_cycles;
        use revelio_gnn::{GnnConfig, Task};

        let d = tree_cycles(2);
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            d.graph.feat_dim(),
            d.num_classes,
            5,
        ));
        let ds = Dataset::Node(d);
        let cfg = SamplingConfig {
            count: 2,
            max_flows: flow_cap(Effort::Quick) as u64,
            ..Default::default()
        };
        let rt = Runtime::with_config(RuntimeConfig {
            workers: 2,
            seed: 11,
            ..Default::default()
        });
        let instances = sample_instances_cached(&ds, &model, &cfg, rt.cache());
        assert_eq!(instances.len(), 2);
        let (_, misses_after_sampling) = rt.cache().stats();

        let results = run_fidelity(
            &rt,
            &model,
            &instances,
            &["GNN-LRP", "GradCAM"],
            Objective::Factual,
            &[0.5, 0.7],
            Effort::Quick,
            11,
        );
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.rows.len(), 2);
            for &(_, f) in &r.rows {
                assert!(f.is_finite());
            }
        }
        // Sampling already warmed every instance's flow index, so the
        // flow-based method's jobs are pure cache hits.
        let (hits, misses) = rt.cache().stats();
        assert_eq!(
            misses, misses_after_sampling,
            "run_fidelity must not rebuild any warmed artifact"
        );
        assert!(hits >= instances.len() as u64);
        assert_eq!(rt.metrics().jobs_failed, 0);
    }

    #[test]
    fn synthetic_classification() {
        assert!(is_synthetic("BA-Shapes"));
        assert!(is_synthetic("Tree-Cycles"));
        assert!(is_synthetic("BA-2motifs"));
        assert!(!is_synthetic("Cora"));
        assert!(!is_synthetic("MUTAG"));
    }
}
