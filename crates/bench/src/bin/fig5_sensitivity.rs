//! Reproduces **Fig. 5**: sensitivity of REVELIO's Fidelity± to the
//! sparsity-constraint strength `α` (Eqs. 8–9) on PubMed and MUTAG.
//!
//! ```text
//! cargo run -p revelio-bench --release --bin fig5_sensitivity [--full]
//! ```

use revelio_bench::{instances_for, load_dataset, model_for, HarnessArgs};
use revelio_core::{Objective, Revelio, RevelioConfig};
use revelio_eval::{experiments_dir, fidelity_minus, fidelity_plus, Effort, Table};
use revelio_gnn::{GnnKind, ModelZoo};

fn main() {
    let mut args = HarnessArgs::parse();
    // Fig. 5 uses PubMed (GCN) and MUTAG (GCN); restrict unless overridden.
    if args.datasets.len() == 8 {
        args.datasets = vec!["PubMed", "MUTAG"];
    }
    let alphas = [0.0f32, 0.01, 0.1, 0.5, 1.0];
    let zoo = ModelZoo::default_location();

    let mut table = Table::new(
        "Fig. 5: Fidelity± vs sparsity for different alpha (REVELIO)",
        &["Dataset", "Alpha", "Sparsity", "Fidelity-", "Fidelity+"],
    );

    for name in &args.datasets {
        let dataset = load_dataset(name, args.seed);
        let model = model_for(&zoo, &dataset, GnnKind::Gcn, &args);
        let instances = instances_for(&dataset, &model, &args, false);
        if instances.is_empty() {
            eprintln!("skipping {name}: no instances sampled");
            continue;
        }
        let epochs = match args.effort {
            Effort::Quick => 100,
            Effort::Paper => 500,
        };

        for &alpha in &alphas {
            let factual = Revelio::new(RevelioConfig {
                epochs,
                alpha,
                objective: Objective::Factual,
                seed: args.seed,
                ..Default::default()
            });
            let counterfactual = Revelio::new(RevelioConfig {
                epochs,
                alpha,
                objective: Objective::Counterfactual,
                seed: args.seed,
                ..Default::default()
            });
            use revelio_core::Explainer;
            let f_exps: Vec<_> = instances
                .iter()
                .map(|e| factual.explain(&model, &e.instance))
                .collect();
            let c_exps: Vec<_> = instances
                .iter()
                .map(|e| counterfactual.explain(&model, &e.instance))
                .collect();

            for &s in &args.sparsities {
                let fm: f32 = instances
                    .iter()
                    .zip(&f_exps)
                    .map(|(e, exp)| fidelity_minus(&model, &e.instance, exp, s))
                    .sum::<f32>()
                    / instances.len() as f32;
                let fp: f32 = instances
                    .iter()
                    .zip(&c_exps)
                    .map(|(e, exp)| fidelity_plus(&model, &e.instance, exp, s))
                    .sum::<f32>()
                    / instances.len() as f32;
                table.row(vec![
                    name.to_string(),
                    format!("{alpha}"),
                    format!("{s:.1}"),
                    format!("{fm:.4}"),
                    format!("{fp:.4}"),
                ]);
            }
            eprintln!("done: {name} alpha={alpha}");
        }
    }

    table.print();
    table.write_csv(experiments_dir().join("fig5_sensitivity.csv"));
    println!("\nCSV written to target/experiments/fig5_sensitivity.csv");
}
