//! Reproduces **Fig. 6**: explanatory-subgraph visualisations for a
//! BA-Shapes instance (GCN) and a BA-2motifs instance (GIN).
//!
//! For each method, a Graphviz DOT file is written with motif nodes
//! coloured, explanatory edges bold, and missed ground-truth edges dashed
//! red — the visual vocabulary of the paper's figure. A ground-truth
//! hit-rate summary line is printed per method.
//!
//! ```text
//! cargo run -p revelio-bench --release --bin fig6_visualization [--full]
//! ```

use std::collections::HashSet;
use std::fs;

use revelio_bench::{combination_applicable, instances_for, load_dataset, model_for, HarnessArgs};
use revelio_core::Objective;
use revelio_eval::{experiments_dir, explanation_dot, make_method, DotOptions, EvalInstance};
use revelio_gnn::{Gnn, GnnKind, ModelZoo};

fn visualize(name: &str, kind: GnnKind, model: &Gnn, e: &EvalInstance, args: &HarnessArgs) {
    let dir = experiments_dir().join("fig6");
    fs::create_dir_all(&dir).expect("create fig6 dir");
    let gt_ids: Vec<usize> = e
        .ground_truth
        .as_ref()
        .map(|v| {
            v.iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| i)
                .collect()
        })
        .unwrap_or_default();
    // Top-k: ground-truth size plus a small margin ("we report additional
    // explanatory edges", §V-E).
    let k = gt_ids.len().max(8) + 4;

    for &method in &args.methods {
        if !combination_applicable(method, kind, name) {
            continue;
        }
        let explainer = make_method(method, Objective::Factual, args.effort, args.seed);
        let exp = explainer.explain(model, &e.instance);
        let top = exp.top_edges(k);
        let title = format!("{name} / {} / {method}", kind.name());
        let body = explanation_dot(
            &e.instance.graph,
            &DotOptions {
                title: &title,
                explanatory: &top,
                ground_truth: (!gt_ids.is_empty()).then_some(gt_ids.as_slice()),
                target: e.instance.target,
            },
        );
        let file = dir.join(format!(
            "{}_{}_{}.dot",
            name.to_lowercase().replace('-', "_"),
            kind.name().to_lowercase(),
            method.to_lowercase().replace('-', "_")
        ));
        fs::write(&file, body).expect("write dot file");
        if !gt_ids.is_empty() {
            let gt_set: HashSet<usize> = gt_ids.iter().copied().collect();
            let hits = top.iter().filter(|t| gt_set.contains(t)).count();
            println!(
                "{title}: {hits}/{} ground-truth edges in top-{k} -> {}",
                gt_set.len(),
                file.display()
            );
        }
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let zoo = ModelZoo::default_location();

    for (name, kind) in [("BA-Shapes", GnnKind::Gcn), ("BA-2motifs", GnnKind::Gin)] {
        if !args.datasets.contains(&name) {
            continue;
        }
        let dataset = load_dataset(name, args.seed);
        let model = model_for(&zoo, &dataset, kind, &args);
        let instances = instances_for(&dataset, &model, &args, true);
        let Some(e) = instances.iter().find(|e| e.ground_truth.is_some()) else {
            eprintln!("no motif instance found for {name}");
            continue;
        };
        visualize(name, kind, &model, e, &args);
    }
    println!("DOT files written under target/experiments/fig6/");
}
