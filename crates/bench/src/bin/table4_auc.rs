//! Reproduces **Table IV**: explanation ROC-AUC on the synthetic datasets
//! (BA-Shapes, Tree-Cycles, BA-2motifs) with GCN and GIN, using the planted
//! motif edges as ground truth. Instances are restricted to motif members
//! with correct predictions, per the paper's protocol.
//!
//! ```text
//! cargo run -p revelio-bench --release --bin table4_auc [--full] ...
//! ```

use revelio_bench::{combination_applicable, instances_for, load_dataset, model_for, HarnessArgs};
use revelio_core::Objective;
use revelio_eval::{experiments_dir, make_method, try_roc_auc, Table};
use revelio_gnn::{GnnKind, Instance, ModelZoo};

fn main() {
    let args = HarnessArgs::parse();
    let zoo = ModelZoo::default_location();
    let datasets: Vec<&str> = args
        .datasets
        .iter()
        .copied()
        .filter(|d| revelio_bench::is_synthetic(d))
        .collect();
    let kinds: Vec<GnnKind> = args
        .models
        .iter()
        .copied()
        .filter(|k| *k != GnnKind::Gat)
        .collect();

    let mut table = Table::new(
        "Table IV: explanation AUC on synthetic datasets",
        &["Dataset", "Model", "Method", "Objective", "AUC"],
    );

    for name in &datasets {
        let dataset = load_dataset(name, args.seed);
        for &kind in &kinds {
            let model = model_for(&zoo, &dataset, kind, &args);
            let instances = instances_for(&dataset, &model, &args, true);
            let with_gt: Vec<_> = instances
                .iter()
                .filter(|e| e.ground_truth.is_some())
                .collect();
            if with_gt.is_empty() {
                eprintln!("skipping {name}/{}: no motif instances", kind.name());
                continue;
            }
            let refs: Vec<&Instance> = with_gt.iter().map(|e| &e.instance).collect();

            for objective in [Objective::Factual, Objective::Counterfactual] {
                for &method in &args.methods {
                    if !combination_applicable(method, kind, name) {
                        continue;
                    }
                    // The paper's Table IV reports the general methods once
                    // (original explanations) and the learnable ones per
                    // objective.
                    let learnable = matches!(
                        method,
                        "GNNExplainer" | "PGExplainer" | "GraphMask" | "FlowX" | "REVELIO"
                    );
                    if objective == Objective::Counterfactual && !learnable {
                        continue;
                    }
                    let explainer = make_method(method, objective, args.effort, args.seed);
                    explainer.fit(&model, &refs);
                    let mut aucs = Vec::new();
                    for e in &with_gt {
                        let exp = explainer.explain(&model, &e.instance);
                        let gt = e.ground_truth.as_ref().expect("filtered");
                        // A diverged explainer (NaN/inf scores) is reported
                        // and dropped rather than silently ranked.
                        match try_roc_auc(&exp.edge_scores, gt) {
                            Ok(Some(a)) => aucs.push(a),
                            Ok(None) => {}
                            Err(err) => eprintln!(
                                "{name}/{}/{method}: instance {} skipped ({err})",
                                kind.name(),
                                e.dataset_index
                            ),
                        }
                    }
                    if aucs.is_empty() {
                        continue;
                    }
                    let mean = aucs.iter().sum::<f64>() / aucs.len() as f64;
                    let obj_name = match objective {
                        Objective::Factual => "factual",
                        Objective::Counterfactual => "counterfactual",
                    };
                    table.row(vec![
                        name.to_string(),
                        kind.name().to_string(),
                        method.to_string(),
                        obj_name.to_string(),
                        format!("{mean:.3}"),
                    ]);
                    eprintln!("{name}/{}/{method}/{obj_name}: AUC {mean:.3}", kind.name());
                }
            }
        }
    }

    table.print();
    table.write_csv(experiments_dir().join("table4_auc.csv"));
    println!("\nCSV written to target/experiments/table4_auc.csv");
}
