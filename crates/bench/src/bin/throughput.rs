//! Serving-throughput benchmark: explanations/sec through the
//! `revelio-runtime` worker pool at worker counts {1, 2, 4, N_cores} on a
//! synthetic workload, plus an in-process vs loopback-TCP overhead
//! comparison through `revelio-server`, a `warm_vs_cold` experiment
//! quantifying the store's warm-start mask optimization, and a
//! `serial_vs_batched` experiment quantifying fused multi-job optimization
//! (`RuntimeConfig::max_batch`), written to
//! `target/experiments/BENCH_runtime.json` (machine-readable; new fields
//! are only ever added, never renamed).
//!
//! ```text
//! cargo run -p revelio-bench --release --bin throughput [--smoke] \
//!     [--jobs N] [--epochs N]
//! ```
//!
//! `--smoke` shrinks the run to 2 jobs on 2 workers (CI wiring check, not a
//! measurement). On a single-core machine the scaling numbers are honest
//! but flat; the JSON records `cores` so consumers can tell.

use std::fmt::Write as _;
use std::time::Instant;

use revelio_bench::{available_workers, serving_workload};
use revelio_core::wire::ControlSpec;
use revelio_core::{Objective, Revelio, RevelioConfig};
use revelio_eval::experiments_dir;
use revelio_gnn::Gnn;
use revelio_graph::{Graph, Target};
use revelio_runtime::{ExplainJob, HistogramSnapshot, MetricsSnapshot, Runtime, RuntimeConfig};
use revelio_server::{Client, ExplainRequest, Server, ServerConfig};

struct Args {
    smoke: bool,
    jobs: usize,
    epochs: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        jobs: 24,
        epochs: 30,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--jobs" => {
                args.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs a number");
            }
            "--epochs" => {
                args.epochs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--epochs needs a number");
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    if args.smoke {
        args.jobs = 2;
        args.epochs = 3;
    }
    args
}

fn jobs_for(graphs: &[Graph], epochs: usize) -> Vec<ExplainJob> {
    graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            // Distinct graph_ids: each job enumerates its own flows, so the
            // measurement exercises the full per-job pipeline rather than
            // the cache.
            ExplainJob::flow_based(
                g.clone(),
                Target::Node(2),
                i as u64,
                100_000,
                Box::new(move |seed| {
                    Box::new(Revelio::new(RevelioConfig {
                        epochs,
                        objective: Objective::Factual,
                        seed,
                        ..Default::default()
                    }))
                }),
            )
        })
        .collect()
}

struct Measurement {
    workers: usize,
    jobs: usize,
    seconds: f64,
    per_sec: f64,
    degraded: u64,
    failed: u64,
}

struct Overhead {
    jobs: usize,
    inprocess_seconds: f64,
    inprocess_per_sec: f64,
    loopback_seconds: f64,
    loopback_per_sec: f64,
    /// `loopback_seconds / inprocess_seconds`: ≥ 1 unless noise wins.
    overhead_ratio: f64,
}

/// In-process vs loopback-TCP cost of the *same* serial job stream:
/// submit-and-wait through the runtime directly, then the identical
/// requests through `revelio-server` over 127.0.0.1. Both sides use the
/// registry's REVELIO factory (Quick effort) on one worker, so the only
/// difference is the wire: framing, checksums, syscalls, and a second
/// model materialisation server-side.
fn measure_wire_overhead(model: &Gnn, graphs: &[Graph]) -> Overhead {
    use revelio_eval::{method_factory, Effort};

    let runtime_cfg = RuntimeConfig {
        workers: 1,
        seed: 42,
        ..Default::default()
    };

    let rt = Runtime::with_config(runtime_cfg.clone());
    let handle = rt.register_model(model);
    let start = Instant::now();
    for (i, g) in graphs.iter().enumerate() {
        let job = ExplainJob::flow_based(
            g.clone(),
            Target::Node(2),
            i as u64,
            100_000,
            method_factory("REVELIO", Objective::Factual, Effort::Quick),
        );
        rt.submit(handle, job)
            .wait()
            .expect("in-process job served");
    }
    let inprocess_seconds = start.elapsed().as_secs_f64();
    drop(rt);

    let server = Server::start(ServerConfig {
        runtime: runtime_cfg,
        ..Default::default()
    })
    .expect("loopback server");
    let mut client = Client::connect(server.local_addr()).expect("loopback connect");
    let model_id = client.register_model(model).expect("register over wire");
    let start = Instant::now();
    for (i, g) in graphs.iter().enumerate() {
        client
            .explain(&ExplainRequest {
                model: model_id,
                graph_id: i as u64,
                method: "REVELIO".to_owned(),
                objective: Objective::Factual,
                effort: Effort::Quick,
                target: Target::Node(2),
                control: ControlSpec::default(),
                graph: g.clone(),
                context: None,
            })
            .expect("loopback job served");
    }
    let loopback_seconds = start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0, "loopback run hit protocol errors");

    Overhead {
        jobs: graphs.len(),
        inprocess_seconds,
        inprocess_per_sec: graphs.len() as f64 / inprocess_seconds.max(1e-9),
        loopback_seconds,
        loopback_per_sec: graphs.len() as f64 / loopback_seconds.max(1e-9),
        overhead_ratio: loopback_seconds / inprocess_seconds.max(1e-9),
    }
}

struct WarmVsCold {
    jobs: usize,
    epochs: usize,
    cold_optimize: HistogramSnapshot,
    warm_optimize: HistogramSnapshot,
    /// `cold_optimize.mean / warm_optimize.mean`: > 1 when the stored mask
    /// lets the warm run's plateau detector stop early.
    optimize_speedup: f64,
    store_hits: u64,
    store_misses: u64,
    /// Largest |cold − warm| edge score across every job: the price of the
    /// early stop (0.0 bit-identical when no seed is accepted).
    max_abs_score_diff: f64,
}

/// The warm-start experiment behind the store: run a job stream cold with
/// persistence attached, tear the runtime down, recover a fresh runtime
/// from the same store file, and rerun the identical stream with
/// `warm_start` on. The second run seeds each optimization from the
/// persisted converged mask, so its plateau detector may stop early —
/// the optimize-phase histograms of both runs quantify the win, and the
/// score diff bounds the cost.
fn measure_warm_vs_cold(model: &Gnn, graphs: &[Graph], epochs: usize) -> WarmVsCold {
    use revelio_store::{LogStore, Store};
    use std::sync::Arc;

    let path = experiments_dir().join("warm_vs_cold.store");
    let _ = std::fs::remove_file(&path);

    let cfg = RuntimeConfig {
        workers: 1,
        seed: 42,
        ..Default::default()
    };

    // Cold life: every mask is optimized from scratch and persisted.
    let store: Arc<dyn Store> = Arc::new(LogStore::open(&path).expect("open store"));
    let rt = Runtime::try_with_config_and_store(cfg.clone(), store).expect("cold runtime");
    let handle = rt.register_model(model);
    let cold: Vec<Vec<f32>> = rt
        .explain_batch(handle, jobs_for(graphs, epochs))
        .into_iter()
        .map(|r| r.expect("cold job served").explanation.edge_scores)
        .collect();
    let cold_metrics = rt.metrics();
    drop(rt);

    // Warm life: a recovered runtime over the same file; identical jobs,
    // warm-start on, so each optimization is seeded from the cold mask.
    let store: Arc<dyn Store> = Arc::new(LogStore::open(&path).expect("reopen store"));
    let rt = Runtime::try_with_config_and_store(cfg, store).expect("warm runtime");
    let handle = *rt
        .model_handles()
        .first()
        .expect("recovered model registry");
    let warm_jobs: Vec<ExplainJob> = jobs_for(graphs, epochs)
        .into_iter()
        .map(|j| j.with_warm_start(true))
        .collect();
    let warm: Vec<Vec<f32>> = rt
        .explain_batch(handle, warm_jobs)
        .into_iter()
        .map(|r| r.expect("warm job served").explanation.edge_scores)
        .collect();
    let warm_metrics = rt.metrics();
    drop(rt);
    let _ = std::fs::remove_file(&path);

    let max_abs_score_diff = cold
        .iter()
        .zip(&warm)
        .flat_map(|(c, w)| c.iter().zip(w).map(|(a, b)| f64::from((a - b).abs())))
        .fold(0.0f64, f64::max);

    let cold_mean = cold_metrics.phase_optimize.mean_us() as f64;
    let warm_mean = warm_metrics.phase_optimize.mean_us() as f64;
    WarmVsCold {
        jobs: graphs.len(),
        epochs,
        cold_optimize: cold_metrics.phase_optimize,
        warm_optimize: warm_metrics.phase_optimize,
        optimize_speedup: cold_mean / warm_mean.max(1.0),
        store_hits: warm_metrics.store_hits,
        store_misses: warm_metrics.store_misses,
        max_abs_score_diff,
    }
}

struct Batched {
    jobs: usize,
    epochs: usize,
    max_batch: usize,
    serial_seconds: f64,
    serial_per_sec: f64,
    batched_seconds: f64,
    batched_per_sec: f64,
    /// `batched_per_sec / serial_per_sec`: > 1 when fusing wins.
    speedup: f64,
    batches: u64,
    batched_jobs: u64,
    mean_batch_size_milli: u64,
    /// Largest |serial − batched| edge score across every job; the contract
    /// bound is `revelio_core::BATCH_TOLERANCE`.
    max_abs_score_diff: f64,
}

/// Fused multi-job optimization vs the serial path on the *same* job
/// stream: one worker so the queue backs up and batches actually form,
/// identical seeds on both sides, jobs carrying a `batch_spec` so the
/// batching runtime may fuse them. The score diff must stay within the
/// documented `BATCH_TOLERANCE` (enforced by the runtime's equivalence
/// test; recorded here so the perf trajectory carries the accuracy cost).
fn measure_batched(model: &Gnn, graphs: &[Graph], epochs: usize, max_batch: usize) -> Batched {
    use revelio_core::RevelioConfig;

    let spec = RevelioConfig {
        epochs,
        objective: Objective::Factual,
        ..Default::default()
    };
    let batch_jobs = |graphs: &[Graph]| -> Vec<ExplainJob> {
        jobs_for(graphs, epochs)
            .into_iter()
            .map(|j| j.with_batch_spec(spec))
            .collect()
    };

    let run = |max_batch: usize| {
        let rt = Runtime::with_config(RuntimeConfig {
            workers: 1,
            seed: 42,
            max_batch,
            ..Default::default()
        });
        let handle = rt.register_model(model);
        let start = Instant::now();
        let scores: Vec<Vec<f32>> = rt
            .explain_batch(handle, batch_jobs(graphs))
            .into_iter()
            .map(|r| r.expect("batched-bench job served").explanation.edge_scores)
            .collect();
        (start.elapsed().as_secs_f64(), scores, rt.metrics())
    };

    let (serial_seconds, serial_scores, _) = run(1);
    let (batched_seconds, batched_scores, m) = run(max_batch);

    let max_abs_score_diff = serial_scores
        .iter()
        .zip(&batched_scores)
        .flat_map(|(s, b)| s.iter().zip(b).map(|(x, y)| f64::from((x - y).abs())))
        .fold(0.0f64, f64::max);

    let serial_per_sec = graphs.len() as f64 / serial_seconds.max(1e-9);
    let batched_per_sec = graphs.len() as f64 / batched_seconds.max(1e-9);
    Batched {
        jobs: graphs.len(),
        epochs,
        max_batch,
        serial_seconds,
        serial_per_sec,
        batched_seconds,
        batched_per_sec,
        speedup: batched_per_sec / serial_per_sec.max(1e-9),
        batches: m.batches,
        batched_jobs: m.batched_jobs,
        mean_batch_size_milli: m.batch_size.mean_milli(),
        max_abs_score_diff,
    }
}

fn measure(
    model: &Gnn,
    graphs: &[Graph],
    workers: usize,
    epochs: usize,
) -> (Measurement, MetricsSnapshot) {
    let rt = Runtime::with_config(RuntimeConfig {
        workers,
        seed: 42,
        ..Default::default()
    });
    let handle = rt.register_model(model);
    let start = Instant::now();
    let results = rt.explain_batch(handle, jobs_for(graphs, epochs));
    let seconds = start.elapsed().as_secs_f64();
    let failed = results.iter().filter(|r| r.is_err()).count() as u64;
    let m = rt.metrics();
    (
        Measurement {
            workers,
            jobs: graphs.len(),
            seconds,
            per_sec: graphs.len() as f64 / seconds.max(1e-9),
            degraded: m.jobs_degraded,
            failed,
        },
        m,
    )
}

/// One JSON object per named phase: where a job's time actually goes.
fn phases_json(m: &MetricsSnapshot) -> String {
    let one = |name: &str, h: &HistogramSnapshot| {
        format!(
            "\"{name}\": {{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \
             \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            h.count,
            h.mean_us(),
            h.p50_us(),
            h.p90_us(),
            h.p99_us(),
            h.max_us
        )
    };
    [
        one("extraction", &m.phase_extraction),
        one("flow_index", &m.phase_flow_index),
        one("optimize", &m.phase_optimize),
        one("readout", &m.phase_readout),
    ]
    .join(", ")
}

fn main() {
    let args = parse_args();
    let cores = available_workers();
    let (model, graphs) = serving_workload(args.jobs);

    let mut worker_counts: Vec<usize> = if args.smoke {
        vec![2]
    } else {
        let mut c = vec![1, 2, 4, cores];
        c.sort_unstable();
        c.dedup();
        c
    };
    worker_counts.retain(|&w| w > 0);

    let mut rows = Vec::new();
    let mut last_snapshot: Option<MetricsSnapshot> = None;
    for &workers in &worker_counts {
        let (m, snap) = measure(&model, &graphs, workers, args.epochs);
        eprintln!(
            "workers={:>2}  jobs={:>3}  {:.2}s total  {:.2} explanations/sec",
            m.workers, m.jobs, m.seconds, m.per_sec
        );
        rows.push(m);
        last_snapshot = Some(snap);
    }

    let baseline = rows
        .iter()
        .find(|m| m.workers == 1)
        .map(|m| m.per_sec)
        .unwrap_or(0.0);

    let overhead = measure_wire_overhead(&model, &graphs);
    eprintln!(
        "overhead: in-process {:.2}/s vs loopback {:.2}/s (x{:.3} wall-clock)",
        overhead.inprocess_per_sec, overhead.loopback_per_sec, overhead.overhead_ratio
    );

    // Warm-start needs a *converged* cold mask for its plateau detector to
    // fire, so the experiment runs many more epochs than the throughput
    // rows — on a few graphs, to keep the cold leg affordable.
    let wvc_epochs = if args.smoke { args.epochs } else { 500 };
    let wvc_graphs = &graphs[..graphs.len().min(6)];
    let batched = measure_batched(&model, &graphs, args.epochs, 8);
    eprintln!(
        "serial_vs_batched: {:.2}/s serial vs {:.2}/s batched (x{:.2}), \
         batches={} batched_jobs={} mean_size={}.{:03} max|Δscore|={:.2e}",
        batched.serial_per_sec,
        batched.batched_per_sec,
        batched.speedup,
        batched.batches,
        batched.batched_jobs,
        batched.mean_batch_size_milli / 1000,
        batched.mean_batch_size_milli % 1000,
        batched.max_abs_score_diff
    );

    let wvc = measure_warm_vs_cold(&model, wvc_graphs, wvc_epochs);
    eprintln!(
        "warm_vs_cold: optimize mean {}us cold vs {}us warm (x{:.2}), \
         hits={} misses={} max|Δscore|={:.4}",
        wvc.cold_optimize.mean_us(),
        wvc.warm_optimize.mean_us(),
        wvc.optimize_speedup,
        wvc.store_hits,
        wvc.store_misses,
        wvc.max_abs_score_diff
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"revelio-runtime throughput\",");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"smoke\": {},", args.smoke);
    let _ = writeln!(json, "  \"jobs\": {},", args.jobs);
    let _ = writeln!(json, "  \"epochs_per_job\": {},", args.epochs);
    json.push_str("  \"runs\": [\n");
    for (i, m) in rows.iter().enumerate() {
        let speedup = if baseline > 0.0 {
            m.per_sec / baseline
        } else {
            0.0
        };
        let _ = write!(
            json,
            "    {{\"workers\": {}, \"jobs\": {}, \"seconds\": {:.4}, \
             \"explanations_per_sec\": {:.4}, \"speedup_vs_1\": {:.3}, \
             \"degraded\": {}, \"failed\": {}}}",
            m.workers, m.jobs, m.seconds, m.per_sec, speedup, m.degraded, m.failed
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    if let Some(snap) = &last_snapshot {
        // Phase breakdown from the widest run: where a job's time goes.
        let _ = writeln!(json, "  \"phases\": {{{}}},", phases_json(snap));
    }
    let _ = writeln!(
        json,
        "  \"overhead\": {{\"workers\": 1, \"jobs\": {}, \
         \"inprocess_seconds\": {:.4}, \"inprocess_per_sec\": {:.4}, \
         \"loopback_seconds\": {:.4}, \"loopback_per_sec\": {:.4}, \
         \"loopback_over_inprocess\": {:.4}}},",
        overhead.jobs,
        overhead.inprocess_seconds,
        overhead.inprocess_per_sec,
        overhead.loopback_seconds,
        overhead.loopback_per_sec,
        overhead.overhead_ratio
    );
    let hist = |h: &HistogramSnapshot| {
        format!(
            "{{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p90_us\": {}, \
             \"p99_us\": {}, \"max_us\": {}}}",
            h.count,
            h.mean_us(),
            h.p50_us(),
            h.p90_us(),
            h.p99_us(),
            h.max_us
        )
    };
    let _ = writeln!(
        json,
        "  \"serial_vs_batched\": {{\"jobs\": {}, \"epochs\": {}, \
         \"max_batch\": {}, \"serial_seconds\": {:.4}, \
         \"serial_per_sec\": {:.4}, \"batched_seconds\": {:.4}, \
         \"batched_per_sec\": {:.4}, \"speedup\": {:.4}, \"batches\": {}, \
         \"batched_jobs\": {}, \"mean_batch_size_milli\": {}, \
         \"max_abs_score_diff\": {:.8}}},",
        batched.jobs,
        batched.epochs,
        batched.max_batch,
        batched.serial_seconds,
        batched.serial_per_sec,
        batched.batched_seconds,
        batched.batched_per_sec,
        batched.speedup,
        batched.batches,
        batched.batched_jobs,
        batched.mean_batch_size_milli,
        batched.max_abs_score_diff
    );
    let _ = writeln!(
        json,
        "  \"warm_vs_cold\": {{\"jobs\": {}, \"epochs\": {}, \
         \"cold_optimize\": {}, \"warm_optimize\": {}, \
         \"optimize_speedup\": {:.4}, \"store_hits\": {}, \
         \"store_misses\": {}, \"max_abs_score_diff\": {:.6}}}",
        wvc.jobs,
        wvc.epochs,
        hist(&wvc.cold_optimize),
        hist(&wvc.warm_optimize),
        wvc.optimize_speedup,
        wvc.store_hits,
        wvc.store_misses,
        wvc.max_abs_score_diff
    );
    json.push_str("}\n");

    let path = experiments_dir().join("BENCH_runtime.json");
    std::fs::write(&path, &json).expect("write BENCH_runtime.json");
    println!("{json}");
    println!("written to {}", path.display());
}
