//! Serving-throughput benchmark: explanations/sec through the
//! `revelio-runtime` worker pool at worker counts {1, 2, 4, N_cores} on a
//! synthetic workload, written to `target/experiments/BENCH_runtime.json`
//! (machine-readable; new fields are only ever added, never renamed).
//!
//! ```text
//! cargo run -p revelio-bench --release --bin throughput [--smoke] \
//!     [--jobs N] [--epochs N]
//! ```
//!
//! `--smoke` shrinks the run to 2 jobs on 2 workers (CI wiring check, not a
//! measurement). On a single-core machine the scaling numbers are honest
//! but flat; the JSON records `cores` so consumers can tell.

use std::fmt::Write as _;
use std::time::Instant;

use revelio_bench::available_workers;
use revelio_core::{Objective, Revelio, RevelioConfig};
use revelio_eval::experiments_dir;
use revelio_gnn::{Gnn, GnnConfig, GnnKind, Task, TrainConfig};
use revelio_graph::{Graph, Target};
use revelio_runtime::{ExplainJob, Runtime, RuntimeConfig};

struct Args {
    smoke: bool,
    jobs: usize,
    epochs: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        jobs: 24,
        epochs: 30,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--jobs" => {
                args.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs a number");
            }
            "--epochs" => {
                args.epochs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--epochs needs a number");
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    if args.smoke {
        args.jobs = 2;
        args.epochs = 3;
    }
    args
}

/// The synthetic workload: a family of small labelled graphs that the
/// trained model classifies, each one the subject of one REVELIO job.
fn workload(n: usize) -> (Gnn, Vec<Graph>) {
    let graphs: Vec<Graph> = (0..n)
        .map(|variant| {
            let mut b = Graph::builder(6, 2);
            b.undirected_edge(0, 1)
                .undirected_edge(1, 2)
                .undirected_edge(2, 3)
                .undirected_edge(3, 4)
                .undirected_edge(4, 5);
            if variant % 3 == 1 {
                b.undirected_edge(0, 2);
            }
            if variant % 3 == 2 {
                b.undirected_edge(1, 3);
            }
            for v in 0..6 {
                b.node_features(v, &[1.0, (v + variant) as f32 * 0.25]);
            }
            b.node_labels((0..6).map(|v| (v + variant) % 2).collect());
            b.build()
        })
        .collect();
    let model = Gnn::new(GnnConfig {
        kind: GnnKind::Gcn,
        task: Task::NodeClassification,
        in_dim: 2,
        hidden_dim: 8,
        num_classes: 2,
        num_layers: 2,
        heads: 1,
        seed: 7,
    });
    revelio_gnn::train_node_classifier(
        &model,
        &graphs[0],
        &[0, 1, 2, 3, 4, 5],
        &TrainConfig {
            epochs: 20,
            ..Default::default()
        },
    );
    (model, graphs)
}

fn jobs_for(graphs: &[Graph], epochs: usize) -> Vec<ExplainJob> {
    graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            // Distinct graph_ids: each job enumerates its own flows, so the
            // measurement exercises the full per-job pipeline rather than
            // the cache.
            ExplainJob::flow_based(
                g.clone(),
                Target::Node(2),
                i as u64,
                100_000,
                Box::new(move |seed| {
                    Box::new(Revelio::new(RevelioConfig {
                        epochs,
                        objective: Objective::Factual,
                        seed,
                        ..Default::default()
                    }))
                }),
            )
        })
        .collect()
}

struct Measurement {
    workers: usize,
    jobs: usize,
    seconds: f64,
    per_sec: f64,
    degraded: u64,
    failed: u64,
}

fn measure(model: &Gnn, graphs: &[Graph], workers: usize, epochs: usize) -> Measurement {
    let rt = Runtime::with_config(RuntimeConfig {
        workers,
        seed: 42,
        ..Default::default()
    });
    let handle = rt.register_model(model);
    let start = Instant::now();
    let results = rt.explain_batch(handle, jobs_for(graphs, epochs));
    let seconds = start.elapsed().as_secs_f64();
    let failed = results.iter().filter(|r| r.is_err()).count() as u64;
    let m = rt.metrics();
    Measurement {
        workers,
        jobs: graphs.len(),
        seconds,
        per_sec: graphs.len() as f64 / seconds.max(1e-9),
        degraded: m.jobs_degraded,
        failed,
    }
}

fn main() {
    let args = parse_args();
    let cores = available_workers();
    let (model, graphs) = workload(args.jobs);

    let mut worker_counts: Vec<usize> = if args.smoke {
        vec![2]
    } else {
        let mut c = vec![1, 2, 4, cores];
        c.sort_unstable();
        c.dedup();
        c
    };
    worker_counts.retain(|&w| w > 0);

    let mut rows = Vec::new();
    for &workers in &worker_counts {
        let m = measure(&model, &graphs, workers, args.epochs);
        eprintln!(
            "workers={:>2}  jobs={:>3}  {:.2}s total  {:.2} explanations/sec",
            m.workers, m.jobs, m.seconds, m.per_sec
        );
        rows.push(m);
    }

    let baseline = rows
        .iter()
        .find(|m| m.workers == 1)
        .map(|m| m.per_sec)
        .unwrap_or(0.0);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"revelio-runtime throughput\",");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"smoke\": {},", args.smoke);
    let _ = writeln!(json, "  \"jobs\": {},", args.jobs);
    let _ = writeln!(json, "  \"epochs_per_job\": {},", args.epochs);
    json.push_str("  \"runs\": [\n");
    for (i, m) in rows.iter().enumerate() {
        let speedup = if baseline > 0.0 {
            m.per_sec / baseline
        } else {
            0.0
        };
        let _ = write!(
            json,
            "    {{\"workers\": {}, \"jobs\": {}, \"seconds\": {:.4}, \
             \"explanations_per_sec\": {:.4}, \"speedup_vs_1\": {:.3}, \
             \"degraded\": {}, \"failed\": {}}}",
            m.workers, m.jobs, m.seconds, m.per_sec, speedup, m.degraded, m.failed
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = experiments_dir().join("BENCH_runtime.json");
    std::fs::write(&path, &json).expect("write BENCH_runtime.json");
    println!("{json}");
    println!("written to {}", path.display());
}
