//! Reproduces **Table V**: the average running time (seconds) of each
//! explanation method per dataset.
//!
//! Times are per-instance explanation wall-clock (group-level training for
//! PGExplainer / GraphMask is timed separately and reported in parentheses,
//! matching the paper's "training (inference)" format for PGExplainer).
//!
//! ```text
//! cargo run -p revelio-bench --release --bin table5_runtime [--full] ...
//! ```

use std::time::Instant;

use revelio_bench::{
    combination_applicable, instances_for_runtime, load_dataset, model_for, HarnessArgs,
};
use revelio_core::Objective;
use revelio_eval::{
    experiments_dir, flow_cap, is_flow_based, is_group_level, make_method, method_factory, Table,
};
use revelio_gnn::{GnnKind, Instance, ModelZoo};
use revelio_runtime::ExplainJob;

fn main() {
    let args = HarnessArgs::parse();
    let rt = args.runtime();
    let zoo = ModelZoo::default_location();
    // Table V uses GCNs and GINs; GAT timings are similar and omitted in the
    // paper's layout.
    let kinds: Vec<GnnKind> = args
        .models
        .iter()
        .copied()
        .filter(|k| *k != GnnKind::Gat)
        .collect();

    let mut table = Table::new(
        "Table V: average explanation running time (seconds per instance)",
        &["Dataset", "Model", "Method", "Seconds", "Fit-seconds"],
    );

    for name in &args.datasets {
        let dataset = load_dataset(name, args.seed);
        for &kind in &kinds {
            if !combination_applicable("REVELIO", kind, name) {
                continue;
            }
            let model = model_for(&zoo, &dataset, kind, &args);
            let instances = instances_for_runtime(&dataset, &model, &args, false, &rt);
            if instances.is_empty() {
                continue;
            }
            let handle = rt.register_model(&model);
            let refs: Vec<&Instance> = instances.iter().map(|e| &e.instance).collect();
            for &method in &args.methods {
                if !combination_applicable(method, kind, name) {
                    continue;
                }
                // Group-level methods train shared (thread-bound) state, so
                // they fit + explain serially; instance-level methods are
                // served through the runtime's worker pool.
                let (secs, fit_secs) = if is_group_level(method) {
                    let explainer = make_method(method, Objective::Factual, args.effort, args.seed);
                    let fit_start = Instant::now();
                    explainer.fit(&model, &refs);
                    let fit_secs = fit_start.elapsed().as_secs_f64();
                    let start = Instant::now();
                    for e in &instances {
                        let _ = explainer.explain(&model, &e.instance);
                    }
                    (
                        start.elapsed().as_secs_f64() / instances.len() as f64,
                        fit_secs,
                    )
                } else {
                    let jobs: Vec<ExplainJob> = instances
                        .iter()
                        .map(|e| ExplainJob {
                            graph: e.instance.graph.clone(),
                            target: e.instance.target,
                            graph_id: e.graph_id,
                            make_explainer: method_factory(method, Objective::Factual, args.effort),
                            needs_flows: is_flow_based(method),
                            max_flows: flow_cap(args.effort),
                            shrink_on_overflow: true,
                            deadline: None,
                            trace: false,
                            trace_key: None,
                            warm_start: false,
                            batch_spec: None,
                        })
                        .collect();
                    let start = Instant::now();
                    for r in rt.explain_batch(handle, jobs) {
                        let _ = r.unwrap_or_else(|e| panic!("{method}: job failed: {e}"));
                    }
                    (start.elapsed().as_secs_f64() / instances.len() as f64, 0.0)
                };
                table.row(vec![
                    name.to_string(),
                    kind.name().to_string(),
                    method.to_string(),
                    format!("{secs:.3}"),
                    format!("{fit_secs:.3}"),
                ]);
                eprintln!("{name}/{}/{method}: {secs:.3}s per instance", kind.name());
            }
        }
    }

    eprintln!("\n{}", rt.metrics_report());
    table.print();
    table.write_csv(experiments_dir().join("table5_runtime.csv"));
    println!("\nCSV written to target/experiments/table5_runtime.csv");
}
