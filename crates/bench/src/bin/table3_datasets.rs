//! Reproduces **Table III**: dataset statistics and the test accuracy of
//! 3-layer GCN / GIN / GAT on each of the eight datasets.
//!
//! ```text
//! cargo run -p revelio-bench --release --bin table3_datasets [--full]
//! ```

use revelio_bench::{is_synthetic, load_dataset, model_for, HarnessArgs};
use revelio_datasets::Dataset;
use revelio_eval::{experiments_dir, model_accuracy, Table};
use revelio_gnn::{GnnKind, ModelZoo};

fn main() {
    let args = HarnessArgs::parse();
    let zoo = ModelZoo::default_location();
    let mut table = Table::new(
        "Table III: dataset statistics and model accuracy",
        &[
            "Dataset",
            "#graphs",
            "#nodes",
            "#edges",
            "#features",
            "#classes",
            "GCN Acc.",
            "GIN Acc.",
            "GAT Acc.",
        ],
    );

    for name in &args.datasets {
        let dataset = load_dataset(name, args.seed);
        let (n_graphs, n_nodes, n_edges, n_feat, n_classes) = match &dataset {
            Dataset::Node(d) => (
                1.0,
                d.graph.num_nodes() as f64,
                d.graph.num_edges() as f64,
                d.graph.feat_dim(),
                d.num_classes,
            ),
            Dataset::Graph(d) => (
                d.graphs.len() as f64,
                d.avg_nodes(),
                d.avg_edges(),
                d.graphs[0].feat_dim(),
                d.num_classes,
            ),
        };

        let mut accs = Vec::new();
        for kind in [GnnKind::Gcn, GnnKind::Gin, GnnKind::Gat] {
            if !args.models.contains(&kind) {
                accs.push("-".to_string());
                continue;
            }
            if kind == GnnKind::Gat && is_synthetic(name) {
                accs.push("N/A".to_string());
                continue;
            }
            let model = model_for(&zoo, &dataset, kind, &args);
            let acc = model_accuracy(&model, &dataset);
            accs.push(format!("{:.1}%", acc * 100.0));
        }

        table.row(vec![
            name.to_string(),
            format!("{n_graphs:.0}"),
            format!("{n_nodes:.1}"),
            format!("{n_edges:.1}"),
            n_feat.to_string(),
            n_classes.to_string(),
            accs[0].clone(),
            accs[1].clone(),
            accs[2].clone(),
        ]);
    }

    table.print();
    table.write_csv(experiments_dir().join("table3_datasets.csv"));
    println!("\nCSV written to target/experiments/table3_datasets.csv");
}
