//! Empirically reproduces **Table II**: how the running time of each method
//! scales with the number of message flows `|F|`.
//!
//! Synthetic star-of-cliques graphs of growing size are explained by
//! GNNExplainer (`O(T(|E| + T_Φ))`), GNN-LRP (`O(|F|·...)`), FlowX
//! (`O(S(|F| + L|E|T_Φ))`) and REVELIO (`O(T(L|F| + T_Φ))`); the printed
//! series shows the flow-dependent blow-up of GNN-LRP/FlowX versus the
//! epoch-dominated REVELIO/GNNExplainer, the paper's qualitative claim.
//!
//! ```text
//! cargo run -p revelio-bench --release --bin table2_complexity [--full]
//! ```

use std::time::Instant;

use revelio_core::Objective;
use revelio_eval::{experiments_dir, make_method, Effort, Table};
use revelio_gnn::{Gnn, GnnConfig, GnnKind, Instance, Task};
use revelio_graph::{count_flows, Graph, MpGraph, Target};

/// A wheel graph: a hub connected to `spokes` nodes arranged in a ring.
/// Flow count toward the hub grows roughly cubically in the spoke count for
/// a 3-layer GNN.
fn wheel(spokes: usize) -> Graph {
    let n = spokes + 1;
    let mut b = Graph::builder(n, 4);
    for i in 0..spokes {
        b.undirected_edge(0, 1 + i);
        b.undirected_edge(1 + i, 1 + (i + 1) % spokes);
    }
    for v in 0..n {
        b.node_features(v, &[1.0, (v % 3) as f32, (v % 5) as f32 * 0.2, 0.5]);
    }
    b.build()
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let effort = if full { Effort::Paper } else { Effort::Quick };
    let sizes: &[usize] = if full {
        &[32, 128, 512, 1024, 2048]
    } else {
        &[32, 128, 512]
    };
    let methods = ["GNNExplainer", "GNN-LRP", "FlowX", "REVELIO"];

    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gcn,
        Task::NodeClassification,
        4,
        3,
        0,
    ));

    let mut table = Table::new(
        "Table II (empirical): running time vs number of message flows",
        &["Spokes", "|E|", "|F|", "Method", "Seconds"],
    );

    for &spokes in sizes {
        let g = wheel(spokes);
        let mp = MpGraph::new(&g);
        let nf = count_flows(&mp, 3, Target::Node(0));
        let ne = g.num_edges();
        let instance = Instance::for_prediction(&model, g, Target::Node(0));
        for method in methods {
            let explainer = make_method(method, Objective::Factual, effort, 0);
            let start = Instant::now();
            let _ = explainer.explain(&model, &instance);
            let secs = start.elapsed().as_secs_f64();
            table.row(vec![
                spokes.to_string(),
                ne.to_string(),
                nf.to_string(),
                method.to_string(),
                format!("{secs:.3}"),
            ]);
            eprintln!("spokes={spokes} |F|={nf} {method}: {secs:.3}s");
        }
    }

    table.print();
    table.write_csv(experiments_dir().join("table2_complexity.csv"));
    println!("\nCSV written to target/experiments/table2_complexity.csv");
}
