//! Reproduces **Fig. 3**: Fidelity− (factual explanation) versus sparsity
//! for every method × dataset × model combination.
//!
//! ```text
//! cargo run -p revelio-bench --release --bin fig3_fidelity_minus \
//!     [--full] [--datasets BA-Shapes,MUTAG] [--models gcn] [--methods REVELIO,FlowX]
//! ```

use revelio_bench::{
    combination_applicable, instances_for_runtime, load_dataset, model_for, run_fidelity,
    HarnessArgs,
};
use revelio_core::Objective;
use revelio_eval::{experiments_dir, Table};
use revelio_gnn::ModelZoo;

fn main() {
    let args = HarnessArgs::parse();
    let rt = args.runtime();
    let zoo = ModelZoo::default_location();
    let mut table = Table::new(
        "Fig. 3: Fidelity- vs sparsity (factual explanation; lower is better)",
        &["Dataset", "Model", "Method", "Sparsity", "Fidelity-"],
    );

    for name in &args.datasets {
        let dataset = load_dataset(name, args.seed);
        for &kind in &args.models {
            if !combination_applicable("REVELIO", kind, name) {
                continue;
            }
            let model = model_for(&zoo, &dataset, kind, &args);
            let instances = instances_for_runtime(&dataset, &model, &args, false, &rt);
            if instances.is_empty() {
                eprintln!("skipping {name}/{}: no instances sampled", kind.name());
                continue;
            }
            let methods: Vec<&'static str> = args
                .methods
                .iter()
                .copied()
                .filter(|m| combination_applicable(m, kind, name))
                .collect();
            let results = run_fidelity(
                &rt,
                &model,
                &instances,
                &methods,
                Objective::Factual,
                &args.sparsities,
                args.effort,
                args.seed,
            );
            for r in &results {
                for &(s, f) in &r.rows {
                    table.row(vec![
                        name.to_string(),
                        kind.name().to_string(),
                        r.method.to_string(),
                        format!("{s:.1}"),
                        format!("{f:.4}"),
                    ]);
                }
            }
            eprintln!(
                "done: {name}/{} ({} instances)",
                kind.name(),
                instances.len()
            );
        }
    }

    eprintln!("\n{}", rt.metrics_report());
    table.print();
    table.write_csv(experiments_dir().join("fig3_fidelity_minus.csv"));
    println!("\nCSV written to target/experiments/fig3_fidelity_minus.csv");
}
