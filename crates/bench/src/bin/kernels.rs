//! Kernel microbench: naive triple-loop matmuls vs the cache-blocked
//! SIMD-friendly kernels that back the autograd engine, across the matrix
//! shapes the GCN/GIN/GAT optimize loops actually hit. Writes
//! `target/experiments/BENCH_kernels.json` (machine-readable; new fields
//! are only ever added, never renamed).
//!
//! ```text
//! cargo run -p revelio-bench --release --bin kernels [--smoke] [--reps N]
//! ```
//!
//! `--smoke` shrinks repetitions for CI wiring checks. In every mode the
//! process exits non-zero if the blocked `nn` kernel is slower than the
//! naive reference on the GCN hidden-layer shape by more than a noise
//! margin — this is the CI guard against a blocking-scheme regression.
//! Timings are best-of-N minimums, so scheduler noise only ever inflates
//! the loser, never deflates it.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use revelio_eval::experiments_dir;
use revelio_tensor::kernels::{
    matmul_nn, matmul_nn_naive, matmul_nt, matmul_nt_naive, matmul_tn, matmul_tn_naive,
};

/// Noise margin for the CI check: blocked must not be slower than
/// `naive * MARGIN` on the reference shape.
const MARGIN: f64 = 1.05;

/// The shape the CI check gates on: GCN hidden-layer forward on BA-Shapes
/// (700 nodes, hidden 20).
const REFERENCE_SHAPE: &str = "gcn_hidden";

struct Args {
    smoke: bool,
    reps: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        reps: 25,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--reps" => {
                args.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number");
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    if args.smoke {
        args.reps = 5;
    }
    args
}

/// A logical `(m × k) · (k × n)` product; the three kernel variants are
/// derived from it the way autograd does: `nn` is the forward, `nt` the
/// left backward (`grad · Bᵀ`), `tn` the right backward (`Aᵀ · grad`).
struct Shape {
    name: &'static str,
    /// Which model/phase hits this shape, for the JSON record.
    role: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

/// Shapes from the models the repo trains: BA-Shapes-scale node counts
/// (700), the paper's GCN/GIN/GAT widths, and a batched-optimize stack
/// (mask rows = flows pooled across a fused batch).
const SHAPES: &[Shape] = &[
    Shape {
        name: "gcn_input",
        role: "GCN layer 1: features (700x10) x weights (10x20)",
        m: 700,
        k: 10,
        n: 20,
    },
    Shape {
        name: "gcn_hidden",
        role: "GCN layer 2: hidden (700x20) x weights (20x20)",
        m: 700,
        k: 20,
        n: 20,
    },
    Shape {
        name: "gin_mlp",
        role: "GIN MLP: hidden (700x64) x weights (64x64)",
        m: 700,
        k: 64,
        n: 64,
    },
    Shape {
        name: "gat_heads",
        role: "GAT multi-head: hidden (700x8) x concat heads (8x64)",
        m: 700,
        k: 8,
        n: 64,
    },
    Shape {
        name: "batched_mask",
        role: "batched optimize: stacked flow messages (4096x20) x weights (20x20)",
        m: 4096,
        k: 20,
        n: 20,
    },
];

/// Deterministic fill in (0, 1]: SplitMix64 stream mapped to f32. Strictly
/// positive values keep the naive kernels' zero-skip branch out of the
/// measurement and avoid `-0.0` (excluded by the bit-identity contract).
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 40) as f32 + 1.0) / 16_777_216.0
        })
        .collect()
}

/// Best-of-N minimum wall time of `f`, in seconds. Minimums because noise
/// is one-sided: nothing makes a run faster than the kernel allows.
fn best_of<F: FnMut() -> Vec<f32>>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let dt = start.elapsed().as_secs_f64();
        black_box(out);
        best = best.min(dt);
    }
    best
}

struct Row {
    shape: &'static str,
    role: &'static str,
    m: usize,
    k: usize,
    n: usize,
    kernel: &'static str,
    naive_us: f64,
    blocked_us: f64,
    speedup: f64,
}

fn bench_shape(s: &Shape, reps: usize) -> Vec<Row> {
    let a = fill(s.m * s.k, 1);
    let b = fill(s.k * s.n, 2);
    let grad = fill(s.m * s.n, 3);
    let (m, k, n) = (s.m, s.k, s.n);

    // Correctness gate before timing: the blocked kernels' bit-identity
    // contract, checked on the real benchmark inputs.
    assert_eq!(
        matmul_nn(&a, m, k, &b, n),
        matmul_nn_naive(&a, m, k, &b, n),
        "{}: blocked nn diverged from naive",
        s.name
    );
    assert_eq!(
        matmul_nt(&grad, m, n, &b, k),
        matmul_nt_naive(&grad, m, n, &b, k),
        "{}: blocked nt diverged from naive",
        s.name
    );
    assert_eq!(
        matmul_tn(&a, m, k, &grad, n),
        matmul_tn_naive(&a, m, k, &grad, n),
        "{}: blocked tn diverged from naive",
        s.name
    );

    let pairs: [(&'static str, f64, f64); 3] = [
        (
            "nn",
            best_of(reps, || matmul_nn_naive(&a, m, k, &b, n)),
            best_of(reps, || matmul_nn(&a, m, k, &b, n)),
        ),
        (
            "nt",
            best_of(reps, || matmul_nt_naive(&grad, m, n, &b, k)),
            best_of(reps, || matmul_nt(&grad, m, n, &b, k)),
        ),
        (
            "tn",
            best_of(reps, || matmul_tn_naive(&a, m, k, &grad, n)),
            best_of(reps, || matmul_tn(&a, m, k, &grad, n)),
        ),
    ];
    pairs
        .into_iter()
        .map(|(kernel, naive, blocked)| Row {
            shape: s.name,
            role: s.role,
            m,
            k,
            n,
            kernel,
            naive_us: naive * 1e6,
            blocked_us: blocked * 1e6,
            speedup: naive / blocked.max(1e-12),
        })
        .collect()
}

fn main() {
    let args = parse_args();

    let mut rows = Vec::new();
    for s in SHAPES {
        for row in bench_shape(s, args.reps) {
            eprintln!(
                "{:>13} {:>2}  {:4}x{:<2}x{:<2}  naive {:>9.1}us  blocked {:>9.1}us  x{:.2}",
                row.shape,
                row.kernel,
                row.m,
                row.k,
                row.n,
                row.naive_us,
                row.blocked_us,
                row.speedup
            );
            rows.push(row);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"revelio-tensor kernels\",");
    let _ = writeln!(json, "  \"smoke\": {},", args.smoke);
    let _ = writeln!(json, "  \"reps\": {},", args.reps);
    let _ = writeln!(
        json,
        "  \"timing\": \"best-of-reps minimum, microseconds\","
    );
    let _ = writeln!(json, "  \"reference_shape\": \"{REFERENCE_SHAPE}\",");
    let _ = writeln!(json, "  \"margin\": {MARGIN},");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shape\": \"{}\", \"role\": \"{}\", \"m\": {}, \"k\": {}, \
             \"n\": {}, \"kernel\": \"{}\", \"naive_us\": {:.2}, \
             \"blocked_us\": {:.2}, \"speedup\": {:.3}}}",
            r.shape, r.role, r.m, r.k, r.n, r.kernel, r.naive_us, r.blocked_us, r.speedup
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = experiments_dir().join("BENCH_kernels.json");
    std::fs::write(&path, &json).expect("write BENCH_kernels.json");
    println!("{json}");
    println!("written to {}", path.display());

    // CI gate: the blocked nn kernel must not lose to the naive one on the
    // reference shape. Best-of-N minimums plus the margin absorb scheduler
    // noise; a real blocking regression still trips it.
    let reference = rows
        .iter()
        .find(|r| r.shape == REFERENCE_SHAPE && r.kernel == "nn")
        .expect("reference shape benched");
    if reference.blocked_us > reference.naive_us * MARGIN {
        eprintln!(
            "FAIL: blocked nn on {REFERENCE_SHAPE} ({:.1}us) slower than naive \
             ({:.1}us) beyond the x{MARGIN} margin",
            reference.blocked_us, reference.naive_us
        );
        std::process::exit(1);
    }
    eprintln!(
        "check ok: blocked nn on {REFERENCE_SHAPE} is x{:.2} vs naive",
        reference.speedup
    );
}
