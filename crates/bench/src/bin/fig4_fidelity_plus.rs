//! Reproduces **Fig. 4**: Fidelity+ (counterfactual explanation) versus
//! sparsity. Learning-based methods (GNNExplainer, PGExplainer, GraphMask,
//! FlowX, REVELIO) retrain with the counterfactual objective (Eqs. 2 & 9);
//! the remaining methods reuse their original explanations, as in the paper.
//!
//! ```text
//! cargo run -p revelio-bench --release --bin fig4_fidelity_plus [--full] ...
//! ```

use revelio_bench::{
    combination_applicable, instances_for_runtime, load_dataset, model_for, run_fidelity,
    HarnessArgs,
};
use revelio_core::Objective;
use revelio_eval::{experiments_dir, Table};
use revelio_gnn::ModelZoo;

fn main() {
    let args = HarnessArgs::parse();
    let rt = args.runtime();
    let zoo = ModelZoo::default_location();
    let mut table = Table::new(
        "Fig. 4: Fidelity+ vs sparsity (counterfactual explanation; higher is better)",
        &["Dataset", "Model", "Method", "Sparsity", "Fidelity+"],
    );

    for name in &args.datasets {
        let dataset = load_dataset(name, args.seed);
        for &kind in &args.models {
            if !combination_applicable("REVELIO", kind, name) {
                continue;
            }
            let model = model_for(&zoo, &dataset, kind, &args);
            let instances = instances_for_runtime(&dataset, &model, &args, false, &rt);
            if instances.is_empty() {
                eprintln!("skipping {name}/{}: no instances sampled", kind.name());
                continue;
            }
            let methods: Vec<&'static str> = args
                .methods
                .iter()
                .copied()
                .filter(|m| combination_applicable(m, kind, name))
                .collect();
            let results = run_fidelity(
                &rt,
                &model,
                &instances,
                &methods,
                Objective::Counterfactual,
                &args.sparsities,
                args.effort,
                args.seed,
            );
            for r in &results {
                for &(s, f) in &r.rows {
                    table.row(vec![
                        name.to_string(),
                        kind.name().to_string(),
                        r.method.to_string(),
                        format!("{s:.1}"),
                        format!("{f:.4}"),
                    ]);
                }
            }
            eprintln!(
                "done: {name}/{} ({} instances)",
                kind.name(),
                instances.len()
            );
        }
    }

    eprintln!("\n{}", rt.metrics_report());
    table.print();
    table.write_csv(experiments_dir().join("fig4_fidelity_plus.csv"));
    println!("\nCSV written to target/experiments/fig4_fidelity_plus.csv");
}
