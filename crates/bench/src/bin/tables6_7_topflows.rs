//! Reproduces **Figs. 7–8 / Tables VI–VII**: the top-10 message flows with
//! scores from each flow-based method (GNN-LRP, FlowX, REVELIO) on the
//! Fig. 6 instances (BA-Shapes with GCN, BA-2motifs with GIN).
//!
//! ```text
//! cargo run -p revelio-bench --release --bin tables6_7_topflows [--full]
//! ```

use revelio_bench::{instances_for, load_dataset, model_for, HarnessArgs};
use revelio_core::Objective;
use revelio_eval::{experiments_dir, make_method, Table, FLOW_METHODS};
use revelio_gnn::{GnnKind, ModelZoo};

fn main() {
    let args = HarnessArgs::parse();
    let zoo = ModelZoo::default_location();

    let mut table = Table::new(
        "Tables VI-VII: top-10 message flows by flow-based methods",
        &[
            "Dataset",
            "Model",
            "Method",
            "Rank",
            "Message Flow",
            "Score",
        ],
    );

    for (name, kind, label) in [
        ("BA-Shapes", GnnKind::Gcn, "Table VI"),
        ("BA-2motifs", GnnKind::Gin, "Table VII"),
    ] {
        if !args.datasets.contains(&name) {
            continue;
        }
        let dataset = load_dataset(name, args.seed);
        let model = model_for(&zoo, &dataset, kind, &args);
        let instances = instances_for(&dataset, &model, &args, true);
        let Some(e) = instances.iter().find(|e| e.ground_truth.is_some()) else {
            eprintln!("no motif instance found for {name}");
            continue;
        };
        println!("\n{label}: instance from {name} ({} target)", kind.name());

        for method in FLOW_METHODS {
            let explainer = make_method(method, Objective::Factual, args.effort, args.seed);
            let exp = explainer.explain(&model, &e.instance);
            let Some(flows) = exp.flows else {
                eprintln!("{method} returned no flow scores");
                continue;
            };
            for (rank, (f, score)) in flows.top_k(10).into_iter().enumerate() {
                let path = flows.index.flow_string(&e.instance.mp, f);
                table.row(vec![
                    name.to_string(),
                    kind.name().to_string(),
                    method.to_string(),
                    (rank + 1).to_string(),
                    path,
                    format!("{score:.4}"),
                ]);
            }
        }
    }

    table.print();
    table.write_csv(experiments_dir().join("tables6_7_topflows.csv"));
    println!("\nCSV written to target/experiments/tables6_7_topflows.csv");
}
