//! Load generator for `revelio-server`: drives the wire protocol over
//! loopback at several client-concurrency levels and writes
//! `target/experiments/BENCH_server.json` (machine-readable; new fields
//! are only ever added, never renamed).
//!
//! ```text
//! cargo run -p revelio-bench --release --bin loadgen [--smoke] \
//!     [--addr HOST:PORT] [--requests N] [--levels 1,2,4,8] \
//!     [--max-in-flight N] [--seed S] [--shutdown] [--fetch-newest] \
//!     [--trace-sample RATE]
//! ```
//!
//! Without `--addr`, a server is started in-process on a free loopback
//! port (self-contained benchmark). With `--addr`, an already-running
//! `revelio-serve` is driven instead — that is the CI smoke path:
//! `revelio-serve &` + `loadgen --smoke --addr ... --shutdown` proves the
//! binary protocol end to end across processes.
//!
//! `--fetch-newest` is a standalone check instead of a load run: connect,
//! list the server's persisted explanations, fetch the newest by job id,
//! and fail (non-zero exit) if the store is empty or the record does not
//! come back. Paired with `revelio-serve --store`, running it *after a
//! server restart* proves crash recovery end to end.
//!
//! `--gateway` is a comparison mode instead of a load run: the same
//! repeated-key workload is driven against (a) one direct in-process
//! backend and (b) a `revelio-gateway` over three in-process shards, and
//! cache hit-rates plus client-side p50/p99 land in
//! `target/experiments/BENCH_gateway.json`. The run fails if the gateway
//! hit-rate strays more than five points from the direct one — that is
//! the locality property consistent hashing exists to preserve.
//!
//! `--trace-sample RATE` appends a distributed-tracing pass after the
//! concurrency levels: requests are head-sampled client-side at `RATE`,
//! sampled ones carry a generated trace context over the wire, and their
//! *assembled* traces are fetched straight back. Per-phase p50/p90/p99
//! reconstructed from those traces land in a `tracing` section of
//! `BENCH_server.json`, alongside the measured cost of the sampler's off
//! path (ns/op over one million rate-zero decisions) and a same-workload
//! repeat delta that bounds the noise floor.
//!
//! Every client thread ships `Busy`-aware retries, so shed requests are
//! *counted* but still served eventually; the run fails (non-zero exit)
//! if any request ultimately errors or the server reports protocol
//! errors.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use revelio_bench::{available_workers, serving_workload};
use revelio_core::wire::ControlSpec;
use revelio_core::Objective;
use revelio_eval::Effort;
use revelio_graph::{Graph, Target};
use revelio_runtime::{HistogramSnapshot, RuntimeConfig};
use revelio_server::{
    Client, ClientConfig, ClientError, ExplainRequest, Server, ServerConfig, ServerStats,
};

struct Args {
    smoke: bool,
    addr: Option<String>,
    requests: usize,
    levels: Vec<usize>,
    max_in_flight: usize,
    seed: u64,
    shutdown: bool,
    fetch_newest: bool,
    gateway: bool,
    trace_sample: f64,
}

const USAGE: &str = "usage: loadgen [--smoke] [--addr HOST:PORT] [--requests N] \
[--levels 1,2,4] [--max-in-flight N] [--seed S] [--shutdown] [--fetch-newest] [--gateway] \
[--trace-sample RATE]";

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        addr: None,
        requests: 16,
        levels: vec![1, 2, 4, 8],
        max_in_flight: 64,
        seed: 42,
        shutdown: false,
        fetch_newest: false,
        gateway: false,
        trace_sample: 0.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--shutdown" => args.shutdown = true,
            "--fetch-newest" => args.fetch_newest = true,
            "--gateway" => args.gateway = true,
            "--addr" => args.addr = Some(it.next().expect(USAGE)),
            "--requests" => {
                args.requests = it.next().and_then(|v| v.parse().ok()).expect(USAGE);
            }
            "--max-in-flight" => {
                args.max_in_flight = it.next().and_then(|v| v.parse().ok()).expect(USAGE);
            }
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok()).expect(USAGE);
            }
            "--trace-sample" => {
                args.trace_sample = it.next().and_then(|v| v.parse().ok()).expect(USAGE);
                assert!(
                    (0.0..=1.0).contains(&args.trace_sample),
                    "--trace-sample must be in 0..=1"
                );
            }
            "--levels" => {
                args.levels = it
                    .next()
                    .expect(USAGE)
                    .split(',')
                    .map(|v| v.trim().parse().expect("--levels: not a number"))
                    .collect();
            }
            other => panic!("unknown argument: {other}\n{USAGE}"),
        }
    }
    if args.smoke {
        args.requests = 4;
        args.levels = vec![1, 2];
    }
    assert!(
        !args.levels.is_empty(),
        "--levels must name at least one level"
    );
    args
}

struct LevelResult {
    clients: usize,
    requests: usize,
    seconds: f64,
    per_sec: f64,
    busy_answers: u64,
    degraded: u64,
    failures: u64,
}

/// Drives `requests` explanations per client from `clients` parallel
/// connections. Every request retries on `Busy`/transient errors; a
/// request that still fails after the budget counts as a failure.
fn drive_level(
    addr: std::net::SocketAddr,
    model_id: u32,
    graphs: &[Graph],
    clients: usize,
    requests: usize,
) -> LevelResult {
    let busy_answers = Arc::new(AtomicU64::new(0));
    let degraded = Arc::new(AtomicU64::new(0));
    let failures = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let busy_answers = Arc::clone(&busy_answers);
            let degraded = Arc::clone(&degraded);
            let failures = Arc::clone(&failures);
            scope.spawn(move || {
                let cfg = ClientConfig {
                    max_attempts: 12,
                    backoff_base: Duration::from_millis(5),
                    ..Default::default()
                };
                let mut client = match Client::connect_with_retry(addr, cfg) {
                    Ok(cl) => cl,
                    Err(_) => {
                        failures.fetch_add(requests as u64, Ordering::Relaxed);
                        return;
                    }
                };
                for r in 0..requests {
                    // Distinct graphs/ids per (client, request): the server
                    // must enumerate flows per job rather than ride one
                    // cache entry.
                    let ix = (c * requests + r) % graphs.len();
                    let req = ExplainRequest {
                        model: model_id,
                        graph_id: ix as u64,
                        method: "REVELIO".to_owned(),
                        objective: Objective::Factual,
                        effort: Effort::Quick,
                        target: Target::Node(2),
                        control: ControlSpec::default(),
                        graph: graphs[ix].clone(),
                        context: None,
                    };
                    // Count Busy answers by probing once without retry,
                    // then fall back to the retrying path.
                    match client.explain(&req) {
                        Ok(served) => {
                            if served.degradation.is_degraded() {
                                degraded.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(ClientError::Busy { .. }) => {
                            busy_answers.fetch_add(1, Ordering::Relaxed);
                            match client.explain_with_retry(&req) {
                                Ok(served) => {
                                    if served.degradation.is_degraded() {
                                        degraded.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Err(_) => {
                                    failures.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(_) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let total = clients * requests;
    LevelResult {
        clients,
        requests: total,
        seconds,
        per_sec: total as f64 / seconds.max(1e-9),
        busy_answers: busy_answers.load(Ordering::Relaxed),
        degraded: degraded.load(Ordering::Relaxed),
        failures: failures.load(Ordering::Relaxed),
    }
}

/// `--fetch-newest`: connect, list persisted explanations, fetch the one
/// with the highest job id, and verify it carries scores. Run against a
/// *restarted* `revelio-serve --store` this proves crash recovery over
/// the wire (the record predates the serving process).
fn fetch_newest(addr: std::net::SocketAddr, shutdown: bool) -> ExitCode {
    let mut client = Client::connect_with_retry(
        addr,
        ClientConfig {
            max_attempts: 20,
            backoff_base: Duration::from_millis(25),
            ..Default::default()
        },
    )
    .expect("connect to server");
    let list = client.list_explanations().expect("list explanations");
    let rec = list.iter().max_by_key(|s| s.job_id).map(|newest| {
        client
            .fetch_explanation(newest.job_id)
            .expect("fetch explanation")
            .expect("listed job id must fetch")
    });
    // Shut down before reporting, so a failed check still tears the
    // server down (a CI `wait` on the server must never hang).
    if shutdown {
        client.shutdown().expect("server acknowledged shutdown");
    }
    match rec {
        None => {
            eprintln!("fetch-newest: server's store holds no explanations");
            ExitCode::FAILURE
        }
        Some(rec) if rec.edge_scores.is_empty() => {
            eprintln!(
                "fetch-newest: job {} came back without edge scores",
                rec.job_id
            );
            ExitCode::FAILURE
        }
        Some(rec) => {
            println!(
                "fetch-newest: job {} (model {}, graph {}) served {} edge scores, has_mask={}",
                rec.job_id,
                rec.model,
                rec.graph_id,
                rec.edge_scores.len(),
                rec.has_mask
            );
            ExitCode::SUCCESS
        }
    }
}

/// One scenario of the `--gateway` comparison: latency percentiles from
/// client-observed wall clocks plus the serving side's cache counters.
struct ScenarioResult {
    requests: usize,
    seconds: f64,
    per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    cache_hits: u64,
    cache_misses: u64,
}

impl ScenarioResult {
    fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    fn json(&self, label: &str) -> String {
        format!(
            "\"{label}\": {{\"requests\": {}, \"seconds\": {:.4}, \
             \"explanations_per_sec\": {:.4}, \"p50_us\": {}, \"p99_us\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}}}",
            self.requests,
            self.seconds,
            self.per_sec,
            self.p50_us,
            self.p99_us,
            self.cache_hits,
            self.cache_misses,
            self.hit_rate()
        )
    }
}

/// Drives the repeated-key workload against `addr` from one connection
/// and returns client-side latencies; the caller supplies cache counters
/// from whichever stats surface the scenario has.
fn drive_repeated_keys(
    addr: std::net::SocketAddr,
    model_id: u32,
    graphs: &[Graph],
    repeats: usize,
) -> (Vec<u64>, f64, u64) {
    let mut client = Client::connect_with_retry(addr, ClientConfig::default())
        .expect("connect for repeated-key workload");
    let mut latencies_us = Vec::with_capacity(graphs.len() * repeats);
    let mut failures = 0u64;
    let start = Instant::now();
    for _ in 0..repeats {
        for (ix, graph) in graphs.iter().enumerate() {
            let req = ExplainRequest {
                model: model_id,
                graph_id: ix as u64,
                method: "REVELIO".to_owned(),
                objective: Objective::Factual,
                effort: Effort::Quick,
                target: Target::Node(2),
                control: ControlSpec::default(),
                graph: graph.clone(),
                context: None,
            };
            let t0 = Instant::now();
            match client.explain_with_retry(&req) {
                Ok(_) => latencies_us.push(t0.elapsed().as_micros() as u64),
                Err(_) => failures += 1,
            }
        }
    }
    (latencies_us, start.elapsed().as_secs_f64(), failures)
}

/// What the `--trace-sample` pass measured; rendered as the `tracing`
/// section of `BENCH_server.json`.
struct TracingSummary {
    rate: f64,
    requests: usize,
    sampled: usize,
    assembled: usize,
    /// Cost of one rate-zero sampling decision — the only code a
    /// deployment with tracing off executes per request.
    off_ns_per_op: u64,
    /// Mean-latency delta between two identical *untraced* passes: the
    /// noise floor any sampling-off overhead claim has to clear.
    off_delta_us: f64,
    /// Per span name: (p50, p90, p99, count) in µs from assembled traces.
    phases: Vec<(String, u64, u64, u64, usize)>,
}

/// The `--trace-sample` pass: micro-benchmark the sampler's off path,
/// bound run-to-run noise with a repeated untraced pass, then drive
/// head-sampled traced requests and reconstruct per-phase percentiles
/// from the assembled traces fetched back over the wire.
fn tracing_pass(
    addr: std::net::SocketAddr,
    model_id: u32,
    graphs: &[Graph],
    rate: f64,
    seed: u64,
) -> TracingSummary {
    use revelio_trace::{Sampler, TraceContext};

    // (a) One million rate-zero decisions, timed. The off path must stay
    // a field load plus a branch; ns/op lands in the report so a
    // regression is visible in the benchmark artifact, not just in the
    // unit-test bound.
    let off = Sampler::new(0.0, seed);
    let t0 = Instant::now();
    let mut fired = 0u64;
    for _ in 0..1_000_000u32 {
        if off.sample() {
            fired += 1;
        }
    }
    assert_eq!(fired, 0, "rate-0 sampler must never fire");
    let off_ns_per_op = (t0.elapsed().as_nanos() / 1_000_000) as u64;

    let mut client = Client::connect_with_retry(
        addr,
        ClientConfig {
            max_attempts: 12,
            backoff_base: Duration::from_millis(5),
            ..Default::default()
        },
    )
    .expect("connect for tracing pass");

    // (b) Two identical untraced passes; the delta between their means is
    // measurement noise, since the executed path is byte-for-byte the same.
    let run_untraced = |client: &mut Client| -> f64 {
        let mut total_us = 0u64;
        for (ix, graph) in graphs.iter().enumerate() {
            let req = ExplainRequest {
                model: model_id,
                graph_id: ix as u64,
                method: "REVELIO".to_owned(),
                objective: Objective::Factual,
                effort: Effort::Quick,
                target: Target::Node(2),
                control: ControlSpec::default(),
                graph: graph.clone(),
                context: None,
            };
            let t0 = Instant::now();
            client.explain_with_retry(&req).expect("untraced request");
            total_us += t0.elapsed().as_micros() as u64;
        }
        total_us as f64 / graphs.len().max(1) as f64
    };
    let mean_a = run_untraced(&mut client);
    let mean_b = run_untraced(&mut client);
    let off_delta_us = mean_b - mean_a;

    // (c) Traced pass: head sampling client-side, sampled requests carry
    // a generated context; each assembled trace is fetched immediately so
    // retention churn cannot evict it first.
    let sampler = Sampler::new(rate, seed);
    let mut sampled = 0usize;
    let mut assembled = 0usize;
    let mut by_phase: std::collections::BTreeMap<String, Vec<u64>> = Default::default();
    for (ix, graph) in graphs.iter().enumerate() {
        let context = sampler
            .sample()
            .then(|| TraceContext::generate(seed, ix as u64));
        let req = ExplainRequest {
            model: model_id,
            graph_id: ix as u64,
            method: "REVELIO".to_owned(),
            objective: Objective::Factual,
            effort: Effort::Quick,
            target: Target::Node(2),
            control: ControlSpec::default(),
            graph: graph.clone(),
            context,
        };
        client.explain_with_retry(&req).expect("traced request");
        let Some(ctx) = context else { continue };
        sampled += 1;
        if let Ok(trace) = client.assembled_trace(ctx.trace_hi, ctx.trace_lo) {
            assembled += 1;
            for span in &trace.spans {
                by_phase
                    .entry(span.name.clone())
                    .or_default()
                    .push(span.dur_us);
            }
        }
    }
    let phases = by_phase
        .into_iter()
        .map(|(name, mut v)| {
            v.sort_unstable();
            let (p50, p90, p99) = (
                percentile(&v, 0.50),
                percentile(&v, 0.90),
                percentile(&v, 0.99),
            );
            (name, p50, p90, p99, v.len())
        })
        .collect();
    TracingSummary {
        rate,
        requests: graphs.len() * 3,
        sampled,
        assembled,
        off_ns_per_op,
        off_delta_us,
        phases,
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn scenario_result(
    latencies_us: Vec<u64>,
    seconds: f64,
    cache_hits: u64,
    cache_misses: u64,
) -> ScenarioResult {
    let mut sorted = latencies_us;
    sorted.sort_unstable();
    ScenarioResult {
        requests: sorted.len(),
        seconds,
        per_sec: sorted.len() as f64 / seconds.max(1e-9),
        p50_us: percentile(&sorted, 0.50),
        p99_us: percentile(&sorted, 0.99),
        cache_hits,
        cache_misses,
    }
}

/// `--gateway`: same repeated-key workload against one direct backend vs
/// a gateway over three in-process shards; writes `BENCH_gateway.json`
/// and fails if consistent hashing lost more than five points of cache
/// hit-rate.
fn gateway_compare(args: &Args) -> ExitCode {
    use revelio_gateway::{Gateway, GatewayConfig};

    let distinct = if args.smoke { 6 } else { args.requests.max(12) };
    let repeats = if args.smoke { 3 } else { 5 };
    let (model, graphs) = serving_workload(distinct);
    let backend_cfg = || ServerConfig {
        runtime: RuntimeConfig {
            workers: 1,
            seed: args.seed,
            ..Default::default()
        },
        max_in_flight: args.max_in_flight,
        ..Default::default()
    };

    // Scenario A: one backend, no gateway.
    let direct = {
        let server = Server::start(backend_cfg()).expect("start direct backend");
        let mut admin = Client::connect(server.local_addr()).expect("connect to direct backend");
        let model_id = admin.register_model(&model).expect("register (direct)");
        let (lat, seconds, failures) =
            drive_repeated_keys(server.local_addr(), model_id, &graphs, repeats);
        assert_eq!(failures, 0, "direct scenario dropped requests");
        let stats = admin.stats().expect("direct stats");
        server.shutdown();
        scenario_result(
            lat,
            seconds,
            stats.runtime.cache_hits,
            stats.runtime.cache_misses,
        )
    };

    // Scenario B: three shards behind a gateway.
    let (via_gateway, backends_json) = {
        let servers: Vec<Server> = (0..3)
            .map(|_| Server::start(backend_cfg()).expect("start shard"))
            .collect();
        let gateway = Gateway::start(GatewayConfig {
            shards: servers.iter().map(|s| s.local_addr().to_string()).collect(),
            ..GatewayConfig::default()
        })
        .expect("start gateway");
        let mut admin = Client::connect(gateway.local_addr()).expect("connect to gateway");
        let model_id = admin.register_model(&model).expect("register (gateway)");
        let (lat, seconds, failures) =
            drive_repeated_keys(gateway.local_addr(), model_id, &graphs, repeats);
        assert_eq!(failures, 0, "gateway scenario dropped requests");
        let (merged, tail) = admin.stats_full().expect("gateway stats");
        let tail = tail.expect("gateway must attach its stats tail");
        let mut backends_json = String::from("[");
        for (i, b) in tail.backends.iter().enumerate() {
            let _ = write!(
                backends_json,
                "{}{{\"addr\": \"{}\", \"healthy\": {}, \"forwarded\": {}, \
                 \"errors\": {}, \"busy\": {}}}",
                if i > 0 { ", " } else { "" },
                b.addr,
                b.healthy,
                b.forwarded,
                b.errors,
                b.busy
            );
        }
        backends_json.push(']');
        for s in &servers {
            s.stop();
        }
        gateway.shutdown();
        (
            scenario_result(
                lat,
                seconds,
                merged.runtime.cache_hits,
                merged.runtime.cache_misses,
            ),
            backends_json,
        )
    };

    let delta = (direct.hit_rate() - via_gateway.hit_rate()).abs();
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"revelio-gateway loadgen\",");
    let _ = writeln!(json, "  \"cores\": {},", available_workers());
    let _ = writeln!(json, "  \"smoke\": {},", args.smoke);
    let _ = writeln!(json, "  \"distinct_keys\": {distinct},");
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    let _ = writeln!(json, "  \"shards\": 3,");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  {},", direct.json("direct"));
    let _ = writeln!(json, "  {},", via_gateway.json("gateway"));
    let _ = writeln!(json, "  \"cache_hit_rate_delta\": {delta:.4},");
    let _ = writeln!(json, "  \"backends\": {backends_json}");
    json.push_str("}\n");

    let path = revelio_eval::experiments_dir().join("BENCH_gateway.json");
    std::fs::write(&path, &json).expect("write BENCH_gateway.json");
    println!("{json}");
    println!("written to {}", path.display());

    if delta > 0.05 {
        eprintln!(
            "loadgen --gateway: hit-rate delta {delta:.4} exceeds 0.05 \
             (direct {:.4} vs gateway {:.4})",
            direct.hit_rate(),
            via_gateway.hit_rate()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "loadgen --gateway: locality preserved (direct {:.4} vs gateway {:.4})",
        direct.hit_rate(),
        via_gateway.hit_rate()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.gateway {
        return gateway_compare(&args);
    }
    if args.fetch_newest {
        let addr = args
            .addr
            .as_deref()
            .expect("--fetch-newest requires --addr")
            .parse()
            .expect("--addr must be HOST:PORT");
        return fetch_newest(addr, args.shutdown);
    }
    let (model, graphs) = serving_workload(args.requests.max(8));

    // Either drive an external server (--addr) or host one in-process.
    let local_server = if args.addr.is_none() {
        Some(
            Server::start(ServerConfig {
                runtime: RuntimeConfig {
                    workers: available_workers(),
                    seed: args.seed,
                    ..Default::default()
                },
                max_in_flight: args.max_in_flight,
                ..Default::default()
            })
            .expect("start in-process server"),
        )
    } else {
        None
    };
    let addr: std::net::SocketAddr = match (&args.addr, &local_server) {
        (Some(a), _) => a.parse().expect("--addr must be HOST:PORT"),
        (None, Some(s)) => s.local_addr(),
        (None, None) => unreachable!(),
    };

    let mut admin = Client::connect_with_retry(
        addr,
        ClientConfig {
            max_attempts: 20,
            backoff_base: Duration::from_millis(25),
            ..Default::default()
        },
    )
    .expect("connect to server");
    admin.ping().expect("server did not answer ping");
    let model_id = admin
        .register_model(&model)
        .expect("register model over wire");

    let mut rows = Vec::new();
    for &clients in &args.levels {
        let r = drive_level(addr, model_id, &graphs, clients, args.requests);
        eprintln!(
            "clients={:>2}  requests={:>4}  {:.2}s  {:.2} explanations/sec  busy={} failures={}",
            r.clients, r.requests, r.seconds, r.per_sec, r.busy_answers, r.failures
        );
        rows.push(r);
    }

    let tracing = (args.trace_sample > 0.0)
        .then(|| tracing_pass(addr, model_id, &graphs, args.trace_sample, args.seed));
    if let Some(t) = &tracing {
        eprintln!(
            "tracing: rate={:.2}  sampled={}/{}  assembled={}  off-path={} ns/op  noise={:+.1} µs",
            t.rate,
            t.sampled,
            graphs.len(),
            t.assembled,
            t.off_ns_per_op,
            t.off_delta_us
        );
    }

    let stats: ServerStats = admin.stats().expect("fetch final stats");
    let failures: u64 = rows.iter().map(|r| r.failures).sum();

    if args.shutdown {
        admin.shutdown().expect("server acknowledged shutdown");
    }
    if let Some(server) = local_server {
        server.stop();
        let final_stats = server.shutdown();
        debug_assert_eq!(final_stats.protocol_errors, stats.protocol_errors);
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"revelio-server loadgen\",");
    let _ = writeln!(json, "  \"cores\": {},", available_workers());
    let _ = writeln!(json, "  \"smoke\": {},", args.smoke);
    let _ = writeln!(json, "  \"external_server\": {},", args.addr.is_some());
    let _ = writeln!(json, "  \"requests_per_client\": {},", args.requests);
    // The seed steers the in-process runtime; against --addr it only
    // records intent (the external server was seeded on its own CLI).
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    json.push_str("  \"levels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"clients\": {}, \"requests\": {}, \"seconds\": {:.4}, \
             \"explanations_per_sec\": {:.4}, \"busy_answers\": {}, \
             \"degraded\": {}, \"failures\": {}}}",
            r.clients, r.requests, r.seconds, r.per_sec, r.busy_answers, r.degraded, r.failures
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = write!(
        json,
        "  \"server\": {{\"requests\": {}, \"shed\": {}, \"protocol_errors\": {}, \
         \"bytes_in\": {}, \"bytes_out\": {}, \"jobs_completed\": {}, \
         \"jobs_rejected\": {}, \"mean_request_us\": {}}}",
        stats.requests,
        stats.shed,
        stats.protocol_errors,
        stats.bytes_in,
        stats.bytes_out,
        stats.runtime.jobs_completed,
        stats.runtime.jobs_rejected,
        stats.request_latency.mean_us()
    );
    // Per-phase breakdown from the server's runtime registry, plus an
    // estimate of pure wire time: request latency minus the runtime
    // stages (saturating, since the means come from different counters).
    let one = |name: &str, h: &HistogramSnapshot| {
        format!(
            "\"{name}\": {{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \
             \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            h.count,
            h.mean_us(),
            h.p50_us(),
            h.p90_us(),
            h.p99_us(),
            h.max_us
        )
    };
    let rt = &stats.runtime;
    let wire_us = stats.request_latency.mean_us().saturating_sub(
        rt.queue_wait
            .mean_us()
            .saturating_add(rt.prep_latency.mean_us())
            .saturating_add(rt.explain_latency.mean_us()),
    );
    let _ = writeln!(
        json,
        ",\n  \"phases\": {{{}, {}, {}, {}, {}, {}, {}, \"wire_estimate_mean_us\": {wire_us}}}{}",
        one("queue_wait", &rt.queue_wait),
        one("prep", &rt.prep_latency),
        one("extraction", &rt.phase_extraction),
        one("flow_index", &rt.phase_flow_index),
        one("optimize", &rt.phase_optimize),
        one("readout", &rt.phase_readout),
        one("explain", &rt.explain_latency),
        if tracing.is_some() { "," } else { "" },
    );
    if let Some(t) = &tracing {
        let mut phase_json = String::new();
        for (i, (name, p50, p90, p99, count)) in t.phases.iter().enumerate() {
            let _ = write!(
                phase_json,
                "{}\"{name}\": {{\"count\": {count}, \"p50_us\": {p50}, \
                 \"p90_us\": {p90}, \"p99_us\": {p99}}}",
                if i > 0 { ", " } else { "" },
            );
        }
        let _ = writeln!(
            json,
            "  \"tracing\": {{\"sample_rate\": {:.4}, \"requests\": {}, \"sampled\": {}, \
             \"assembled\": {}, \"sampling_off_ns_per_op\": {}, \
             \"sampling_off_delta_us\": {:.2}, \"phases\": {{{phase_json}}}}}",
            t.rate, t.requests, t.sampled, t.assembled, t.off_ns_per_op, t.off_delta_us,
        );
    }
    json.push_str("}\n");

    let path = revelio_eval::experiments_dir().join("BENCH_server.json");
    std::fs::write(&path, &json).expect("write BENCH_server.json");
    println!("{json}");
    println!("written to {}", path.display());

    if failures > 0 {
        eprintln!("loadgen: {failures} requests ultimately failed");
        return ExitCode::FAILURE;
    }
    if stats.protocol_errors > 0 {
        eprintln!(
            "loadgen: server reported {} protocol errors",
            stats.protocol_errors
        );
        return ExitCode::FAILURE;
    }
    println!("loadgen: all requests served, zero protocol errors");
    ExitCode::SUCCESS
}
