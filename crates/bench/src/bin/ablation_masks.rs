//! Ablation of REVELIO's design choices (§IV-B of the paper):
//!
//! * **Mask squashing** (Eq. 4): the paper argues for `tanh` over `sigmoid`
//!   because negative scores prevent "excessive accumulation" on layer edges
//!   carrying many flows — the sigmoid ablation tests that claim.
//! * **Per-layer weight activation** (Eq. 5): the paper picks `exp` over
//!   `softplus` empirically, and explains why dropping the weight entirely
//!   ("None") misaligns the accumulated scores across layers.
//! * **Top-k flow preselection** (§VI future work): learn masks only for the
//!   k most salient flows — the memory/runtime optimisation the paper leaves
//!   open — and measure the fidelity cost.
//!
//! ```text
//! cargo run -p revelio-bench --release --bin ablation_masks [--full]
//! ```

use std::time::Instant;

use revelio_bench::{instances_for, load_dataset, model_for, HarnessArgs};
use revelio_core::{Explainer, LayerWeight, MaskSquash, Objective, Revelio, RevelioConfig};
use revelio_eval::{experiments_dir, fidelity_minus, Effort, Table};
use revelio_gnn::{GnnKind, ModelZoo};

struct Variant {
    name: &'static str,
    squash: MaskSquash,
    layer_weight: LayerWeight,
    preselect: Option<usize>,
}

fn main() {
    let mut args = HarnessArgs::parse();
    if args.datasets.len() == 8 {
        args.datasets = vec!["BA-Shapes", "Tree-Cycles"];
    }
    let zoo = ModelZoo::default_location();
    let epochs = match args.effort {
        Effort::Quick => 120,
        Effort::Paper => 500,
    };

    let variants = [
        Variant {
            name: "paper (tanh + exp)",
            squash: MaskSquash::Tanh,
            layer_weight: LayerWeight::Exp,
            preselect: None,
        },
        Variant {
            name: "sigmoid squash",
            squash: MaskSquash::Sigmoid,
            layer_weight: LayerWeight::Exp,
            preselect: None,
        },
        Variant {
            name: "softplus weights",
            squash: MaskSquash::Tanh,
            layer_weight: LayerWeight::Softplus,
            preselect: None,
        },
        Variant {
            name: "no layer weights",
            squash: MaskSquash::Tanh,
            layer_weight: LayerWeight::None,
            preselect: None,
        },
        Variant {
            name: "preselect top-256",
            squash: MaskSquash::Tanh,
            layer_weight: LayerWeight::Exp,
            preselect: Some(256),
        },
        Variant {
            name: "preselect top-64",
            squash: MaskSquash::Tanh,
            layer_weight: LayerWeight::Exp,
            preselect: Some(64),
        },
    ];

    let mut table = Table::new(
        "Ablation: REVELIO mask-transform design choices (Fidelity-, lower is better)",
        &["Dataset", "Variant", "Sparsity", "Fidelity-", "Sec/inst"],
    );

    for name in &args.datasets {
        let dataset = load_dataset(name, args.seed);
        let model = model_for(&zoo, &dataset, GnnKind::Gcn, &args);
        let instances = instances_for(&dataset, &model, &args, false);
        if instances.is_empty() {
            eprintln!("skipping {name}: no instances");
            continue;
        }
        for v in &variants {
            let r = Revelio::new(RevelioConfig {
                epochs,
                squash: v.squash,
                layer_weight: v.layer_weight,
                preselect: v.preselect,
                objective: Objective::Factual,
                seed: args.seed,
                ..Default::default()
            });
            let start = Instant::now();
            let explanations: Vec<_> = instances
                .iter()
                .map(|e| r.explain(&model, &e.instance))
                .collect();
            let secs = start.elapsed().as_secs_f64() / instances.len() as f64;
            for &s in &args.sparsities {
                let fm: f32 = instances
                    .iter()
                    .zip(&explanations)
                    .map(|(e, exp)| fidelity_minus(&model, &e.instance, exp, s))
                    .sum::<f32>()
                    / instances.len() as f32;
                table.row(vec![
                    name.to_string(),
                    v.name.to_string(),
                    format!("{s:.1}"),
                    format!("{fm:.4}"),
                    format!("{secs:.3}"),
                ]);
            }
            eprintln!("done: {name} / {}", v.name);
        }
    }

    table.print();
    table.write_csv(experiments_dir().join("ablation_masks.csv"));
    println!("\nCSV written to target/experiments/ablation_masks.csv");
}
