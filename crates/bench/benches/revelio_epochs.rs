//! Benchmarks one REVELIO learning epoch versus graph size — the empirical
//! counterpart of Table II's `O(T(L|F| + T_Φ))` per-epoch cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use revelio_core::{Explainer, Revelio, RevelioConfig};
use revelio_gnn::{Gnn, GnnConfig, GnnKind, Instance, Task};
use revelio_graph::{Graph, Target};

fn ring_with_chords(n: usize) -> Graph {
    let mut b = Graph::builder(n, 4);
    for i in 0..n {
        b.undirected_edge(i, (i + 1) % n);
    }
    for i in (0..n).step_by(4) {
        let j = (i + n / 2) % n;
        if !b.has_edge(i, j) && i != j {
            b.undirected_edge(i, j);
        }
    }
    for v in 0..n {
        b.node_features(v, &[1.0, (v % 2) as f32, (v % 3) as f32, 0.1]);
    }
    b.build()
}

fn bench_revelio_epochs(c: &mut Criterion) {
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gcn,
        Task::NodeClassification,
        4,
        2,
        0,
    ));
    let mut group = c.benchmark_group("revelio_5_epochs");
    group.sample_size(10);
    for &n in &[16usize, 32, 64] {
        let g = ring_with_chords(n);
        let instance = Instance::for_prediction(&model, g, Target::Node(0));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let r = Revelio::new(RevelioConfig {
                    epochs: 5,
                    ..Default::default()
                });
                black_box(r.explain(&model, &instance))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_revelio_epochs);
criterion_main!(benches);
