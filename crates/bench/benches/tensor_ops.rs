//! Microbenchmarks of the tensor kernels underpinning training and mask
//! learning: dense matmul, gather/scatter message passing, and the sparse
//! flow-incidence matvec of Eq. 7.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use revelio_tensor::{BinCsr, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 128] {
        let a = Tensor::full(0.5, n, n);
        let b = Tensor::full(0.25, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_gather_scatter(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_scatter");
    for &edges in &[1_000usize, 10_000] {
        let nodes = edges / 4;
        let h = Tensor::full(1.0, nodes, 32);
        let src: Vec<usize> = (0..edges).map(|e| e % nodes).collect();
        let dst: Vec<usize> = (0..edges).map(|e| (e * 7) % nodes).collect();
        group.bench_with_input(BenchmarkId::from_parameter(edges), &edges, |bench, _| {
            bench.iter(|| {
                let msgs = h.gather_rows(&src);
                black_box(msgs.scatter_add_rows(&dst, nodes))
            });
        });
    }
    group.finish();
}

fn bench_sp_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("sp_matvec_eq7");
    for &flows in &[10_000usize, 100_000] {
        let edges = 200;
        // Each flow hits one random-ish edge, like one layer of an
        // incidence matrix.
        let pairs: Vec<(u32, u32)> = (0..flows).map(|f| ((f % edges) as u32, f as u32)).collect();
        let mat = Arc::new(BinCsr::from_pairs(edges, flows, &pairs));
        let x = Tensor::full(0.1, flows, 1);
        group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |bench, _| {
            bench.iter(|| black_box(x.sp_matvec(&mat)));
        });
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    c.bench_function("backward_through_mlp", |bench| {
        let w1 = Tensor::full(0.1, 64, 64).requires_grad();
        let w2 = Tensor::full(0.1, 64, 8).requires_grad();
        let x = Tensor::full(1.0, 32, 64);
        bench.iter(|| {
            w1.zero_grad();
            w2.zero_grad();
            let loss = x
                .matmul(&w1)
                .relu()
                .matmul(&w2)
                .log_softmax_rows()
                .nll_loss(&vec![0usize; 32]);
            loss.backward();
            black_box(loss.item())
        });
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_gather_scatter,
    bench_sp_matvec,
    bench_backward
);
criterion_main!(benches);
