//! Benchmarks one explanation per method on a fixed Tree-Cycles instance —
//! the per-instance latency comparison behind Table V.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use revelio_core::Objective;
use revelio_datasets::tree_cycles;
use revelio_eval::{make_method, sample_instances, Effort, SamplingConfig};
use revelio_gnn::{Gnn, GnnConfig, GnnKind, Task};

fn bench_explainers(c: &mut Criterion) {
    let dataset = revelio_datasets::Dataset::Node(tree_cycles(0));
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gcn,
        Task::NodeClassification,
        10,
        2,
        0,
    ));
    let instances = sample_instances(
        &dataset,
        &model,
        &SamplingConfig {
            count: 1,
            seed: 7,
            ..Default::default()
        },
    );
    let instance = &instances[0].instance;

    let mut group = c.benchmark_group("explainers_table5");
    group.sample_size(10);
    for method in [
        "GradCAM",
        "DeepLIFT",
        "GNNExplainer",
        "PGMExplainer",
        "SubgraphX",
        "GNN-LRP",
        "FlowX",
        "REVELIO",
    ] {
        group.bench_function(method, |bench| {
            let explainer = make_method(method, Objective::Factual, Effort::Quick, 0);
            bench.iter(|| black_box(explainer.explain(&model, instance)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_explainers);
criterion_main!(benches);
