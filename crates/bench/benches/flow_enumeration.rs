//! Benchmarks message-flow enumeration and incidence-index construction as
//! the computation graph grows (the substrate cost behind Table II).

#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use revelio_graph::{count_flows, FlowIndex, Graph, MpGraph, Target};

fn wheel(spokes: usize) -> MpGraph {
    let mut b = Graph::builder(spokes + 1, 1);
    for i in 0..spokes {
        b.undirected_edge(0, 1 + i);
        b.undirected_edge(1 + i, 1 + (i + 1) % spokes);
    }
    MpGraph::new(&b.build())
}

fn bench_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_flows");
    for &spokes in &[8usize, 16, 32] {
        let mp = wheel(spokes);
        group.bench_with_input(BenchmarkId::from_parameter(spokes), &spokes, |bench, _| {
            bench.iter(|| black_box(count_flows(&mp, 3, Target::Node(0))));
        });
    }
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_index_build");
    for &spokes in &[8usize, 16, 32] {
        let mp = wheel(spokes);
        let flows = count_flows(&mp, 3, Target::Node(0));
        group.throughput(criterion::Throughput::Elements(flows));
        group.bench_with_input(BenchmarkId::from_parameter(spokes), &spokes, |bench, _| {
            bench
                .iter(|| black_box(FlowIndex::build(&mp, 3, Target::Node(0), 10_000_000).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_counting, bench_enumeration);
criterion_main!(benches);
