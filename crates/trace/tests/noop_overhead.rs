//! The disabled-collector path is what every untraced request pays, so it
//! must stay effectively free. The bound below is deliberately generous
//! (orders of magnitude above the expected cost) — it exists to catch a
//! structural regression such as an allocation or lock sneaking onto the
//! noop path, not to benchmark it precisely.

use std::time::{Duration, Instant};

use revelio_trace::{EventKind, Phase, TraceHandle};

#[test]
fn noop_events_and_spans_cost_nanoseconds() {
    let tr = TraceHandle::noop();
    const N: u32 = 1_000_000;
    let mut runs: Vec<Duration> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            for i in 0..N {
                tr.event(EventKind::Epoch {
                    index: i,
                    loss: 0.0,
                    grad_norm: 0.0,
                });
                let _span = tr.span(Phase::Optimize);
            }
            t0.elapsed()
        })
        .collect();
    runs.sort();
    let median = runs[1];
    // 2M noop calls; the expected cost is a branch each (single-digit
    // milliseconds total). Even a heavily loaded CI box stays far below
    // two seconds unless the noop path gained real work.
    assert!(
        median < Duration::from_secs(2),
        "noop collector path took {median:?} for {} calls",
        2 * N
    );
}
