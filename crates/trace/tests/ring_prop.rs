//! Property tests for the ring-buffer journal: drop-oldest order, exact
//! drop accounting, and non-blocking writes under concurrent writers.

use std::sync::Arc;

use proptest::prelude::*;
use revelio_trace::{Collector, Event, EventKind, RingCollector, TraceId};

fn epoch_event(index: u32) -> Event {
    Event {
        trace: TraceId(1),
        at_ns: index as u64,
        kind: EventKind::Epoch {
            index,
            loss: 0.0,
            grad_norm: 0.0,
        },
    }
}

fn epoch_index(e: &Event) -> u32 {
    match e.kind {
        EventKind::Epoch { index, .. } => index,
        _ => panic!("unexpected event kind in ring test"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A serial writer: the ring keeps exactly the newest
    /// `min(total, capacity)` events in record order, and the drop counter
    /// is exactly `max(0, total - capacity)`.
    #[test]
    fn serial_drop_oldest_is_exact(capacity in 1usize..64, total in 0usize..256) {
        let ring = RingCollector::new(capacity);
        for i in 0..total {
            ring.record(epoch_event(i as u32));
        }
        prop_assert_eq!(ring.total(), total as u64);
        prop_assert_eq!(ring.dropped(), total.saturating_sub(capacity) as u64);
        let trace = ring.drain(TraceId(1));
        prop_assert_eq!(trace.dropped, total.saturating_sub(capacity) as u64);
        let kept: Vec<u32> = trace.events.iter().map(epoch_index).collect();
        let expected: Vec<u32> =
            (total.saturating_sub(capacity)..total).map(|i| i as u32).collect();
        prop_assert_eq!(kept, expected);
    }

    /// Concurrent writers: every write completes (never blocks on a
    /// reader), the claim counter accounts for every event exactly once,
    /// and after the writers quiesce the drop counter is exact.
    #[test]
    fn concurrent_writers_account_exactly(
        capacity in 1usize..32,
        writers in 2usize..5,
        per_writer in 1usize..64,
    ) {
        let ring = Arc::new(RingCollector::new(capacity));
        std::thread::scope(|scope| {
            for w in 0..writers {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..per_writer {
                        ring.record(epoch_event((w * per_writer + i) as u32));
                        // Interleave with drains to prove writers make
                        // progress while a reader walks the slots.
                        if i % 8 == 0 {
                            let _ = ring.drain(TraceId(0));
                        }
                    }
                });
            }
        });
        let total = (writers * per_writer) as u64;
        prop_assert_eq!(ring.total(), total);
        prop_assert_eq!(ring.dropped(), total.saturating_sub(capacity as u64));
        let trace = ring.drain(TraceId(0));
        prop_assert_eq!(trace.events.len(), (total as usize).min(capacity));
        prop_assert_eq!(trace.dropped, total.saturating_sub(capacity as u64));
        // Record order is preserved in the drained journal even though the
        // interleaving across writers is arbitrary: drain sorts by claim
        // sequence, so timestamps-by-claim are non-decreasing per writer.
        let kept: Vec<u32> = trace.events.iter().map(epoch_index).collect();
        for w in 0..writers {
            let lo = (w * per_writer) as u32;
            let hi = lo + per_writer as u32;
            let mine: Vec<u32> =
                kept.iter().copied().filter(|&i| i >= lo && i < hi).collect();
            let mut sorted = mine.clone();
            sorted.sort_unstable();
            prop_assert_eq!(mine, sorted);
        }
    }
}
