//! With sampling off (`--trace-sample-rate 0`, the default), every request
//! pays one sampler decision plus the noop collector path. That combined
//! cost must stay inside the same generous budget the bare noop path is
//! held to (see `noop_overhead.rs`): the bound catches a structural
//! regression — an atomic RMW, allocation, or lock sneaking onto the
//! sampling-off path — not a precise benchmark.

use std::time::{Duration, Instant};

use revelio_trace::{EventKind, Phase, Sampler, TraceHandle};

#[test]
fn sampling_off_stays_within_the_noop_budget() {
    let sampler = Sampler::new(0.0, 0x5eed);
    let tr = TraceHandle::noop();
    const N: u32 = 1_000_000;
    let mut sampled = 0u64;
    let mut runs: Vec<Duration> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            for i in 0..N {
                if sampler.sample() {
                    sampled += 1;
                }
                tr.event(EventKind::Epoch {
                    index: i,
                    loss: 0.0,
                    grad_norm: 0.0,
                });
                let _span = tr.span(Phase::Optimize);
            }
            t0.elapsed()
        })
        .collect();
    assert_eq!(sampled, 0, "rate 0 must never sample");
    runs.sort();
    let median = runs[1];
    // Same budget as the PR 5 noop test: 2M noop trace calls + 1M sampler
    // decisions should cost single-digit milliseconds; two seconds means
    // the off path gained real work.
    assert!(
        median < Duration::from_secs(2),
        "sampling-off path took {median:?} for {} calls",
        2 * N
    );
}
