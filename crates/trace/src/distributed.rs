//! Cross-process tracing: propagated context, head-based sampling, and
//! assembled (multi-lane) traces with a Chrome trace-event exporter.
//!
//! A single process records into a [`crate::RingCollector`]; a *fleet*
//! needs three more pieces, all here:
//!
//! * [`TraceContext`] — the fields that cross the wire with a request: a
//!   128-bit trace id, the parent span id, and the head-based sampling
//!   decision. The originator (gateway or client) makes the decision
//!   once; every downstream hop honours it.
//! * [`Sampler`] — the head-based coin flip. Deliberately branch-cheap
//!   when the rate is `0.0` so an untraced fleet pays (almost) nothing.
//! * [`AssembledTrace`] — a cross-process trace stitched from the
//!   gateway's own spans plus backend fragments, organised into per-shard
//!   *lanes*. Renders as a latency tree ([`AssembledTrace::render_tree`])
//!   or as Chrome trace-event JSON
//!   ([`AssembledTrace::chrome_trace_json`]) loadable in
//!   `chrome://tracing` / Perfetto, where each lane becomes a process.
//!
//! Timestamps inside an assembled trace are microseconds relative to the
//! *assembler's* clock (the gateway anchors each backend fragment at the
//! instant it forwarded the request), so lanes from machines with skewed
//! clocks still line up.

use crate::{EventKind, Trace};
use revelio_check::sync::atomic::{AtomicU64, Ordering};

/// The trace fields that travel with a request across process boundaries.
///
/// The 128-bit id is split into two `u64` halves for the wire codec
/// (`trace_hi`/`trace_lo`); `trace_lo` doubles as the key under which the
/// backend journals its fragment, so a fragment can be fetched back by
/// global id alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// High 64 bits of the 128-bit trace id.
    pub trace_hi: u64,
    /// Low 64 bits of the 128-bit trace id (also the backend journal key).
    pub trace_lo: u64,
    /// Id of the span this request parents under (the originator's
    /// routing span).
    pub parent_span: u64,
    /// The head-based sampling decision. `false` means "propagate the id
    /// but record nothing" — downstream hops must not re-flip the coin.
    pub sampled: bool,
}

/// SplitMix64 finaliser: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TraceContext {
    /// Generates a fresh sampled context from a process seed and a
    /// per-process counter (two decorrelated SplitMix64 streams, so ids
    /// from different processes collide with negligible probability).
    pub fn generate(seed: u64, counter: u64) -> TraceContext {
        let hi = splitmix64(seed ^ splitmix64(counter));
        let lo = splitmix64(hi ^ counter.wrapping_add(0x6a09_e667_f3bc_c909));
        TraceContext {
            trace_hi: hi,
            // `trace_lo` keys the backend's journal; zero is reserved as
            // the untraced id, so nudge it off zero.
            trace_lo: lo.max(1),
            parent_span: 0,
            sampled: true,
        }
    }

    /// The canonical 32-hex-digit rendering of the 128-bit id.
    pub fn hex_id(&self) -> String {
        format!("{:016x}{:016x}", self.trace_hi, self.trace_lo)
    }
}

/// Renders a 128-bit trace id (two halves) as 32 hex digits.
pub fn hex_trace_id(hi: u64, lo: u64) -> String {
    format!("{hi:016x}{lo:016x}")
}

/// Head-based sampler: decides *once*, at the first hop, whether a
/// request is traced.
///
/// The decision is a deterministic hash of (seed, request counter)
/// compared against `rate * u64::MAX`, so a fixed seed yields a
/// reproducible sampled subset — tests and benchmarks rely on that.
/// `rate <= 0` never samples and short-circuits before touching the
/// counter: the off path is one field load and one branch, which is what
/// keeps the measured sampling-off overhead inside the noop budget.
pub struct Sampler {
    /// Sample when `splitmix64(seed ^ n) < threshold`.
    threshold: u64,
    seed: u64,
    counter: AtomicU64,
}

impl Sampler {
    /// A sampler firing at `rate` (clamped to `[0, 1]`; NaN means off).
    pub fn new(rate: f64, seed: u64) -> Sampler {
        let threshold = if rate.is_nan() || rate <= 0.0 {
            // NaN or <= 0: never sample.
            0
        } else if rate >= 1.0 {
            u64::MAX
        } else {
            // `rate * 2^64`, computed in f64 then saturated.
            let scaled = rate * (u64::MAX as f64);
            if scaled >= u64::MAX as f64 {
                u64::MAX
            } else {
                scaled as u64
            }
        };
        Sampler {
            threshold,
            seed,
            counter: AtomicU64::new(0),
        }
    }

    /// Whether this sampler can ever fire.
    pub fn enabled(&self) -> bool {
        self.threshold != 0
    }

    /// One head decision. Cheap when off (no atomic traffic at all).
    pub fn sample(&self) -> bool {
        if self.threshold == 0 {
            return false;
        }
        if self.threshold == u64::MAX {
            self.counter.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.seed ^ n) < self.threshold
    }

    /// Decisions made so far (only counted while enabled).
    pub fn decisions(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

/// One slice of an [`AssembledTrace`]: a named interval on one lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembledSpan {
    /// Index into [`AssembledTrace::lanes`].
    pub lane: u32,
    /// Human-readable slice name (`"route"`, `"forward shard-1"`,
    /// `"optimize"`, ...).
    pub name: String,
    /// Start, microseconds from the assembled trace's origin.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// A cross-process trace: per-shard lanes of named, aligned spans.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AssembledTrace {
    /// High half of the global 128-bit trace id.
    pub trace_hi: u64,
    /// Low half of the global 128-bit trace id.
    pub trace_lo: u64,
    /// Lane names, e.g. `["gateway", "shard-2 (127.0.0.1:7152)"]`. Lane 0
    /// is the assembling process itself.
    pub lanes: Vec<String>,
    /// All spans across all lanes (not necessarily sorted).
    pub spans: Vec<AssembledSpan>,
    /// Events lost to ring overwriting across the stitched fragments.
    pub dropped: u64,
}

impl AssembledTrace {
    /// The canonical 32-hex-digit id.
    pub fn hex_id(&self) -> String {
        hex_trace_id(self.trace_hi, self.trace_lo)
    }

    /// Builds a single-lane assembled trace from one process-local
    /// [`Trace`] fragment: every completed span (`SpanEnd`) becomes a
    /// slice whose start is reconstructed as `at_ns - dur_ns`, shifted by
    /// `anchor_us` onto the assembler's clock.
    pub fn from_fragment(hi: u64, lo: u64, lane: &str, anchor_us: u64, frag: &Trace) -> Self {
        let mut out = AssembledTrace {
            trace_hi: hi,
            trace_lo: lo,
            lanes: vec![lane.to_owned()],
            spans: Vec::new(),
            dropped: 0,
        };
        out.push_fragment(0, anchor_us, frag);
        out
    }

    /// Appends one fragment's completed spans onto an existing lane.
    pub fn push_fragment(&mut self, lane: u32, anchor_us: u64, frag: &Trace) {
        for e in &frag.events {
            if let EventKind::SpanEnd { phase, dur_ns } = e.kind {
                let start_ns = e.at_ns.saturating_sub(dur_ns);
                self.spans.push(AssembledSpan {
                    lane,
                    name: phase.name().to_owned(),
                    start_us: anchor_us + start_ns / 1_000,
                    dur_us: dur_ns / 1_000,
                });
            }
        }
        self.dropped += frag.dropped;
    }

    /// Pretty-prints the trace as a per-lane tree with per-hop latencies.
    /// Nesting follows interval containment within a lane.
    pub fn render_tree(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {} · {} lane(s), {} span(s){}",
            self.hex_id(),
            self.lanes.len(),
            self.spans.len(),
            if self.dropped > 0 {
                format!(", {} event(s) dropped", self.dropped)
            } else {
                String::new()
            }
        );
        for (li, lane) in self.lanes.iter().enumerate() {
            let mut spans: Vec<&AssembledSpan> = self
                .spans
                .iter()
                .filter(|s| s.lane as usize == li)
                .collect();
            spans.sort_by_key(|s| (s.start_us, std::cmp::Reverse(s.dur_us)));
            let _ = writeln!(out, "{lane}");
            // Containment stack: a span nests under the nearest earlier
            // span (same lane) whose interval covers it.
            let mut stack: Vec<(u64, u64)> = Vec::new();
            for s in spans {
                let end = s.start_us + s.dur_us;
                while let Some(&(_, parent_end)) = stack.last() {
                    if s.start_us >= parent_end {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                let indent = "  ".repeat(stack.len() + 1);
                let _ = writeln!(
                    out,
                    "{indent}{:<24} {:>8} µs  @ +{} µs",
                    s.name, s.dur_us, s.start_us
                );
                stack.push((s.start_us, end));
            }
        }
        out
    }

    /// Renders the trace in the Chrome trace-event JSON format (an object
    /// with a `traceEvents` array), loadable in `chrome://tracing` and
    /// Perfetto. Each lane becomes a process (`pid` = lane index, named
    /// via a `process_name` metadata event); spans are complete (`"X"`)
    /// slices with microsecond `ts`/`dur`, tagged with the hex trace id
    /// in `args.trace`.
    pub fn chrome_trace_json(&self) -> String {
        use std::fmt::Write as _;
        let id = self.hex_id();
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for (li, lane) in self.lanes.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{li},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":{}}}}}",
                json_string(lane)
            );
        }
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":0,\"name\":{},\"ts\":{},\"dur\":{},\
                 \"args\":{{\"trace\":\"{id}\"}}}}",
                s.lane,
                json_string(&s.name),
                s.start_us,
                s.dur_us
            );
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Checks that `s` is one complete, well-formed JSON value.
///
/// A minimal recursive-descent validator (objects, arrays, strings,
/// numbers, literals) used by the exporter's tests and by integration
/// tests as the "round-trips through a parser" check without pulling in a
/// JSON dependency.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    parse_value(b, &mut i, 0)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at offset {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize, depth: u32) -> Result<(), String> {
    if depth > 128 {
        return Err("nesting too deep".to_owned());
    }
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                parse_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at offset {i}"));
                }
                *i += 1;
                skip_ws(b, i);
                parse_value(b, i, depth + 1)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                parse_value(b, i, depth + 1)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {i}")),
                }
            }
        }
        Some(b'"') => parse_string(b, i),
        Some(b't') => parse_lit(b, i, "true"),
        Some(b'f') => parse_lit(b, i, "false"),
        Some(b'n') => parse_lit(b, i, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, i),
        _ => Err(format!("expected a value at offset {i}")),
    }
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {i}"))
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected '\"' at offset {i}"));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        if b.len() < *i + 5 || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at offset {i}"));
                        }
                        *i += 5;
                    }
                    _ => return Err(format!("bad escape at offset {i}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at offset {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let mut digits = 0;
    while b.get(*i).is_some_and(u8::is_ascii_digit) {
        *i += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at offset {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !b.get(*i).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad fraction at offset {i}"));
        }
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !b.get(*i).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad exponent at offset {i}"));
        }
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{Collector, Event, Phase, TraceId};

    #[test]
    fn generated_contexts_are_distinct_and_sampled() {
        let a = TraceContext::generate(7, 0);
        let b = TraceContext::generate(7, 1);
        let c = TraceContext::generate(8, 0);
        assert!(a.sampled && b.sampled && c.sampled);
        assert_ne!((a.trace_hi, a.trace_lo), (b.trace_hi, b.trace_lo));
        assert_ne!((a.trace_hi, a.trace_lo), (c.trace_hi, c.trace_lo));
        assert_ne!(a.trace_lo, 0, "trace_lo 0 is reserved for untraced");
        assert_eq!(a.hex_id().len(), 32);
    }

    #[test]
    fn sampler_edges_are_deterministic() {
        let off = Sampler::new(0.0, 1);
        let on = Sampler::new(1.0, 1);
        for _ in 0..100 {
            assert!(!off.sample());
            assert!(on.sample());
        }
        assert_eq!(off.decisions(), 0, "off path must not touch the counter");
        assert_eq!(on.decisions(), 100);
        assert!(!Sampler::new(f64::NAN, 1).sample());
        assert!(!Sampler::new(-0.5, 1).sample());
        assert!(Sampler::new(2.0, 1).sample());
    }

    #[test]
    fn sampler_rate_is_roughly_honoured_and_reproducible() {
        let s1 = Sampler::new(0.25, 42);
        let s2 = Sampler::new(0.25, 42);
        let hits1: Vec<bool> = (0..4000).map(|_| s1.sample()).collect();
        let hits2: Vec<bool> = (0..4000).map(|_| s2.sample()).collect();
        assert_eq!(hits1, hits2, "same seed must give the same subset");
        let n = hits1.iter().filter(|h| **h).count();
        assert!((600..1400).contains(&n), "0.25 of 4000 ≈ 1000, got {n}");
    }

    fn fragment() -> Trace {
        // A hand-built fragment: extraction 100µs at t=50µs, optimize
        // 2000µs at t=200µs.
        let span = |phase, at_us: u64, dur_us: u64| Event {
            trace: TraceId(9),
            at_ns: at_us * 1_000,
            kind: EventKind::SpanEnd {
                phase,
                dur_ns: dur_us * 1_000,
            },
        };
        Trace {
            id: TraceId(9),
            events: vec![
                span(Phase::Extraction, 150, 100),
                span(Phase::Optimize, 2200, 2000),
            ],
            dropped: 1,
        }
    }

    #[test]
    fn fragment_spans_are_anchored_onto_the_assembler_clock() {
        let t = AssembledTrace::from_fragment(1, 2, "shard-0", 1000, &fragment());
        assert_eq!(t.lanes, vec!["shard-0".to_owned()]);
        assert_eq!(t.dropped, 1);
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].name, "extraction");
        assert_eq!(t.spans[0].start_us, 1050); // anchor + (150 - 100)
        assert_eq!(t.spans[0].dur_us, 100);
        assert_eq!(t.spans[1].start_us, 1200);
    }

    #[test]
    fn chrome_export_is_valid_json_with_lane_processes() {
        let mut t = AssembledTrace {
            trace_hi: 0xabcd,
            trace_lo: 0x1234,
            lanes: vec!["gateway".to_owned(), "shard \"1\"\n".to_owned()],
            spans: vec![AssembledSpan {
                lane: 0,
                name: "route".to_owned(),
                start_us: 0,
                dur_us: 2500,
            }],
            dropped: 0,
        };
        t.push_fragment(1, 40, &fragment());
        let json = t.chrome_trace_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains(&t.hex_id()));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("shard \\\"1\\\"\\n"));
    }

    #[test]
    fn render_tree_nests_by_containment() {
        let t = AssembledTrace {
            trace_hi: 0,
            trace_lo: 5,
            lanes: vec!["gateway".to_owned()],
            spans: vec![
                AssembledSpan {
                    lane: 0,
                    name: "route".to_owned(),
                    start_us: 0,
                    dur_us: 1000,
                },
                AssembledSpan {
                    lane: 0,
                    name: "forward shard-1".to_owned(),
                    start_us: 100,
                    dur_us: 800,
                },
            ],
            dropped: 0,
        };
        let tree = t.render_tree();
        let route_line = tree.lines().find(|l| l.contains("route")).unwrap();
        let fwd_line = tree
            .lines()
            .find(|l| l.contains("forward shard-1"))
            .unwrap();
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(fwd_line) > indent(route_line));
        assert!(tree.contains("1000"));
    }

    #[test]
    fn validate_json_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e+3",
            "\"a\\u00e9b\"",
            "{\"a\":[1,2,{\"b\":false}]}",
            " { \"x\" : \"y\" } ",
        ] {
            assert!(validate_json(good).is_ok(), "rejected {good:?}");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "tru",
            "\"unterminated",
            "01x",
            "{}{}",
            "\"bad\\q\"",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn sampler_off_does_not_inhibit_noop_collectors() {
        // The combined "tracing compiled in but off" path: sampler off +
        // noop handle. Nothing may be recorded.
        let s = Sampler::new(0.0, 3);
        let h = crate::TraceHandle::noop();
        assert!(!s.sample());
        assert!(!h.enabled());
        h.event(EventKind::Note("ignored"));
        let _ = NoopSink.enabled();
    }

    struct NoopSink;
    impl Collector for NoopSink {
        fn enabled(&self) -> bool {
            false
        }
        fn record(&self, _e: Event) {}
    }
}
