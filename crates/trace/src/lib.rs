//! `revelio-trace` — structured tracing for the explanation stack.
//!
//! The serving runtime's metrics (queue depth, latency histograms) say how
//! long a job took; this crate says *where the time went* and *how the
//! optimisation converged*, per request. The vocabulary is deliberately
//! small:
//!
//! * A [`Phase`] names one stage of serving an explanation (subgraph
//!   extraction, flow-index build, the optimisation epoch loop, score
//!   readout).
//! * An [`Event`] is one timestamped observation: a span boundary, one
//!   optimisation epoch with its loss and gradient norm, a cache probe, a
//!   deadline trip.
//! * A [`Collector`] receives events. [`NoopCollector`] is the zero-cost
//!   default (its `enabled()` gate lets emitters skip even building the
//!   event); [`RingCollector`] journals into a bounded drop-oldest ring;
//!   [`Tee`] fans out to two collectors (e.g. a per-request ring plus the
//!   always-on metrics bridge).
//! * A [`TraceHandle`] is what instrumented code holds: a trace id, a
//!   collector, and the monotonic epoch all timestamps are relative to.
//! * A [`Trace`] is the finished, drained journal: plain data the runtime
//!   can store, ship over a wire, or assert on in tests.
//!
//! The crate is std-only and allocation-free on the emit path (events are
//! `Copy`; the ring pre-allocates its slots).
//!
//! # Ring-buffer semantics
//!
//! The workspace forbids `unsafe`, so the ring is not a classic
//! `UnsafeCell` seqlock; instead each writer claims a slot index with one
//! `fetch_add` on an atomic sequence counter and stores the event into
//! `slots[seq % capacity]` behind a per-slot mutex (newest sequence wins,
//! so a stalled writer can never clobber an event that lapped it). Writers
//! therefore never wait for readers and never wait for writers working on
//! *other* slots; two writers only contend when they land on the same
//! slot, which requires the ring to have wrapped a full lap between them.
//! The oldest events are overwritten first (drop-oldest), and the number
//! of dropped events is exact by construction:
//! `max(0, total_claimed - capacity)`.
//!
//! # Concurrency checking
//!
//! All synchronisation goes through the `revelio_check::sync` facade: in
//! normal builds those names *are* the `std` types (zero overhead); built
//! with `revelio-check/check`, the ring becomes deterministically model
//! checkable (see `crates/check` and DESIGN §11).

#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod distributed;

pub use distributed::{
    hex_trace_id, validate_json, AssembledSpan, AssembledTrace, Sampler, TraceContext,
};

use revelio_check::sync::atomic::{AtomicU64, Ordering};
use revelio_check::sync::{Arc, Mutex};
use std::sync::OnceLock;
use std::time::Instant;

/// Identifies one traced request end to end (the runtime uses the job's
/// submission id, so a trace can be joined back to its job and seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace-{}", self.0)
    }
}

/// One stage of serving an explanation. The taxonomy is fixed so phase
/// timings aggregate cleanly into named metrics histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Model materialisation + instance forward pass (the `L`-hop
    /// computation subgraph is assumed already extracted by the caller;
    /// this phase covers turning it into a scored instance).
    Extraction,
    /// Flow enumeration / `FlowIndex` construction (or its cache fetch).
    FlowIndex,
    /// The mask-optimisation epoch loop.
    Optimize,
    /// Score readout: scattering learned mask values into flow / layer-edge
    /// / edge scores.
    Readout,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 4] = [
        Phase::Extraction,
        Phase::FlowIndex,
        Phase::Optimize,
        Phase::Readout,
    ];

    /// Stable lowercase name (used for metric names and wire rendering).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Extraction => "extraction",
            Phase::FlowIndex => "flow_index",
            Phase::Optimize => "optimize",
            Phase::Readout => "readout",
        }
    }

    /// Stable wire tag.
    pub fn to_u8(self) -> u8 {
        match self {
            Phase::Extraction => 0,
            Phase::FlowIndex => 1,
            Phase::Optimize => 2,
            Phase::Readout => 3,
        }
    }

    /// Inverse of [`Phase::to_u8`]; `None` for unknown tags.
    pub fn from_u8(v: u8) -> Option<Phase> {
        Some(match v {
            0 => Phase::Extraction,
            1 => Phase::FlowIndex,
            2 => Phase::Optimize,
            3 => Phase::Readout,
            _ => return None,
        })
    }
}

/// What one [`Event`] observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A phase began.
    SpanStart {
        /// The phase being timed.
        phase: Phase,
    },
    /// A phase ended; `dur_ns` is its wall-clock duration.
    SpanEnd {
        /// The phase that finished.
        phase: Phase,
        /// Duration of the span in nanoseconds.
        dur_ns: u64,
    },
    /// One optimisation epoch completed (emitted only by verbose
    /// collectors: computing the loss value and gradient norm costs real
    /// work on otherwise-unbounded runs).
    Epoch {
        /// Zero-based epoch index.
        index: u32,
        /// Loss *before* this epoch's parameter step.
        loss: f32,
        /// L2 norm of the flow-mask gradient after backward.
        grad_norm: f32,
    },
    /// An artifact-cache probe (the flow-index fetch), annotated hit/miss.
    CacheProbe {
        /// Whether the artifact was already resident.
        hit: bool,
    },
    /// A deadline poll tripped: the optimisation loop stopped before the
    /// planned epoch count.
    DeadlineHit {
        /// The epoch at which the poll fired (== epochs actually run).
        epoch: u32,
    },
    /// A free-form static annotation (e.g. `"flow-index-reused"`).
    Note(&'static str),
}

/// One timestamped observation inside a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// The trace this event belongs to.
    pub trace: TraceId,
    /// Nanoseconds since the owning [`TraceHandle`]'s epoch (monotonic).
    pub at_ns: u64,
    /// What was observed.
    pub kind: EventKind,
}

/// Receives events from instrumented code.
///
/// Implementations must be cheap and non-blocking: emitters sit inside the
/// optimisation hot loop. The two gates let emitters skip work entirely:
/// when [`Collector::enabled`] is `false` nothing is recorded, and
/// per-epoch loss/grad-norm computation is gated behind
/// [`Collector::verbose`] so the always-on metrics bridge never forces
/// extra tensor reads.
pub trait Collector: Send + Sync {
    /// Whether events should be recorded at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Whether per-epoch diagnostics (loss value, gradient norm) are worth
    /// computing for this collector.
    fn verbose(&self) -> bool {
        false
    }

    /// Records one event. Must not block on readers.
    fn record(&self, event: Event);
}

/// The zero-cost default collector: `enabled()` is `false`, so emitters
/// skip event construction entirely and `record` is unreachable in
/// practice (it is a no-op regardless).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopCollector;

impl Collector for NoopCollector {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// A bounded drop-oldest event journal.
///
/// Writers claim a sequence number with one atomic `fetch_add` and store
/// into `slots[seq % capacity]`; the oldest events are overwritten first.
/// [`RingCollector::dropped`] is exact: `max(0, total - capacity)`. See the
/// crate docs for why the slots are mutexes rather than `UnsafeCell`s
/// (the workspace forbids `unsafe`), and why that still never makes a
/// writer wait on a reader.
pub struct RingCollector {
    slots: Vec<Mutex<Option<(u64, Event)>>>,
    next: AtomicU64,
}

impl RingCollector {
    /// A ring holding at most `capacity` events (rounded up to 1).
    pub fn new(capacity: usize) -> RingCollector {
        let capacity = capacity.max(1);
        RingCollector {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded since construction (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Events lost to overwriting: exactly `max(0, total - capacity)`.
    pub fn dropped(&self) -> u64 {
        self.total().saturating_sub(self.slots.len() as u64)
    }

    /// Snapshot of the resident events in record order (oldest first),
    /// with the drop counter, as a finished [`Trace`].
    ///
    /// Taken while writers are still active the snapshot is a consistent
    /// *sample* (each slot is read atomically under its lock; the set may
    /// interleave laps); taken after writers quiesce — the runtime drains
    /// only after the job completes — it is the exact journal tail.
    pub fn drain(&self, id: TraceId) -> Trace {
        let mut seen: Vec<(u64, Event)> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let got = match slot.lock() {
                Ok(g) => *g,
                Err(poisoned) => *poisoned.into_inner(),
            };
            if let Some(entry) = got {
                seen.push(entry);
            }
        }
        seen.sort_unstable_by_key(|(seq, _)| *seq);
        Trace {
            id,
            events: seen.into_iter().map(|(_, e)| e).collect(),
            dropped: self.dropped(),
        }
    }
}

impl Collector for RingCollector {
    fn verbose(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = match slot.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Newest sequence wins: a writer that claimed `seq` and then
        // stalled must not clobber an event from a later lap — that would
        // drop the *newest* event while `dropped()` claims drop-oldest.
        if guard.is_none_or(|(stored, _)| stored < seq) {
            *guard = Some((seq, event));
        }
    }
}

/// Fans events out to two collectors; enabled/verbose when either side is.
/// Each event is forwarded only to the sides that want it.
pub struct Tee(pub Arc<dyn Collector>, pub Arc<dyn Collector>);

impl Collector for Tee {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn verbose(&self) -> bool {
        self.0.verbose() || self.1.verbose()
    }

    fn record(&self, event: Event) {
        if self.0.enabled() {
            self.0.record(event);
        }
        if self.1.enabled() {
            self.1.record(event);
        }
    }
}

/// What instrumented code holds: a trace id, a collector, and the
/// monotonic instant all of this trace's timestamps are measured from.
///
/// Cloning shares the collector (the runtime clones the handle into
/// `ExplainControl` while keeping its own reference for the final drain).
#[derive(Clone)]
pub struct TraceHandle {
    id: TraceId,
    collector: Arc<dyn Collector>,
    epoch: Instant,
}

impl TraceHandle {
    /// A handle emitting into `collector` under `id`; timestamps are
    /// relative to *now*.
    pub fn new(id: TraceId, collector: Arc<dyn Collector>) -> TraceHandle {
        TraceHandle {
            id,
            collector,
            epoch: Instant::now(),
        }
    }

    /// The shared do-nothing handle (its [`NoopCollector`] is a static
    /// singleton, so this is one `Arc` clone — no allocation).
    pub fn noop() -> TraceHandle {
        static NOOP: OnceLock<Arc<NoopCollector>> = OnceLock::new();
        let collector =
            Arc::clone(NOOP.get_or_init(|| Arc::new(NoopCollector))) as Arc<dyn Collector>;
        TraceHandle::new(TraceId(0), collector)
    }

    /// This trace's id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Whether emitting is worthwhile at all (gate event construction on
    /// this).
    pub fn enabled(&self) -> bool {
        self.collector.enabled()
    }

    /// Whether per-epoch diagnostics (loss, grad norm) should be computed.
    pub fn verbose(&self) -> bool {
        self.collector.enabled() && self.collector.verbose()
    }

    /// Emits one event (no-op when the collector is disabled).
    pub fn event(&self, kind: EventKind) {
        if self.collector.enabled() {
            self.collector.record(Event {
                trace: self.id,
                at_ns: u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
                kind,
            });
        }
    }

    /// Starts a phase span; the returned guard emits `SpanEnd` (with the
    /// measured duration) when dropped.
    pub fn span(&self, phase: Phase) -> Span<'_> {
        self.event(EventKind::SpanStart { phase });
        Span {
            handle: self,
            phase,
            start: Instant::now(),
        }
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("id", &self.id)
            .field("enabled", &self.enabled())
            .finish_non_exhaustive()
    }
}

/// RAII guard for one phase: emits `SpanEnd { dur_ns }` on drop.
pub struct Span<'a> {
    handle: &'a TraceHandle,
    phase: Phase,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.handle.event(EventKind::SpanEnd {
            phase: self.phase,
            dur_ns: u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        });
    }
}

/// A finished, drained trace: plain data, safe to store, clone, or ship.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The trace's id (== the runtime job id for served requests).
    pub id: TraceId,
    /// Resident events, oldest first.
    pub events: Vec<Event>,
    /// Events lost to ring overwriting (0 when the journal fit).
    pub dropped: u64,
}

impl Trace {
    /// Number of `Epoch` events in the journal.
    pub fn epoch_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Epoch { .. }))
            .count()
    }

    /// Loss values of the recorded epochs, in epoch order.
    pub fn losses(&self) -> Vec<f32> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Epoch { loss, .. } => Some(loss),
                _ => None,
            })
            .collect()
    }

    /// Total nanoseconds spent in `phase` (sum over its `SpanEnd` events).
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::SpanEnd { phase: p, dur_ns } if p == phase => Some(dur_ns),
                _ => None,
            })
            .sum()
    }

    /// Whether the journal holds a completed span for `phase`.
    pub fn has_span(&self, phase: Phase) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SpanEnd { phase: p, .. } if p == phase))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_handle(capacity: usize) -> (Arc<RingCollector>, TraceHandle) {
        let ring = Arc::new(RingCollector::new(capacity));
        let handle = TraceHandle::new(TraceId(7), Arc::clone(&ring) as Arc<dyn Collector>);
        (ring, handle)
    }

    #[test]
    fn noop_is_disabled_and_records_nothing() {
        let h = TraceHandle::noop();
        assert!(!h.enabled());
        assert!(!h.verbose());
        h.event(EventKind::Note("ignored"));
        drop(h.span(Phase::Optimize));
    }

    #[test]
    fn span_guard_emits_start_and_end() {
        let (ring, h) = ring_handle(16);
        {
            let _s = h.span(Phase::FlowIndex);
        }
        let trace = ring.drain(h.id());
        assert_eq!(trace.events.len(), 2);
        assert!(matches!(
            trace.events[0].kind,
            EventKind::SpanStart {
                phase: Phase::FlowIndex
            }
        ));
        assert!(trace.has_span(Phase::FlowIndex));
        assert!(!trace.has_span(Phase::Optimize));
        assert!(trace.events[1].at_ns >= trace.events[0].at_ns);
    }

    #[test]
    fn ring_drops_oldest_and_counts_exactly() {
        let (ring, h) = ring_handle(4);
        for i in 0..10u32 {
            h.event(EventKind::Epoch {
                index: i,
                loss: i as f32,
                grad_norm: 0.0,
            });
        }
        assert_eq!(ring.total(), 10);
        assert_eq!(ring.dropped(), 6);
        let trace = ring.drain(h.id());
        assert_eq!(trace.dropped, 6);
        // The four *newest* events survive, in order.
        let kept: Vec<u32> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Epoch { index, .. } => Some(index),
                _ => None,
            })
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn stalled_writer_cannot_clobber_a_newer_event() {
        // Regression: writer A claims seq 0 and stalls; writers lap the
        // ring and store seq 2 into the same slot; A finally stores.
        // Drop-oldest demands the slot keep seq 2. Simulated by rolling
        // the claim counter back to replay the stalled claim. The full
        // interleaving is model-checked in crates/check
        // tests/real_structures.rs (ring_journal_*).
        let (ring, h) = ring_handle(1);
        let event = |i: u32| EventKind::Epoch {
            index: i,
            loss: 0.0,
            grad_norm: 0.0,
        };
        for i in 0..3u32 {
            h.event(event(i));
        }
        ring.next.store(1, Ordering::Relaxed);
        h.event(event(99)); // replays claim seq=1: older than stored seq=2
        let trace = ring.drain(h.id());
        let kept: Vec<u32> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Epoch { index, .. } => Some(index),
                _ => None,
            })
            .collect();
        assert_eq!(
            kept,
            vec![2],
            "older stalled write must lose to the newer lap"
        );
    }

    #[test]
    fn trace_helpers_summarise_epochs_and_phases() {
        let (ring, h) = ring_handle(32);
        {
            let _s = h.span(Phase::Optimize);
            for i in 0..3u32 {
                h.event(EventKind::Epoch {
                    index: i,
                    loss: 1.0 / (i + 1) as f32,
                    grad_norm: 0.5,
                });
            }
        }
        h.event(EventKind::DeadlineHit { epoch: 3 });
        let trace = ring.drain(h.id());
        assert_eq!(trace.epoch_count(), 3);
        assert_eq!(trace.losses().len(), 3);
        assert!(trace.losses()[0] > trace.losses()[2]);
        assert!(trace.phase_ns(Phase::Optimize) > 0);
        assert_eq!(trace.phase_ns(Phase::Readout), 0);
    }

    #[test]
    fn tee_forwards_to_both_and_is_verbose_if_either_is() {
        let ring_a = Arc::new(RingCollector::new(8));
        let ring_b = Arc::new(RingCollector::new(8));
        let tee = Tee(
            Arc::clone(&ring_a) as Arc<dyn Collector>,
            Arc::clone(&ring_b) as Arc<dyn Collector>,
        );
        assert!(tee.enabled());
        assert!(tee.verbose());
        let h = TraceHandle::new(TraceId(1), Arc::new(tee));
        h.event(EventKind::CacheProbe { hit: true });
        assert_eq!(ring_a.total(), 1);
        assert_eq!(ring_b.total(), 1);

        let quiet = Tee(
            Arc::new(NoopCollector) as Arc<dyn Collector>,
            Arc::new(NoopCollector) as Arc<dyn Collector>,
        );
        assert!(!quiet.enabled());
    }

    #[test]
    fn phase_tags_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_u8(p.to_u8()), Some(p));
            assert!(!p.name().is_empty());
        }
        assert_eq!(Phase::from_u8(200), None);
    }
}
