//! Cross-dataset invariants: every generated benchmark must be structurally
//! sound and match its Table III metadata.

use proptest::prelude::*;
use revelio_datasets::{by_name, Dataset, ALL_DATASETS};

fn check_node_dataset(d: &revelio_datasets::NodeDataset) {
    let g = &d.graph;
    let labels = g.node_labels().expect("node labels");
    assert_eq!(labels.len(), g.num_nodes());
    assert!(labels.iter().all(|&l| l < d.num_classes));
    // Edges are valid and have no self-loops.
    for &(s, t) in g.edges() {
        assert!((s as usize) < g.num_nodes());
        assert!((t as usize) < g.num_nodes());
        assert_ne!(s, t);
    }
    // Splits partition the node set.
    assert_eq!(d.split.len(), g.num_nodes());
    // Motif bookkeeping is internally consistent.
    if let (Some(nm), Some(me)) = (&d.node_motif, &d.motif_edges) {
        for (v, m) in nm.iter().enumerate() {
            if let Some(m) = m {
                assert!(*m < me.len(), "node {v} references missing motif {m}");
            }
        }
        for edges in me {
            for &e in edges {
                assert!(e < g.num_edges());
            }
        }
    }
}

fn check_graph_dataset(d: &revelio_datasets::GraphDataset) {
    assert_eq!(d.split.len(), d.graphs.len());
    for (i, g) in d.graphs.iter().enumerate() {
        let label = g
            .graph_label()
            .unwrap_or_else(|| panic!("graph {i} unlabeled"));
        assert!(label < d.num_classes);
        assert!(g.num_nodes() > 0);
        for &(s, t) in g.edges() {
            assert!((s as usize) < g.num_nodes());
            assert_ne!(s, t);
        }
    }
    if let Some(me) = &d.motif_edges {
        assert_eq!(me.len(), d.graphs.len());
        for (g, edges) in d.graphs.iter().zip(me) {
            for &e in edges {
                assert!(e < g.num_edges());
            }
        }
    }
}

#[test]
fn every_dataset_is_structurally_sound() {
    for name in ALL_DATASETS {
        // PubMed and BBBP are the largest; still fine to generate once.
        match by_name(name, 0) {
            Dataset::Node(d) => check_node_dataset(&d),
            Dataset::Graph(d) => check_graph_dataset(&d),
        }
    }
}

#[test]
fn table_iii_metadata_matches() {
    let expected: &[(&str, usize)] = &[
        ("Cora", 7),
        ("Citeseer", 6),
        ("PubMed", 3),
        ("BA-Shapes", 4),
        ("Tree-Cycles", 2),
        ("MUTAG", 2),
        ("BBBP", 2),
        ("BA-2motifs", 2),
    ];
    for &(name, classes) in expected {
        assert_eq!(by_name(name, 1).num_classes(), classes, "{name}");
        assert_eq!(by_name(name, 1).name(), name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The small synthetic generators hold their invariants for any seed.
    #[test]
    fn synthetic_generators_sound_for_any_seed(seed in 0u64..1000) {
        check_node_dataset(&revelio_datasets::ba_shapes(seed));
        check_node_dataset(&revelio_datasets::tree_cycles(seed));
    }

    #[test]
    fn mutag_sim_sound_for_any_seed(seed in 0u64..1000) {
        check_graph_dataset(&revelio_datasets::mutag_sim(seed));
    }
}
