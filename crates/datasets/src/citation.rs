//! Simulated analogues of the citation benchmarks (Cora, Citeseer, PubMed).
//!
//! The real datasets are not available offline, so each is replaced by a
//! degree-corrected planted-partition graph with class-conditional sparse
//! binary "bag-of-words" features, matched to Table III's node count, edge
//! count, feature dimensionality and class count (see `DESIGN.md` §3).
//! Homophily and feature-noise levels are tuned per dataset so a 3-layer GCN
//! lands near the paper's reported accuracy.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use revelio_graph::Graph;
use std::collections::HashSet;

use crate::split::node_split;
use crate::NodeDataset;

struct CitationSpec {
    name: &'static str,
    nodes: usize,
    /// Undirected edge count; the stored graph has twice as many directed
    /// edges, matching Table III.
    undirected_edges: usize,
    feat_dim: usize,
    classes: usize,
    /// Probability that an edge endpoint pair is sampled within one class.
    homophily: f64,
    /// Active feature words per node.
    words_per_node: usize,
    /// Probability that a word is drawn from the node's class topic
    /// (vs. uniformly at random).
    topic_fidelity: f64,
    /// Topic vocabulary size per class.
    topic_words: usize,
}

fn generate(spec: &CitationSpec, seed: u64) -> NodeDataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = spec.nodes;

    // Roughly balanced class assignment.
    let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..spec.classes)).collect();
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); spec.classes];
    for (v, &c) in labels.iter().enumerate() {
        by_class[c].push(v);
    }

    // Degree-corrected sampling: heavier nodes attract more edges
    // (approximate power law via inverse-uniform weights, capped).
    let weights: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-3..1.0);
            u.powf(-0.5).min(30.0)
        })
        .collect();
    let cum = cumulative(&weights);
    let cum_by_class: Vec<Vec<f64>> = by_class
        .iter()
        .map(|members| cumulative(&members.iter().map(|&v| weights[v]).collect::<Vec<_>>()))
        .collect();

    let mut b = Graph::builder(n, spec.feat_dim);
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut added = 0usize;
    while added < spec.undirected_edges {
        let u = sample_cum(&cum, &mut rng);
        let v = if rng.gen_bool(spec.homophily) {
            let c = labels[u];
            by_class[c][sample_cum(&cum_by_class[c], &mut rng)]
        } else {
            sample_cum(&cum, &mut rng)
        };
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            b.undirected_edge(u, v);
            added += 1;
        }
    }

    // Class topic vocabularies (may overlap across classes, like real
    // bags-of-words do).
    let topics: Vec<Vec<usize>> = (0..spec.classes)
        .map(|_| {
            let mut words = HashSet::new();
            while words.len() < spec.topic_words {
                words.insert(rng.gen_range(0..spec.feat_dim));
            }
            let mut words: Vec<usize> = words.into_iter().collect();
            // HashSet iteration order differs between instances; sort so the
            // generator is deterministic given its seed.
            words.sort_unstable();
            words
        })
        .collect();

    let mut features = vec![0.0f32; n * spec.feat_dim];
    for v in 0..n {
        let topic = &topics[labels[v]];
        for _ in 0..spec.words_per_node {
            let w = if rng.gen_bool(spec.topic_fidelity) {
                topic[rng.gen_range(0..topic.len())]
            } else {
                rng.gen_range(0..spec.feat_dim)
            };
            features[v * spec.feat_dim + w] = 1.0;
        }
    }
    b.all_features(features);
    b.node_labels(labels);

    NodeDataset {
        name: spec.name,
        graph: b.build(),
        num_classes: spec.classes,
        split: node_split(n, 0.6, 0.2, seed ^ 0xc17a),
        node_motif: None,
        motif_edges: None,
    }
}

fn cumulative(w: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    w.iter()
        .map(|x| {
            acc += x;
            acc
        })
        .collect()
}

/// Samples an index proportionally to the weight increments behind `cum`.
/// Total over its inputs: an empty table yields index 0 (callers always
/// pass non-empty weights, but nothing here depends on it).
fn sample_cum(cum: &[f64], rng: &mut SmallRng) -> usize {
    let Some(&total) = cum.last() else { return 0 };
    let t = rng.gen_range(0.0..total);
    cum.partition_point(|&c| c <= t).min(cum.len() - 1)
}

/// Simulated Cora: 2708 nodes, 10 556 directed edges, 1433 features, 7
/// classes.
pub fn cora_sim(seed: u64) -> NodeDataset {
    generate(
        &CitationSpec {
            name: "Cora",
            nodes: 2708,
            undirected_edges: 5278,
            feat_dim: 1433,
            classes: 7,
            homophily: 0.82,
            words_per_node: 18,
            topic_fidelity: 0.82,
            topic_words: 90,
        },
        seed,
    )
}

/// Simulated Citeseer: 3327 nodes, 9104 directed edges, 3703 features, 6
/// classes (noisier features and weaker homophily, mirroring its lower
/// accuracy in Table III).
pub fn citeseer_sim(seed: u64) -> NodeDataset {
    generate(
        &CitationSpec {
            name: "Citeseer",
            nodes: 3327,
            undirected_edges: 4552,
            feat_dim: 3703,
            classes: 6,
            homophily: 0.72,
            words_per_node: 14,
            topic_fidelity: 0.68,
            topic_words: 140,
        },
        seed,
    )
}

/// Simulated PubMed: 19 717 nodes, 88 648 directed edges, 500 features, 3
/// classes.
pub fn pubmed_sim(seed: u64) -> NodeDataset {
    generate(
        &CitationSpec {
            name: "PubMed",
            nodes: 19_717,
            undirected_edges: 44_324,
            feat_dim: 500,
            classes: 3,
            homophily: 0.80,
            words_per_node: 22,
            topic_fidelity: 0.80,
            topic_words: 60,
        },
        seed,
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn cora_matches_table_iii() {
        let d = cora_sim(0);
        assert_eq!(d.graph.num_nodes(), 2708);
        assert_eq!(d.graph.num_edges(), 10_556);
        assert_eq!(d.graph.feat_dim(), 1433);
        assert_eq!(d.num_classes, 7);
    }

    #[test]
    fn citeseer_matches_table_iii() {
        let d = citeseer_sim(0);
        assert_eq!(d.graph.num_nodes(), 3327);
        assert_eq!(d.graph.num_edges(), 9104);
        assert_eq!(d.graph.feat_dim(), 3703);
        assert_eq!(d.num_classes, 6);
    }

    #[test]
    fn homophily_is_realised() {
        let d = cora_sim(1);
        let labels = d.graph.node_labels().unwrap();
        let intra = d
            .graph
            .edges()
            .iter()
            .filter(|&&(u, v)| labels[u as usize] == labels[v as usize])
            .count();
        let frac = intra as f64 / d.graph.num_edges() as f64;
        assert!(frac > 0.7, "homophily too low: {frac}");
    }

    #[test]
    fn features_are_sparse_binary_and_class_informative() {
        let d = cora_sim(2);
        let f = d.graph.features();
        assert!(f.iter().all(|&x| x == 0.0 || x == 1.0));
        let nnz = f.iter().filter(|&&x| x != 0.0).count();
        let per_node = nnz as f64 / d.graph.num_nodes() as f64;
        assert!(per_node > 5.0 && per_node < 25.0, "nnz/node = {per_node}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = citeseer_sim(5);
        let b = citeseer_sim(5);
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert!(a.graph.features() == b.graph.features(), "features differ");
    }
}
