//! Simulated analogues of the molecular benchmarks (MUTAG, BBBP).
//!
//! The real datasets are not available offline; both are replaced by
//! molecule-like random graphs whose class signal is a small planted
//! substructure — exactly the property that makes the originals useful for
//! explainability evaluation (see `DESIGN.md` §3):
//!
//! * **MUTAG-sim**: ring-and-chain carbon skeletons over 7 atom types; the
//!   positive ("mutagenic") class contains a planted NO₂ group (a nitrogen
//!   bonded to two oxygens and a ring carbon).
//! * **BBBP-sim**: larger skeletons over 9 atom types; the positive class
//!   contains a planted six-ring of "aromatic" type-8 atoms.
//!
//! A small fraction of labels is flipped so model accuracies land near
//! Table III rather than saturating.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use revelio_graph::{Graph, GraphBuilder};

use crate::split::graph_split;
use crate::GraphDataset;

const CARBON: usize = 0;
const NITROGEN: usize = 1;
const OXYGEN: usize = 2;

struct MoleculeBuilder {
    builder: GraphBuilder,
    next_node: usize,
    edge_count: usize,
    types: Vec<usize>,
}

impl MoleculeBuilder {
    fn new(max_nodes: usize, feat_dim: usize) -> Self {
        MoleculeBuilder {
            builder: Graph::builder(max_nodes, feat_dim),
            next_node: 0,
            edge_count: 0,
            types: Vec::with_capacity(max_nodes),
        }
    }

    fn atom(&mut self, ty: usize) -> usize {
        let id = self.next_node;
        self.next_node += 1;
        self.types.push(ty);
        id
    }

    /// Adds an undirected bond, returning the two directed edge ids.
    fn bond(&mut self, u: usize, v: usize) -> (usize, usize) {
        self.builder.undirected_edge(u, v);
        let ids = (self.edge_count, self.edge_count + 1);
        self.edge_count += 2;
        ids
    }

    fn ring(&mut self, ty: usize, len: usize) -> (Vec<usize>, Vec<usize>) {
        let nodes: Vec<usize> = (0..len).map(|_| self.atom(ty)).collect();
        let mut edge_ids = Vec::with_capacity(2 * len);
        for i in 0..len {
            let (a, b) = self.bond(nodes[i], nodes[(i + 1) % len]);
            edge_ids.push(a);
            edge_ids.push(b);
        }
        (nodes, edge_ids)
    }

    /// Grows a chain off `attach_to`, returning the new atoms and the tip
    /// (the last chain atom, or `attach_to` itself when `len == 0`) so
    /// callers can extend from the end without a non-emptiness witness.
    fn chain(&mut self, ty: usize, len: usize, attach_to: usize) -> (Vec<usize>, usize) {
        let mut prev = attach_to;
        let mut nodes = Vec::with_capacity(len);
        for _ in 0..len {
            let v = self.atom(ty);
            self.bond(prev, v);
            nodes.push(v);
            prev = v;
        }
        (nodes, prev)
    }

    fn finish(mut self, feat_dim: usize, label: usize) -> Graph {
        // The builder was sized for `max_nodes`; trim by rebuilding with the
        // actual count. Cheaper: build features on actual nodes only — we
        // sized exactly, so assert.
        let n = self.next_node;
        let mut features = vec![0.0f32; n * feat_dim];
        for (v, &ty) in self.types.iter().enumerate() {
            features[v * feat_dim + ty] = 1.0;
        }
        // Rebuild into an exact-size graph.
        let mut b = Graph::builder(n, feat_dim);
        b.all_features(features);
        let built = self.builder.build();
        for &(u, v) in built.edges() {
            b.edge(u as usize, v as usize);
        }
        b.graph_label(label);
        b.build()
    }
}

/// Simulated MUTAG: 188 graphs, 7 atom features, 2 classes; positives carry
/// a planted NO₂ motif.
pub fn mutag_sim(seed: u64) -> GraphDataset {
    const GRAPHS: usize = 188;
    const FEAT: usize = 7;
    const LABEL_NOISE: f64 = 0.08;

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut graphs = Vec::with_capacity(GRAPHS);
    let mut motif_edges = Vec::with_capacity(GRAPHS);

    for i in 0..GRAPHS {
        // ~2/3 positive, matching the real MUTAG imbalance (125 / 63).
        let positive = i % 3 != 2;
        let mut m = MoleculeBuilder::new(40, FEAT);

        // Skeleton: one aromatic-like carbon ring, optionally a second ring
        // joined by a short chain, plus a dangling chain.
        let (ring1, _) = m.ring(CARBON, 6);
        let mut skeleton: Vec<usize> = ring1.clone();
        if rng.gen_bool(0.55) {
            let (bridge, tip) = m.chain(CARBON, rng.gen_range(1..=2), ring1[0]);
            let (ring2, _) = m.ring(CARBON, rng.gen_range(5..=6));
            m.bond(tip, ring2[0]);
            skeleton.extend(bridge);
            skeleton.extend(ring2);
        }
        let tail_len = rng.gen_range(0..=3);
        if tail_len > 0 {
            let anchor = skeleton[rng.gen_range(0..skeleton.len())];
            let (tail, _) = m.chain(CARBON, tail_len, anchor);
            skeleton.extend(tail);
        }

        let mut gt = Vec::new();
        if positive {
            // NO2 group: skeleton carbon — N — (O, O).
            for _ in 0..rng.gen_range(1..=2) {
                let anchor = skeleton[rng.gen_range(0..skeleton.len())];
                let n = m.atom(NITROGEN);
                let (e1, e2) = m.bond(anchor, n);
                let o1 = m.atom(OXYGEN);
                let (e3, e4) = m.bond(n, o1);
                let o2 = m.atom(OXYGEN);
                let (e5, e6) = m.bond(n, o2);
                gt.extend([e1, e2, e3, e4, e5, e6]);
            }
        } else {
            // Red herrings: lone oxygens / nitrogens, never the N(O,O) motif.
            for _ in 0..rng.gen_range(1..=3) {
                let anchor = skeleton[rng.gen_range(0..skeleton.len())];
                let ty = if rng.gen_bool(0.5) { OXYGEN } else { NITROGEN };
                let d = m.atom(ty);
                m.bond(anchor, d);
            }
        }
        // Occasional halogen decoration (types 3..7) in either class.
        if rng.gen_bool(0.4) {
            let anchor = skeleton[rng.gen_range(0..skeleton.len())];
            let halo = m.atom(rng.gen_range(3..FEAT));
            m.bond(anchor, halo);
        }

        let mut label = usize::from(positive);
        if rng.gen_bool(LABEL_NOISE) {
            label = 1 - label;
        }
        graphs.push(m.finish(FEAT, label));
        motif_edges.push(gt);
    }

    GraphDataset {
        name: "MUTAG",
        graphs,
        num_classes: 2,
        split: graph_split(GRAPHS, 0.8, 0.1, seed ^ 0x307a6),
        motif_edges: Some(motif_edges),
    }
}

/// Simulated BBBP: 2039 graphs, 9 atom features, 2 classes; positives carry
/// a planted six-ring of type-8 atoms.
pub fn bbbp_sim(seed: u64) -> GraphDataset {
    const GRAPHS: usize = 2039;
    const FEAT: usize = 9;
    const AROMATIC: usize = 8;
    const LABEL_NOISE: f64 = 0.10;

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut graphs = Vec::with_capacity(GRAPHS);
    let mut motif_edges = Vec::with_capacity(GRAPHS);

    for i in 0..GRAPHS {
        let positive = i % 2 == 0;
        let mut m = MoleculeBuilder::new(48, FEAT);

        let (ring1, _) = m.ring(CARBON, 6);
        let mut skeleton = ring1.clone();
        let (bridge, bridge_tip) = m.chain(CARBON, rng.gen_range(2..=4), ring1[2]);
        skeleton.extend(bridge);
        if rng.gen_bool(0.5) {
            let (ring2, _) = m.ring(CARBON, rng.gen_range(5..=6));
            m.bond(bridge_tip, ring2[0]);
            skeleton.extend(ring2);
        }
        // Random heteroatom decorations in both classes.
        for _ in 0..rng.gen_range(2..=4) {
            let anchor = skeleton[rng.gen_range(0..skeleton.len())];
            let d = m.atom(rng.gen_range(1..8));
            m.bond(anchor, d);
        }

        let mut gt = Vec::new();
        if positive {
            let (ring, ids) = m.ring(AROMATIC, 6);
            let anchor = skeleton[rng.gen_range(0..skeleton.len())];
            m.bond(anchor, ring[0]);
            gt = ids;
        } else {
            // Open chain of the aromatic type: same atom counts, no ring.
            let anchor = skeleton[rng.gen_range(0..skeleton.len())];
            m.chain(AROMATIC, rng.gen_range(2..=4), anchor);
        }

        let mut label = usize::from(positive);
        if rng.gen_bool(LABEL_NOISE) {
            label = 1 - label;
        }
        graphs.push(m.finish(FEAT, label));
        motif_edges.push(gt);
    }

    GraphDataset {
        name: "BBBP",
        graphs,
        num_classes: 2,
        split: graph_split(GRAPHS, 0.8, 0.1, seed ^ 0xbbb9),
        motif_edges: Some(motif_edges),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn mutag_stats_near_table_iii() {
        let d = mutag_sim(0);
        assert_eq!(d.graphs.len(), 188);
        assert_eq!(d.num_classes, 2);
        assert_eq!(d.graphs[0].feat_dim(), 7);
        let avg_n = d.avg_nodes();
        let avg_e = d.avg_edges();
        assert!((12.0..=24.0).contains(&avg_n), "avg nodes {avg_n}");
        assert!((28.0..=52.0).contains(&avg_e), "avg edges {avg_e}");
    }

    #[test]
    fn bbbp_stats_near_table_iii() {
        let d = bbbp_sim(0);
        assert_eq!(d.graphs.len(), 2039);
        assert_eq!(d.graphs[0].feat_dim(), 9);
        let avg_n = d.avg_nodes();
        assert!((18.0..=30.0).contains(&avg_n), "avg nodes {avg_n}");
    }

    #[test]
    fn positive_mutag_graphs_contain_no2_motif() {
        let d = mutag_sim(1);
        let me = d.motif_edges.as_ref().unwrap();
        for (g, gt) in d.graphs.iter().zip(me) {
            if gt.is_empty() {
                continue;
            }
            // Every ground-truth edge id must be valid and touch an N or O.
            for &e in gt {
                let (u, v) = g.edges()[e];
                let tu = g.feature_row(u as usize);
                let tv = g.feature_row(v as usize);
                let is_no = |row: &[f32]| row[NITROGEN] == 1.0 || row[OXYGEN] == 1.0;
                assert!(is_no(tu) || is_no(tv));
            }
        }
    }

    #[test]
    fn labels_mostly_match_motif_presence() {
        let d = bbbp_sim(2);
        let me = d.motif_edges.as_ref().unwrap();
        let agree = d
            .graphs
            .iter()
            .zip(me)
            .filter(|(g, gt)| (g.graph_label() == Some(1)) != gt.is_empty())
            .count();
        let frac = agree as f64 / d.graphs.len() as f64;
        assert!(frac > 0.85, "label/motif agreement {frac}");
    }

    #[test]
    fn atom_features_are_one_hot() {
        let d = mutag_sim(3);
        for g in &d.graphs[..10] {
            for v in 0..g.num_nodes() {
                let row = g.feature_row(v);
                assert_eq!(row.iter().filter(|&&x| x == 1.0).count(), 1);
                assert!(row.iter().all(|&x| x == 0.0 || x == 1.0));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = mutag_sim(7);
        let b = mutag_sim(7);
        assert_eq!(a.graphs[5].edges(), b.graphs[5].edges());
    }
}
