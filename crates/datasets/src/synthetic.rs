//! The three synthetic benchmarks, generated per their defining papers:
//!
//! * **BA-Shapes** (Ying et al., 2019): a 300-node Barabási–Albert base graph
//!   with 80 five-node "house" motifs attached, plus random noise edges;
//!   node labels encode motif position (base / middle / bottom / top).
//! * **Tree-Cycles** (Ying et al., 2019): a depth-8 balanced binary tree with
//!   60 six-node cycles attached; binary node labels (tree / cycle).
//! * **BA-2motifs** (Luo et al., 2020): 1000 graphs, each a 20-node BA base
//!   with either a house or a five-node cycle attached; the motif type is
//!   the graph label.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use revelio_graph::{Graph, GraphBuilder};

use crate::split::{graph_split, node_split};
use crate::{GraphDataset, NodeDataset};

/// Node labels within a house motif, following GNNExplainer's convention.
const LABEL_BASE: usize = 0;
const LABEL_MIDDLE: usize = 1;
const LABEL_BOTTOM: usize = 2;
const LABEL_TOP: usize = 3;

/// Generates an undirected Barabási–Albert graph edge list on nodes
/// `0..n`: each new node attaches to `m` distinct existing nodes chosen by
/// preferential attachment.
fn ba_edges(n: usize, m: usize, rng: &mut SmallRng) -> Vec<(usize, usize)> {
    assert!(n > m && m >= 1, "BA requires n > m >= 1");
    let mut edges = Vec::with_capacity(m * (n - m));
    // `targets` holds one entry per edge endpoint, so sampling uniformly
    // from it realises preferential attachment.
    let mut endpoint_pool: Vec<usize> = (0..m).collect();
    for v in m..n {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let candidate = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        for &u in &chosen {
            edges.push((u, v));
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }
    edges
}

/// Adds the six undirected house-motif edges over nodes
/// `[top, mid1, mid2, bot1, bot2]`, recording the directed edge ids.
fn add_house(
    b: &mut GraphBuilder,
    nodes: [usize; 5],
    edge_count: &mut usize,
    motif_edge_ids: &mut Vec<usize>,
) {
    let [t, m1, m2, b1, b2] = nodes;
    for (u, v) in [(m1, m2), (m1, t), (m2, t), (m1, b1), (m2, b2), (b1, b2)] {
        b.undirected_edge(u, v);
        motif_edge_ids.push(*edge_count);
        motif_edge_ids.push(*edge_count + 1);
        *edge_count += 2;
    }
}

/// Adds an undirected cycle over `nodes`, recording the directed edge ids.
fn add_cycle(
    b: &mut GraphBuilder,
    nodes: &[usize],
    edge_count: &mut usize,
    motif_edge_ids: &mut Vec<usize>,
) {
    for i in 0..nodes.len() {
        let (u, v) = (nodes[i], nodes[(i + 1) % nodes.len()]);
        b.undirected_edge(u, v);
        motif_edge_ids.push(*edge_count);
        motif_edge_ids.push(*edge_count + 1);
        *edge_count += 2;
    }
}

fn add_plain_undirected(b: &mut GraphBuilder, u: usize, v: usize, edge_count: &mut usize) {
    b.undirected_edge(u, v);
    *edge_count += 2;
}

/// Constant features with two degree-derived channels.
///
/// The original synthetic benchmarks pair constant features with GNNs that
/// use sum aggregation and layer-concatenated classifier heads; with the
/// standard GCN/GIN/GAT architectures evaluated in the paper, constant
/// features starve the models of structural signal. Two degree channels
/// (a widely used equivalent input encoding) restore learnability while the
/// planted motif remains the explanatory signal.
fn degree_augmented(g: Graph) -> Graph {
    let n = g.num_nodes();
    let f = g.feat_dim();
    assert!(f >= 3, "degree augmentation needs at least 3 feature dims");
    let mut feats = g.features().to_vec();
    let mut deg = vec![0.0f32; n];
    for &(s, _) in g.edges() {
        deg[s as usize] += 1.0;
    }
    let maxd = deg.iter().copied().fold(1.0, f32::max);
    for v in 0..n {
        let d = deg[v] / maxd;
        feats[v * f + 1] = d;
        feats[v * f + 2] = d * d;
    }
    g.with_features(feats)
}

/// BA-Shapes: 700 nodes, 4 classes, house motifs on a BA base.
pub fn ba_shapes(seed: u64) -> NodeDataset {
    const BASE: usize = 300;
    const MOTIFS: usize = 80;
    const FEAT: usize = 10;
    const EXTRA_RANDOM_EDGES: usize = 20;
    let n = BASE + 5 * MOTIFS; // 700

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = Graph::builder(n, FEAT);
    let mut labels = vec![LABEL_BASE; n];
    let mut node_motif: Vec<Option<usize>> = vec![None; n];
    let mut motif_edges: Vec<Vec<usize>> = Vec::with_capacity(MOTIFS);
    let mut edge_count = 0usize;

    for (u, v) in ba_edges(BASE, 5, &mut rng) {
        add_plain_undirected(&mut b, u, v, &mut edge_count);
    }

    for motif in 0..MOTIFS {
        let base_id = BASE + 5 * motif;
        let nodes = [base_id, base_id + 1, base_id + 2, base_id + 3, base_id + 4];
        let mut ids = Vec::with_capacity(12);
        add_house(&mut b, nodes, &mut edge_count, &mut ids);
        motif_edges.push(ids);
        labels[nodes[0]] = LABEL_TOP;
        labels[nodes[1]] = LABEL_MIDDLE;
        labels[nodes[2]] = LABEL_MIDDLE;
        labels[nodes[3]] = LABEL_BOTTOM;
        labels[nodes[4]] = LABEL_BOTTOM;
        for v in nodes {
            node_motif[v] = Some(motif);
        }
        // Attach the motif's bottom-left node to a random base node.
        let anchor = rng.gen_range(0..BASE);
        add_plain_undirected(&mut b, nodes[3], anchor, &mut edge_count);
    }

    let mut added = 0;
    while added < EXTRA_RANDOM_EDGES {
        let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if u != v && !b.has_edge(u, v) {
            add_plain_undirected(&mut b, u, v, &mut edge_count);
            added += 1;
        }
    }

    b.all_features(vec![1.0; n * FEAT]);
    b.node_labels(labels);

    NodeDataset {
        name: "BA-Shapes",
        graph: degree_augmented(b.build()),
        num_classes: 4,
        split: node_split(n, 0.8, 0.1, seed ^ 0x51),
        node_motif: Some(node_motif),
        motif_edges: Some(motif_edges),
    }
}

/// Tree-Cycles: 871 nodes, 2 classes, hexagon motifs on a binary tree.
pub fn tree_cycles(seed: u64) -> NodeDataset {
    const DEPTH: u32 = 8;
    const MOTIFS: usize = 60;
    const FEAT: usize = 10;
    const EXTRA_RANDOM_EDGES: usize = 41;
    let tree_n = (1usize << (DEPTH + 1)) - 1; // 511
    let n = tree_n + 6 * MOTIFS; // 871

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = Graph::builder(n, FEAT);
    let mut labels = vec![0usize; n];
    let mut node_motif: Vec<Option<usize>> = vec![None; n];
    let mut motif_edges: Vec<Vec<usize>> = Vec::with_capacity(MOTIFS);
    let mut edge_count = 0usize;

    // Balanced binary tree: node v has children 2v+1 and 2v+2.
    for v in 0..tree_n {
        for child in [2 * v + 1, 2 * v + 2] {
            if child < tree_n {
                add_plain_undirected(&mut b, v, child, &mut edge_count);
            }
        }
    }

    for motif in 0..MOTIFS {
        let base_id = tree_n + 6 * motif;
        let nodes: Vec<usize> = (base_id..base_id + 6).collect();
        let mut ids = Vec::with_capacity(12);
        add_cycle(&mut b, &nodes, &mut edge_count, &mut ids);
        motif_edges.push(ids);
        for &v in &nodes {
            labels[v] = 1;
            node_motif[v] = Some(motif);
        }
        let anchor = rng.gen_range(0..tree_n);
        add_plain_undirected(&mut b, nodes[0], anchor, &mut edge_count);
    }

    let mut added = 0;
    while added < EXTRA_RANDOM_EDGES {
        let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if u != v && !b.has_edge(u, v) {
            add_plain_undirected(&mut b, u, v, &mut edge_count);
            added += 1;
        }
    }

    b.all_features(vec![1.0; n * FEAT]);
    b.node_labels(labels);

    NodeDataset {
        name: "Tree-Cycles",
        graph: degree_augmented(b.build()),
        num_classes: 2,
        split: node_split(n, 0.8, 0.1, seed ^ 0x7c1),
        node_motif: Some(node_motif),
        motif_edges: Some(motif_edges),
    }
}

/// BA-2motifs: 1000 graphs of 25 nodes; label 0 = house motif, 1 = pentagon.
pub fn ba_2motifs(seed: u64) -> GraphDataset {
    const GRAPHS: usize = 1000;
    const BASE: usize = 20;
    const FEAT: usize = 10;

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut graphs = Vec::with_capacity(GRAPHS);
    let mut motif_edges = Vec::with_capacity(GRAPHS);
    // Balanced, shuffled class assignment.
    let mut classes: Vec<usize> = (0..GRAPHS).map(|i| i % 2).collect();
    classes.shuffle(&mut rng);

    for &class in &classes {
        let n = BASE + 5;
        let mut b = Graph::builder(n, FEAT);
        let mut edge_count = 0usize;
        let mut ids = Vec::new();
        for (u, v) in ba_edges(BASE, 1, &mut rng) {
            add_plain_undirected(&mut b, u, v, &mut edge_count);
        }
        let motif_nodes: Vec<usize> = (BASE..BASE + 5).collect();
        if class == 0 {
            add_house(
                &mut b,
                [
                    motif_nodes[0],
                    motif_nodes[1],
                    motif_nodes[2],
                    motif_nodes[3],
                    motif_nodes[4],
                ],
                &mut edge_count,
                &mut ids,
            );
        } else {
            add_cycle(&mut b, &motif_nodes, &mut edge_count, &mut ids);
        }
        let anchor = rng.gen_range(0..BASE);
        add_plain_undirected(&mut b, motif_nodes[0], anchor, &mut edge_count);

        b.all_features(vec![1.0; n * FEAT]);
        b.graph_label(class);
        graphs.push(degree_augmented(b.build()));
        motif_edges.push(ids);
    }

    GraphDataset {
        name: "BA-2motifs",
        graphs,
        num_classes: 2,
        split: graph_split(GRAPHS, 0.8, 0.1, seed ^ 0xba2),
        motif_edges: Some(motif_edges),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn ba_shapes_matches_table_iii() {
        let d = ba_shapes(0);
        assert_eq!(d.graph.num_nodes(), 700);
        assert_eq!(d.graph.num_edges(), 4110);
        assert_eq!(d.num_classes, 4);
        assert_eq!(d.graph.feat_dim(), 10);
        // 80 motifs with 12 directed edges each.
        let me = d.motif_edges.as_ref().unwrap();
        assert_eq!(me.len(), 80);
        assert!(me.iter().all(|m| m.len() == 12));
        // Labels: 300 base + 80 top + 160 middle + 160 bottom.
        let labels = d.graph.node_labels().unwrap();
        assert_eq!(labels.iter().filter(|&&l| l == LABEL_BASE).count(), 300);
        assert_eq!(labels.iter().filter(|&&l| l == LABEL_TOP).count(), 80);
        assert_eq!(labels.iter().filter(|&&l| l == LABEL_MIDDLE).count(), 160);
        assert_eq!(labels.iter().filter(|&&l| l == LABEL_BOTTOM).count(), 160);
    }

    #[test]
    fn tree_cycles_matches_table_iii() {
        let d = tree_cycles(0);
        assert_eq!(d.graph.num_nodes(), 871);
        assert_eq!(d.graph.num_edges(), 1942);
        assert_eq!(d.num_classes, 2);
        let labels = d.graph.node_labels().unwrap();
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 360);
    }

    #[test]
    fn ba_2motifs_matches_table_iii() {
        let d = ba_2motifs(0);
        assert_eq!(d.graphs.len(), 1000);
        assert_eq!(d.num_classes, 2);
        assert!((d.avg_nodes() - 25.0).abs() < 1e-9);
        // House graphs: 38 + 12 + 2 = 52 edges; pentagon: 38 + 10 + 2 = 50.
        let avg = d.avg_edges();
        assert!((50.9..=51.1).contains(&avg), "avg edges {avg}");
        // Labels balanced.
        let ones = d
            .graphs
            .iter()
            .filter(|g| g.graph_label() == Some(1))
            .count();
        assert_eq!(ones, 500);
    }

    #[test]
    fn motif_edges_are_within_motif_nodes() {
        let d = ba_shapes(1);
        let g = &d.graph;
        let nm = d.node_motif.as_ref().unwrap();
        for (motif, edges) in d.motif_edges.as_ref().unwrap().iter().enumerate() {
            for &e in edges {
                let (s, t) = g.edges()[e];
                assert_eq!(nm[s as usize], Some(motif));
                assert_eq!(nm[t as usize], Some(motif));
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = ba_shapes(9);
        let b = ba_shapes(9);
        assert_eq!(a.graph.edges(), b.graph.edges());
        let c = tree_cycles(9);
        let d = tree_cycles(9);
        assert_eq!(c.graph.edges(), d.graph.edges());
    }

    #[test]
    fn ba_generator_degree_and_count() {
        let mut rng = SmallRng::seed_from_u64(3);
        let edges = ba_edges(50, 3, &mut rng);
        assert_eq!(edges.len(), 3 * 47);
        // No duplicate undirected edges.
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in &edges {
            assert!(u != v);
            assert!(seen.insert((u.min(v), u.max(v))));
        }
    }

    #[test]
    fn ground_truth_for_motif_node() {
        let d = tree_cycles(2);
        // First motif node id: 511.
        let gt = d.ground_truth_for(511).unwrap();
        assert_eq!(gt.len(), 12);
        assert!(d.ground_truth_for(0).is_none());
    }
}
