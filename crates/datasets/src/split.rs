//! Train/validation/test splits.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Index-based split over nodes (node classification) or graphs (graph
/// classification).
#[derive(Debug, Clone)]
pub struct Split {
    pub train: Vec<usize>,
    pub val: Vec<usize>,
    pub test: Vec<usize>,
}

impl Split {
    /// Total number of indexed items.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Randomly splits `n` items into train/val/test by the given fractions
/// (test receives the remainder).
///
/// # Panics
///
/// Panics if the fractions are negative or sum beyond 1.
pub fn node_split(n: usize, train_frac: f64, val_frac: f64, seed: u64) -> Split {
    assert!(train_frac >= 0.0 && val_frac >= 0.0 && train_frac + val_frac <= 1.0);
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_train = (n as f64 * train_frac).round() as usize;
    let n_val = (n as f64 * val_frac).round() as usize;
    let train = idx[..n_train].to_vec();
    let val = idx[n_train..(n_train + n_val).min(n)].to_vec();
    let test = idx[(n_train + n_val).min(n)..].to_vec();
    Split { train, val, test }
}

/// Alias of [`node_split`] for graph-classification datasets.
pub fn graph_split(n: usize, train_frac: f64, val_frac: f64, seed: u64) -> Split {
    node_split(n, train_frac, val_frac, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_partitions_all_indices() {
        let s = node_split(100, 0.6, 0.2, 7);
        assert_eq!(s.len(), 100);
        let all: HashSet<usize> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        assert_eq!(all.len(), 100);
        assert_eq!(s.train.len(), 60);
        assert_eq!(s.val.len(), 20);
        assert_eq!(s.test.len(), 20);
    }

    #[test]
    fn split_is_deterministic() {
        let a = node_split(50, 0.5, 0.25, 3);
        let b = node_split(50, 0.5, 0.25, 3);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }
}
