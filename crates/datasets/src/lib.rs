//! Dataset generators for the eight benchmarks of Table III.
//!
//! The three synthetic datasets (BA-Shapes, Tree-Cycles, BA-2motifs) are
//! generated exactly per their defining papers. The five real-world datasets
//! (Cora, Citeseer, PubMed, MUTAG, BBBP) are **simulated analogues** matched
//! to Table III's statistics — see `DESIGN.md` §3 for the substitution
//! rationale. Every generator is deterministic given its seed.

#![deny(clippy::print_stdout, clippy::print_stderr)]

mod citation;
mod molecules;
mod split;
mod synthetic;

pub use citation::{citeseer_sim, cora_sim, pubmed_sim};
pub use molecules::{bbbp_sim, mutag_sim};
pub use split::{graph_split, node_split, Split};
pub use synthetic::{ba_2motifs, ba_shapes, tree_cycles};

use revelio_graph::Graph;

/// A node-classification dataset: one graph, per-node labels.
#[derive(Debug, Clone)]
pub struct NodeDataset {
    /// Canonical dataset name (e.g. `"BA-Shapes"`).
    pub name: &'static str,
    /// The (single) graph with features and node labels.
    pub graph: Graph,
    /// Number of node classes.
    pub num_classes: usize,
    /// Train/validation/test node indices.
    pub split: Split,
    /// Ground-truth motif membership: `node_motif[v]` is the motif id of
    /// node `v`, if the dataset has planted motifs.
    pub node_motif: Option<Vec<Option<usize>>>,
    /// Per motif, the ids of the (directed) edges inside it — the AUC
    /// ground truth of Table IV.
    pub motif_edges: Option<Vec<Vec<usize>>>,
}

impl NodeDataset {
    /// Ground-truth edge ids for explaining node `v`: the edges of `v`'s
    /// motif, or `None` if `v` is outside any motif (or the dataset has no
    /// ground truth).
    pub fn ground_truth_for(&self, v: usize) -> Option<&[usize]> {
        let motif = self.node_motif.as_ref()?.get(v).copied().flatten()?;
        Some(&self.motif_edges.as_ref()?[motif])
    }
}

/// A graph-classification dataset: many graphs, one label each.
#[derive(Debug, Clone)]
pub struct GraphDataset {
    /// Canonical dataset name (e.g. `"MUTAG"`).
    pub name: &'static str,
    /// The graphs; each carries its own features and `graph_label`.
    pub graphs: Vec<Graph>,
    /// Number of graph classes.
    pub num_classes: usize,
    /// Train/validation/test graph indices.
    pub split: Split,
    /// Per graph, the ids of the (directed) edges inside its planted motif
    /// (empty when the graph has no motif).
    pub motif_edges: Option<Vec<Vec<usize>>>,
}

impl GraphDataset {
    /// Ground-truth edge ids for explaining graph `g`, if available and
    /// non-empty.
    pub fn ground_truth_for(&self, g: usize) -> Option<&[usize]> {
        let edges = self.motif_edges.as_ref()?.get(g)?;
        (!edges.is_empty()).then_some(edges.as_slice())
    }

    /// Mean node count across graphs.
    pub fn avg_nodes(&self) -> f64 {
        self.graphs
            .iter()
            .map(|g| g.num_nodes() as f64)
            .sum::<f64>()
            / self.graphs.len() as f64
    }

    /// Mean (directed) edge count across graphs.
    pub fn avg_edges(&self) -> f64 {
        self.graphs
            .iter()
            .map(|g| g.num_edges() as f64)
            .sum::<f64>()
            / self.graphs.len() as f64
    }
}

/// Any dataset of the evaluation suite.
pub enum Dataset {
    Node(NodeDataset),
    Graph(GraphDataset),
}

impl Dataset {
    /// The dataset's canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Node(d) => d.name,
            Dataset::Graph(d) => d.name,
        }
    }

    /// Number of target classes.
    pub fn num_classes(&self) -> usize {
        match self {
            Dataset::Node(d) => d.num_classes,
            Dataset::Graph(d) => d.num_classes,
        }
    }
}

/// The canonical dataset order of Table III.
pub const ALL_DATASETS: [&str; 8] = [
    "Cora",
    "Citeseer",
    "PubMed",
    "BA-Shapes",
    "Tree-Cycles",
    "MUTAG",
    "BBBP",
    "BA-2motifs",
];

/// Loads a dataset by its Table III name.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn by_name(name: &str, seed: u64) -> Dataset {
    match name {
        "Cora" => Dataset::Node(cora_sim(seed)),
        "Citeseer" => Dataset::Node(citeseer_sim(seed)),
        "PubMed" => Dataset::Node(pubmed_sim(seed)),
        "BA-Shapes" => Dataset::Node(ba_shapes(seed)),
        "Tree-Cycles" => Dataset::Node(tree_cycles(seed)),
        "MUTAG" => Dataset::Graph(mutag_sim(seed)),
        "BBBP" => Dataset::Graph(bbbp_sim(seed)),
        "BA-2motifs" => Dataset::Graph(ba_2motifs(seed)),
        other => panic!("unknown dataset {other:?} (expected one of {ALL_DATASETS:?})"),
    }
}
