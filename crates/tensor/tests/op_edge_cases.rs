//! Edge-case and contract tests for tensor operators: empty inputs,
//! boundary values, and shape-mismatch panics.

use std::sync::Arc;

use revelio_tensor::{Adam, BinCsr, Optimizer, Sgd, ShapeMismatch, Tensor};

#[test]
#[should_panic(expected = "incompatible shapes")]
fn matmul_shape_mismatch_panics() {
    let a = Tensor::zeros(2, 3);
    let b = Tensor::zeros(2, 3);
    let _ = a.matmul(&b);
}

#[test]
fn try_matmul_reports_typed_error_for_all_transpose_variants() {
    let a = Tensor::zeros(2, 3);
    let b = Tensor::zeros(2, 3);
    // nn: needs a.cols == b.rows (3 vs 2).
    assert_eq!(
        a.try_matmul(&b).err(),
        Some(ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (2, 3),
        })
    );
    // nt: needs matching column counts.
    let c = Tensor::zeros(4, 2);
    assert_eq!(
        a.try_matmul_nt(&c).err(),
        Some(ShapeMismatch {
            op: "matmul_nt",
            lhs: (2, 3),
            rhs: (4, 2),
        })
    );
    // tn: needs matching row counts.
    let d = Tensor::zeros(3, 5);
    assert_eq!(
        a.try_matmul_tn(&d).err(),
        Some(ShapeMismatch {
            op: "matmul_tn",
            lhs: (2, 3),
            rhs: (3, 5),
        })
    );
    // The error is Display-able with both shapes in the message.
    let msg = a.try_matmul(&b).expect_err("mismatched shapes").to_string();
    assert!(msg.contains("[2,3]"), "unexpected message: {msg}");
}

#[test]
fn try_matmul_ok_on_matching_shapes() {
    let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
    let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], 2, 2);
    let c = a.try_matmul(&b).expect("shapes match");
    assert_eq!(c.to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
}

#[test]
fn matmul_nt_and_tn_match_explicit_transposes() {
    // a [2,3], b [4,3]: a · bᵀ == matmul against the transposed copy.
    let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
    let b = Tensor::from_vec(
        vec![
            0.5, -1.0, 2.0, 1.5, 0.0, -0.5, 1.0, 1.0, 1.0, -2.0, 0.25, 4.0,
        ],
        4,
        3,
    );
    let bt = transpose(&b);
    assert_eq!(a.matmul_nt(&b).to_vec(), a.matmul(&bt).to_vec());
    // aᵀ · c with c [2,4].
    let c = Tensor::from_vec(vec![1.0, 0.0, -1.0, 2.0, 3.0, 1.0, 0.5, -0.5], 2, 4);
    let at = transpose(&a);
    assert_eq!(a.matmul_tn(&c).to_vec(), at.matmul(&c).to_vec());
}

#[test]
fn matmul_nt_backward_matches_unfused_transpose() {
    let a = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], 2, 2).requires_grad();
    let b = Tensor::from_vec(vec![2.0, 1.0, -1.0, 0.25], 2, 2).requires_grad();
    a.matmul_nt(&b).sum_all().backward();
    let a2 = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], 2, 2).requires_grad();
    let b2 = Tensor::from_vec(vec![2.0, 1.0, -1.0, 0.25], 2, 2).requires_grad();
    let b2t = transpose(&b2);
    a2.matmul(&b2t).sum_all().backward();
    assert_eq!(a.grad_vec(), a2.grad_vec());
    // b2's gradient flows through the transpose copy, so compare b's
    // gradient against the transposed gradient of b2t instead.
    let g2 = b2t.grad_vec();
    assert_eq!(b.grad_vec(), vec![g2[0], g2[2], g2[1], g2[3]]);
}

/// Materialises a transposed copy (test helper; the library never needs one).
fn transpose(t: &Tensor) -> Tensor {
    let (m, n) = t.shape();
    let d = t.to_vec();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = d[i * n + j];
        }
    }
    Tensor::from_vec(out, n, m).requires_grad()
}

#[test]
#[should_panic(expected = "shape mismatch")]
fn elementwise_shape_mismatch_panics() {
    let a = Tensor::zeros(2, 3);
    let b = Tensor::zeros(3, 2);
    let _ = a.add(&b);
}

#[test]
#[should_panic(expected = "invalid range")]
fn slice_cols_invalid_range_panics() {
    let a = Tensor::zeros(2, 3);
    let _ = a.slice_cols(2, 2);
}

#[test]
#[should_panic(expected = "out of bounds")]
fn gather_rows_out_of_bounds_panics() {
    let a = Tensor::zeros(2, 3);
    let _ = a.gather_rows(&[2]);
}

#[test]
fn gather_rows_empty_index_gives_empty_tensor() {
    let a = Tensor::from_vec(vec![1.0, 2.0], 1, 2);
    let g = a.gather_rows(&[]);
    assert_eq!(g.shape(), (0, 2));
    assert!(g.is_empty());
}

#[test]
fn gather_rows_repeats_rows() {
    let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
    let g = a.gather_rows(&[1, 1, 0]);
    assert_eq!(g.to_vec(), vec![3.0, 4.0, 3.0, 4.0, 1.0, 2.0]);
}

#[test]
fn scatter_add_collision_sums() {
    let a = Tensor::from_vec(vec![1.0, 10.0, 100.0], 3, 1);
    let s = a.scatter_add_rows(&[0, 0, 0], 2);
    assert_eq!(s.to_vec(), vec![111.0, 0.0]);
}

#[test]
fn log_softmax_extreme_values_stay_finite() {
    let x = Tensor::from_vec(vec![1000.0, -1000.0, 0.0], 1, 3);
    let ls = x.log_softmax_rows();
    assert!(ls.to_vec().iter().all(|v| v.is_finite()));
    assert!((ls.get(0, 0) - 0.0).abs() < 1e-4); // dominant logit ≈ log 1
}

#[test]
fn exp_ln_roundtrip() {
    let x = Tensor::from_vec(vec![0.5, 1.0, 2.0], 1, 3);
    let y = x.ln().exp();
    for (a, b) in x.to_vec().iter().zip(y.to_vec()) {
        assert!((a - b).abs() < 1e-5);
    }
}

#[test]
fn sp_matvec_empty_rows_produce_zeros() {
    let m = Arc::new(BinCsr::from_rows(3, 2, &[vec![], vec![0, 1], vec![]]));
    let x = Tensor::from_vec(vec![2.0, 3.0], 2, 1);
    assert_eq!(x.sp_matvec(&m).to_vec(), vec![0.0, 5.0, 0.0]);
}

#[test]
fn backward_through_shared_subexpression_counts_both_paths() {
    // y = x*x + x → dy/dx = 2x + 1.
    let x = Tensor::scalar(3.0).requires_grad();
    let y = x.mul(&x).add(&x);
    y.backward();
    assert_eq!(x.grad_vec(), vec![7.0]);
}

#[test]
fn backward_on_diamond_graph() {
    // a → b, c; d = b + c. dd/da = 2 (both paths).
    let a = Tensor::scalar(5.0).requires_grad();
    let b = a.mul_scalar(1.0);
    let c = a.add_scalar(0.0);
    let d = b.add(&c);
    d.backward();
    assert_eq!(a.grad_vec(), vec![2.0]);
}

#[test]
fn deep_chain_backward_does_not_overflow_stack() {
    // 20k chained ops exercise the iterative DFS in backward().
    let x = Tensor::scalar(1.0).requires_grad();
    let mut y = x.clone();
    for _ in 0..20_000 {
        y = y.add_scalar(1.0);
    }
    y.backward();
    assert_eq!(x.grad_vec(), vec![1.0]);
}

#[test]
fn optimizer_handles_mixed_grad_presence() {
    let a = Tensor::scalar(1.0).requires_grad();
    let b = Tensor::scalar(2.0).requires_grad();
    let mut opt = Adam::new(vec![a.clone(), b.clone()], 0.1);
    // Only `a` participates in the loss.
    a.mul_scalar(2.0).backward();
    opt.step();
    assert_ne!(a.item(), 1.0);
    assert_eq!(b.item(), 2.0);
}

#[test]
fn sgd_weight_decay_pulls_towards_zero_under_zero_gradient() {
    let w = Tensor::scalar(4.0).requires_grad();
    let mut opt = Sgd::new(vec![w.clone()], 0.5).with_weight_decay(0.1);
    for _ in 0..3 {
        opt.zero_grad();
        w.mul_scalar(0.0).backward(); // zero gradient, decay only
        opt.step();
    }
    assert!(w.item() < 4.0 && w.item() > 0.0);
}

#[test]
fn segment_softmax_single_element_segments_are_one() {
    let x = Tensor::from_vec(vec![-5.0, 100.0, 0.0], 3, 1);
    let sm = x.segment_softmax(&[0, 1, 2]);
    for v in sm.to_vec() {
        assert!((v - 1.0).abs() < 1e-6);
    }
}

#[test]
fn mean_rows_single_row_is_identity() {
    let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], 1, 3);
    assert_eq!(x.mean_rows().to_vec(), x.to_vec());
}

#[test]
fn concat_cols_empty_rows() {
    let a = Tensor::zeros(0, 2);
    let b = Tensor::zeros(0, 3);
    assert_eq!(a.concat_cols(&b).shape(), (0, 5));
}
