//! Edge-case behaviour the explainers rely on: degenerate segment softmax
//! groups, empty sparse matrices, and fallible row gathering.

#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use revelio_tensor::{BinCsr, Tensor};

// ---------------- segment_softmax ----------------

#[test]
fn segment_softmax_skips_empty_segments() {
    // Segment 1 has no rows: ids are non-contiguous {0, 2}. The present
    // segments must still normalise to 1.
    let x = Tensor::from_vec(vec![1.0, 3.0, -2.0], 3, 1).requires_grad();
    let p = x.segment_softmax(&[0, 0, 2]);
    let v = p.to_vec();
    assert!((v[0] + v[1] - 1.0).abs() < 1e-6);
    assert!((v[2] - 1.0).abs() < 1e-6, "singleton segment is exactly 1");
    assert!(v.iter().all(|p| p.is_finite()));

    // Backward through the degenerate grouping must stay finite.
    p.sum_all().backward();
    assert!(x.grad_vec().iter().all(|g| g.is_finite()));
}

#[test]
fn segment_softmax_on_zero_rows_is_empty() {
    let x = Tensor::from_vec(vec![], 0, 1);
    let p = x.segment_softmax(&[]);
    assert_eq!(p.shape(), (0, 1));
    assert!(p.to_vec().is_empty());
}

#[test]
fn segment_softmax_singleton_groups_are_saturated() {
    // Every row its own group: softmax of a single logit is 1 regardless
    // of magnitude (no overflow thanks to the internal max shift).
    let x = Tensor::from_vec(vec![500.0, -500.0], 2, 1);
    let v = x.segment_softmax(&[0, 1]).to_vec();
    assert_eq!(v, vec![1.0, 1.0]);
}

// ---------------- BinCsr degenerate shapes ----------------

#[test]
fn bin_csr_zero_rows_and_cols() {
    let m = BinCsr::from_rows(0, 0, &[]);
    assert_eq!(m.rows(), 0);
    assert_eq!(m.cols(), 0);
    assert_eq!(m.nnz(), 0);
    assert_eq!(m.iter().count(), 0);
}

#[test]
fn bin_csr_zero_cols_with_empty_rows() {
    let m = BinCsr::from_rows(3, 0, &[vec![], vec![], vec![]]);
    assert_eq!(m.rows(), 3);
    assert_eq!(m.cols(), 0);
    assert_eq!(m.nnz(), 0);
    for r in 0..3 {
        assert!(m.row(r).is_empty());
    }
}

#[test]
fn sp_matvec_with_zero_column_matrix() {
    // 2×0 matrix times a [0,1] vector: a defined, all-zero [2,1] result.
    let m = Arc::new(BinCsr::from_rows(2, 0, &[vec![], vec![]]));
    let x = Tensor::from_vec(vec![], 0, 1).requires_grad();
    let y = x.sp_matvec(&m);
    assert_eq!(y.shape(), (2, 1));
    assert_eq!(y.to_vec(), vec![0.0, 0.0]);
    y.sum_all().backward();
    assert!(x.grad_vec().is_empty());
}

// ---------------- fallible gather ----------------

#[test]
fn try_gather_rows_rejects_out_of_range() {
    let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], 3, 1);
    let err = t.try_gather_rows(&[0, 2, 3]).unwrap_err();
    assert_eq!(err.index, 3);
    assert_eq!(err.bound, 3);
    assert!(err.to_string().contains("index 3 out of bounds for 3 rows"));
}

#[test]
fn try_gather_rows_in_range_matches_gather_rows() {
    let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], 3, 1);
    let ok = t.try_gather_rows(&[2, 0]).unwrap();
    assert_eq!(ok.to_vec(), t.gather_rows(&[2, 0]).to_vec());
}

#[test]
#[should_panic(expected = "out of bounds")]
fn gather_rows_panic_message_names_the_bound() {
    let t = Tensor::from_vec(vec![1.0], 1, 1);
    let _ = t.gather_rows(&[1]);
}
