//! Equivalence suite for the blocked kernels and fused ops.
//!
//! The blocked `matmul_nn/nt/tn` kernels claim bit-identity with the naive
//! reference loops; the fused ops (`sigmoid_scale`, `bias_leaky_relu`,
//! `softmax_xent`) claim bit-identity with their unfused chains in both the
//! forward value and the gradient. Proptest drives shapes through every
//! blocking remainder case (rows % 4, cols % 8/64, nt width % 8) with
//! coefficient grids that include exact zeros, so the zero-skip paths are
//! covered too. Values come from a quarter-integer grid in `[-4, 4]`: finite,
//! no `-0.0`, and no products that underflow — the regime the kernels'
//! bit-identity contract is stated for.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use revelio_tensor::kernels::{
    matmul_nn, matmul_nn_naive, matmul_nt, matmul_nt_naive, matmul_tn, matmul_tn_naive,
};
use revelio_tensor::Tensor;

/// Maps raw integer draws onto the quarter-integer grid `[-4, 4]`, turning
/// sentinel draws into exact `+0.0` so the zero-skip paths get exercised.
fn grid(qs: &[i32]) -> Vec<f32> {
    qs.iter()
        .map(|&q| {
            if q % 6 == 0 {
                0.0
            } else {
                (q % 17 - 8) as f32 * 0.25
            }
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_nn_bit_identical_to_naive(
        m in 1usize..40,
        k in 1usize..24,
        n in 1usize..80,
        qa in prop::collection::vec(0i32..1000, 40 * 24),
        qb in prop::collection::vec(0i32..1000, 24 * 80),
    ) {
        let a = grid(&qa[..m * k]);
        let b = grid(&qb[..k * n]);
        prop_assert_eq!(
            bits(&matmul_nn(&a, m, k, &b, n)),
            bits(&matmul_nn_naive(&a, m, k, &b, n))
        );
    }

    #[test]
    fn blocked_nt_bit_identical_to_naive(
        m in 1usize..40,
        n in 1usize..24,
        k in 1usize..40,
        qa in prop::collection::vec(0i32..1000, 40 * 24),
        qb in prop::collection::vec(0i32..1000, 40 * 24),
    ) {
        let a = grid(&qa[..m * n]);
        let b = grid(&qb[..k * n]);
        prop_assert_eq!(
            bits(&matmul_nt(&a, m, n, &b, k)),
            bits(&matmul_nt_naive(&a, m, n, &b, k))
        );
    }

    #[test]
    fn blocked_tn_bit_identical_to_naive(
        m in 1usize..40,
        k in 1usize..24,
        n in 1usize..80,
        qa in prop::collection::vec(0i32..1000, 40 * 24),
        qb in prop::collection::vec(0i32..1000, 40 * 80),
    ) {
        let a = grid(&qa[..m * k]);
        let b = grid(&qb[..m * n]);
        prop_assert_eq!(
            bits(&matmul_tn(&a, m, k, &b, n)),
            bits(&matmul_tn_naive(&a, m, k, &b, n))
        );
    }

    #[test]
    fn sigmoid_scale_matches_unfused_mask_chain(
        rows in 1usize..40,
        qs in prop::collection::vec(0i32..1000, 40 + 1),
    ) {
        // The mask-model shape: a [rows,1] column scaled by a scalar weight
        // broadcast through gather_rows — exactly the chain layer_masks ran
        // before the fusion.
        let vals = grid(&qs);
        let x = vals[..rows].to_vec();
        let wv = vals[rows];

        let a = Tensor::from_vec(x.clone(), rows, 1).requires_grad();
        let w = Tensor::from_vec(vec![wv], 1, 1).requires_grad();
        let fused = a.sigmoid_scale(&w);

        let a2 = Tensor::from_vec(x, rows, 1).requires_grad();
        let w2 = Tensor::from_vec(vec![wv], 1, 1).requires_grad();
        let expanded = a2.mul(&w2.gather_rows(&vec![0usize; rows])).sigmoid();

        prop_assert_eq!(bits(&fused.to_vec()), bits(&expanded.to_vec()));

        fused.sum_all().backward();
        expanded.sum_all().backward();
        prop_assert_eq!(bits(&a.grad_vec()), bits(&a2.grad_vec()));
        prop_assert_eq!(bits(&w.grad_vec()), bits(&w2.grad_vec()));
    }

    #[test]
    fn sigmoid_scale_elementwise_matches_unfused_chain(
        rows in 1usize..10,
        cols in 1usize..10,
        qs in prop::collection::vec(0i32..1000, 10 * 10 * 2),
    ) {
        let vals = grid(&qs);
        let x = vals[..rows * cols].to_vec();
        let wv = vals[rows * cols..2 * rows * cols].to_vec();

        let a = Tensor::from_vec(x.clone(), rows, cols).requires_grad();
        let w = Tensor::from_vec(wv.clone(), rows, cols).requires_grad();
        let fused = a.sigmoid_scale(&w);

        let a2 = Tensor::from_vec(x, rows, cols).requires_grad();
        let w2 = Tensor::from_vec(wv, rows, cols).requires_grad();
        let unfused = a2.mul(&w2).sigmoid();

        prop_assert_eq!(bits(&fused.to_vec()), bits(&unfused.to_vec()));

        fused.sum_all().backward();
        unfused.sum_all().backward();
        prop_assert_eq!(bits(&a.grad_vec()), bits(&a2.grad_vec()));
        prop_assert_eq!(bits(&w.grad_vec()), bits(&w2.grad_vec()));
    }

    #[test]
    fn bias_leaky_relu_matches_unfused_chain(
        rows in 1usize..10,
        cols in 1usize..10,
        qs in prop::collection::vec(0i32..1000, 10 * 10 + 10),
    ) {
        let vals = grid(&qs);
        let x = vals[..rows * cols].to_vec();
        let b = vals[rows * cols..rows * cols + cols].to_vec();

        let a = Tensor::from_vec(x.clone(), rows, cols).requires_grad();
        let bias = Tensor::from_vec(b.clone(), 1, cols).requires_grad();
        let fused = a.bias_leaky_relu(&bias, 0.01);

        let a2 = Tensor::from_vec(x, rows, cols).requires_grad();
        let bias2 = Tensor::from_vec(b, 1, cols).requires_grad();
        let unfused = a2.add_row_broadcast(&bias2).leaky_relu(0.01);

        prop_assert_eq!(bits(&fused.to_vec()), bits(&unfused.to_vec()));

        fused.sum_all().backward();
        unfused.sum_all().backward();
        prop_assert_eq!(bits(&a.grad_vec()), bits(&a2.grad_vec()));
        prop_assert_eq!(bits(&bias.grad_vec()), bits(&bias2.grad_vec()));
    }

    #[test]
    fn softmax_xent_matches_unfused_chain(
        rows in 1usize..8,
        cols in 2usize..8,
        qs in prop::collection::vec(0i32..1000, 8 * 8),
        tsel in prop::collection::vec(0usize..8, 8),
    ) {
        let vals = grid(&qs);
        let x = vals[..rows * cols].to_vec();
        let targets: Vec<usize> = (0..rows).map(|i| tsel[i] % cols).collect();

        let a = Tensor::from_vec(x.clone(), rows, cols).requires_grad();
        let fused = a.softmax_xent(&targets);

        let a2 = Tensor::from_vec(x, rows, cols).requires_grad();
        let unfused = a2.log_softmax_rows().nll_loss(&targets);

        prop_assert_eq!(fused.item().to_bits(), unfused.item().to_bits());

        fused.backward();
        unfused.backward();
        prop_assert_eq!(bits(&a.grad_vec()), bits(&a2.grad_vec()));
    }
}
