//! Property-based gradient checks: for randomly generated inputs, the
//! analytic gradients of composed operators must match central finite
//! differences.

use proptest::prelude::*;
use revelio_tensor::Tensor;

/// Relative-tolerance comparison for gradient checks on f32.
fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 2e-2 * scale
}

/// Generic gradient check: `f` builds a scalar loss from a leaf tensor.
fn gradcheck(data: Vec<f32>, rows: usize, cols: usize, f: impl Fn(&Tensor) -> Tensor) {
    let x = Tensor::from_vec(data.clone(), rows, cols).requires_grad();
    let loss = f(&x);
    loss.backward();
    let analytic = x.grad_vec();

    let eps = 1e-2f32;
    for i in 0..data.len() {
        let mut plus = data.clone();
        plus[i] += eps;
        let mut minus = data.clone();
        minus[i] -= eps;
        let lp = f(&Tensor::from_vec(plus, rows, cols)).item() as f64;
        let lm = f(&Tensor::from_vec(minus, rows, cols)).item() as f64;
        let numeric = (lp - lm) / (2.0 * eps as f64);
        assert!(
            close(analytic[i] as f64, numeric),
            "grad mismatch at {i}: analytic {} vs numeric {numeric}",
            analytic[i]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tanh_sigmoid_chain(data in prop::collection::vec(-1.5f32..1.5, 6)) {
        gradcheck(data, 2, 3, |x| x.tanh_t().sigmoid().sum_all());
    }

    #[test]
    fn matmul_with_activation(data in prop::collection::vec(-1.0f32..1.0, 6)) {
        let w = Tensor::from_vec(vec![0.3, -0.7, 0.2, 0.9, -0.4, 0.1], 3, 2);
        gradcheck(data, 2, 3, move |x| x.matmul(&w).tanh_t().sum_all());
    }

    #[test]
    fn softplus_exp_mean(data in prop::collection::vec(-2.0f32..2.0, 4)) {
        gradcheck(data, 4, 1, |x| x.softplus().mean_all());
    }

    #[test]
    fn log_softmax_nll(data in prop::collection::vec(-2.0f32..2.0, 8)) {
        gradcheck(data, 2, 4, |x| x.log_softmax_rows().nll_loss(&[1, 3]));
    }

    #[test]
    fn div_and_mul(data in prop::collection::vec(0.5f32..2.0, 4)) {
        let y = Tensor::from_vec(vec![1.5, 2.5, 0.7, 1.1], 2, 2);
        gradcheck(data, 2, 2, move |x| x.mul(&y).div(&y.add_scalar(1.0)).sum_all());
    }

    #[test]
    fn gather_scatter_broadcast(data in prop::collection::vec(-1.0f32..1.0, 6)) {
        let scale = Tensor::from_vec(vec![0.5, 1.5, -0.5, 2.0], 4, 1);
        gradcheck(data, 3, 2, move |x| {
            x.gather_rows(&[0, 2, 1, 0])
                .mul_col_broadcast(&scale)
                .scatter_add_rows(&[1, 0, 1, 2], 3)
                .sum_all()
        });
    }

    #[test]
    fn segment_softmax_weighted(data in prop::collection::vec(-2.0f32..2.0, 5)) {
        let w = Tensor::from_vec(vec![1.0, -1.0, 2.0, 0.5, 1.5], 5, 1);
        gradcheck(data, 5, 1, move |x| {
            x.segment_softmax(&[0, 0, 1, 1, 1]).mul(&w).sum_all()
        });
    }

    #[test]
    fn forward_values_bounded(data in prop::collection::vec(-10.0f32..10.0, 12)) {
        let x = Tensor::from_vec(data, 3, 4);
        for v in x.sigmoid().to_vec() {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        for v in x.tanh_t().to_vec() {
            prop_assert!((-1.0..=1.0).contains(&v));
        }
        // log-softmax rows exponentiate to a distribution.
        let ls = x.log_softmax_rows();
        for r in 0..3 {
            let s: f32 = (0..4).map(|c| ls.get(r, c).exp()).sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
    }
}
