//! Finite-difference gradient checks for every public differentiable op.
//!
//! Each test perturbs every element of every leaf with central differences
//! (`eps = 1e-2`) and requires the analytic gradient to agree within a
//! relative error of `1e-2`. Inputs are chosen away from kinks (`relu`,
//! `leaky_relu`, `clamp_min`) and away from singularities (`div`, `ln`).

#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use revelio_tensor::{grad_check, BinCsr, Tensor};

const EPS: f32 = 1e-2;
const TOL: f32 = 1e-2;

/// A 2×3 leaf with values clear of all activation kinks.
fn leaf_a() -> Tensor {
    Tensor::from_vec(vec![0.6, -0.9, 1.4, -0.3, 0.8, -1.2], 2, 3).requires_grad()
}

/// A strictly positive 2×3 leaf (safe denominator / `ln` argument).
fn leaf_pos() -> Tensor {
    Tensor::from_vec(vec![1.3, 0.7, 2.1, 0.9, 1.8, 0.5], 2, 3).requires_grad()
}

/// Weights the elements of `t` with a deterministic ramp and sums, so the
/// upstream gradient is distinct per element (a plain `sum_all` would feed
/// an all-ones gradient and miss transposition/permutation bugs).
fn weighted_sum(t: &Tensor) -> Tensor {
    let (m, n) = t.shape();
    let w: Vec<f32> = (0..m * n).map(|i| 0.3 + 0.17 * i as f32).collect();
    t.mul(&Tensor::from_vec(w, m, n)).sum_all()
}

fn check(f: impl FnMut() -> Tensor, leaves: &[Tensor]) {
    let report = grad_check(f, leaves, EPS, TOL).unwrap();
    assert!(report.checked > 0);
}

// ---------------- elementwise binary ----------------

#[test]
fn grad_add() {
    let (a, b) = (leaf_a(), leaf_pos());
    check(|| weighted_sum(&a.add(&b)), &[a.clone(), b.clone()]);
}

#[test]
fn grad_sub() {
    let (a, b) = (leaf_a(), leaf_pos());
    check(|| weighted_sum(&a.sub(&b)), &[a.clone(), b.clone()]);
}

#[test]
fn grad_mul() {
    let (a, b) = (leaf_a(), leaf_pos());
    check(|| weighted_sum(&a.mul(&b)), &[a.clone(), b.clone()]);
}

#[test]
fn grad_div() {
    let (a, b) = (leaf_a(), leaf_pos());
    check(|| weighted_sum(&a.div(&b)), &[a.clone(), b.clone()]);
}

// ---------------- elementwise unary ----------------

#[test]
fn grad_neg() {
    let a = leaf_a();
    check(|| weighted_sum(&a.neg()), std::slice::from_ref(&a));
}

#[test]
fn grad_relu() {
    let a = leaf_a(); // all elements ≥ 0.3 from the kink at 0
    check(|| weighted_sum(&a.relu()), std::slice::from_ref(&a));
}

#[test]
fn grad_leaky_relu() {
    let a = leaf_a();
    check(
        || weighted_sum(&a.leaky_relu(0.01)),
        std::slice::from_ref(&a),
    );
}

#[test]
fn grad_tanh() {
    let a = leaf_a();
    check(|| weighted_sum(&a.tanh_t()), std::slice::from_ref(&a));
}

#[test]
fn grad_sigmoid() {
    let a = leaf_a();
    check(|| weighted_sum(&a.sigmoid()), std::slice::from_ref(&a));
}

#[test]
fn grad_exp() {
    let a = leaf_a();
    check(|| weighted_sum(&a.exp()), std::slice::from_ref(&a));
}

#[test]
fn grad_ln() {
    let a = leaf_pos();
    check(|| weighted_sum(&a.ln()), std::slice::from_ref(&a));
}

#[test]
fn grad_softplus() {
    let a = leaf_a();
    check(|| weighted_sum(&a.softplus()), std::slice::from_ref(&a));
}

#[test]
fn grad_add_scalar() {
    let a = leaf_a();
    check(
        || weighted_sum(&a.add_scalar(0.75)),
        std::slice::from_ref(&a),
    );
}

#[test]
fn grad_mul_scalar() {
    let a = leaf_a();
    check(
        || weighted_sum(&a.mul_scalar(-1.5)),
        std::slice::from_ref(&a),
    );
}

#[test]
fn grad_clamp_min() {
    let a = leaf_a(); // closest element to the clamp at -1.5 is -1.2
    check(
        || weighted_sum(&a.clamp_min(-1.5)),
        std::slice::from_ref(&a),
    );
}

// ---------------- linear algebra & broadcasts ----------------

#[test]
fn grad_matmul() {
    let a = leaf_a();
    let b = Tensor::from_vec(vec![0.4, -0.6, 1.1, 0.2, -0.8, 0.9], 3, 2).requires_grad();
    check(|| weighted_sum(&a.matmul(&b)), &[a.clone(), b.clone()]);
}

#[test]
fn grad_add_row_broadcast() {
    let a = leaf_a();
    let bias = Tensor::from_vec(vec![0.3, -0.2, 0.5], 1, 3).requires_grad();
    check(
        || weighted_sum(&a.add_row_broadcast(&bias)),
        &[a.clone(), bias.clone()],
    );
}

#[test]
fn grad_mul_col_broadcast() {
    let a = leaf_a();
    let scale = Tensor::from_vec(vec![0.7, -1.3], 2, 1).requires_grad();
    check(
        || weighted_sum(&a.mul_col_broadcast(&scale)),
        &[a.clone(), scale.clone()],
    );
}

// ---------------- reductions ----------------

#[test]
fn grad_sum_all() {
    let a = leaf_a();
    check(|| a.sum_all(), std::slice::from_ref(&a));
}

#[test]
fn grad_mean_all() {
    let a = leaf_a();
    check(|| a.mean_all(), std::slice::from_ref(&a));
}

#[test]
fn grad_mean_rows() {
    let a = leaf_a();
    check(|| weighted_sum(&a.mean_rows()), std::slice::from_ref(&a));
}

// ---------------- softmax / loss ----------------

#[test]
fn grad_log_softmax_rows() {
    let a = leaf_a();
    check(
        || weighted_sum(&a.log_softmax_rows()),
        std::slice::from_ref(&a),
    );
}

#[test]
fn grad_nll_loss() {
    let a = leaf_a();
    check(
        || a.log_softmax_rows().nll_loss(&[2, 0]),
        std::slice::from_ref(&a),
    );
}

#[test]
fn grad_softmax_xent() {
    let a = leaf_a();
    check(|| a.softmax_xent(&[2, 0]), std::slice::from_ref(&a));
}

// ---------------- fused ops ----------------

#[test]
fn grad_sigmoid_scale_scalar_weight() {
    let a = leaf_a();
    let w = Tensor::from_vec(vec![1.7], 1, 1).requires_grad();
    check(
        || weighted_sum(&a.sigmoid_scale(&w)),
        &[a.clone(), w.clone()],
    );
}

#[test]
fn grad_sigmoid_scale_elementwise_weight() {
    let (a, w) = (leaf_a(), leaf_pos());
    check(
        || weighted_sum(&a.sigmoid_scale(&w)),
        &[a.clone(), w.clone()],
    );
}

#[test]
fn grad_bias_leaky_relu() {
    let a = leaf_a(); // elements clear of the kink once the bias shifts them
    let bias = Tensor::from_vec(vec![0.21, -0.17, 0.33], 1, 3).requires_grad();
    check(
        || weighted_sum(&a.bias_leaky_relu(&bias, 0.01)),
        &[a.clone(), bias.clone()],
    );
}

#[test]
fn grad_matmul_nt() {
    let a = leaf_a();
    // b shares the column count (3) for the transposed-right product.
    let b = Tensor::from_vec(vec![0.4, -0.6, 1.1, 0.2, -0.8, 0.9], 2, 3).requires_grad();
    check(|| weighted_sum(&a.matmul_nt(&b)), &[a.clone(), b.clone()]);
}

#[test]
fn grad_matmul_tn() {
    let a = leaf_a();
    // b shares the row count (2) for the transposed-left product.
    let b = Tensor::from_vec(vec![0.4, -0.6, 1.1, 0.2, -0.8, 0.9, 0.7, -0.2], 2, 4).requires_grad();
    check(|| weighted_sum(&a.matmul_tn(&b)), &[a.clone(), b.clone()]);
}

#[test]
fn grad_segment_softmax() {
    // Two segments of different sizes, two columns.
    let a = Tensor::from_vec(vec![0.5, -0.8, 1.2, 0.3, -0.4, 0.9, 0.1, -1.1], 4, 2).requires_grad();
    check(
        || weighted_sum(&a.segment_softmax(&[0, 0, 0, 1])),
        std::slice::from_ref(&a),
    );
}

// ---------------- indexing / shaping ----------------

#[test]
fn grad_gather_rows() {
    let a = leaf_a();
    // Row 0 gathered twice: its gradient must accumulate.
    check(
        || weighted_sum(&a.gather_rows(&[1, 0, 0])),
        std::slice::from_ref(&a),
    );
}

#[test]
fn grad_scatter_add_rows() {
    let a = leaf_a();
    // Both rows collide in output row 1; output row 0 stays empty.
    check(
        || weighted_sum(&a.scatter_add_rows(&[1, 1], 3)),
        std::slice::from_ref(&a),
    );
}

#[test]
fn grad_slice_cols() {
    let a = leaf_a();
    check(
        || weighted_sum(&a.slice_cols(1, 3)),
        std::slice::from_ref(&a),
    );
}

#[test]
fn grad_concat_cols() {
    let (a, b) = (leaf_a(), leaf_pos());
    check(|| weighted_sum(&a.concat_cols(&b)), &[a.clone(), b.clone()]);
}

// ---------------- sparse ----------------

#[test]
fn grad_sp_matvec() {
    // 3×4 incidence-like matrix with an empty row and a shared column.
    let mat = Arc::new(BinCsr::from_rows(
        3,
        4,
        &[vec![0, 2], vec![], vec![1, 2, 3]],
    ));
    let x = Tensor::from_vec(vec![0.6, -0.9, 1.4, -0.3], 4, 1).requires_grad();
    check(
        || weighted_sum(&x.sp_matvec(&mat)),
        std::slice::from_ref(&x),
    );
}
