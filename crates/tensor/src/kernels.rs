//! Dense matmul kernels: naive references and cache-blocked, SIMD-friendly
//! replacements.
//!
//! Three row-major products back the autograd engine: `nn` (`A·B`, the
//! forward), `nt` (`A·Bᵀ`, the left backward), and `tn` (`Aᵀ·B`, the right
//! backward). Each exists in two forms:
//!
//! * `*_naive` — the original triple loops, kept as the semantic reference
//!   for the equivalence suite and the `kernels` microbench.
//! * the blocked kernel (same name, no suffix) — what [`crate::Tensor`]
//!   actually calls.
//!
//! **Bit-identity contract.** For finite inputs the blocked kernels produce
//! the same bits as the naive ones, element for element. That holds because
//! every output element keeps a *single* accumulator updated in the same
//! ascending reduction order as the reference — blocking only changes which
//! elements advance together, never the per-element summation chain:
//!
//! * `nn`/`tn` hold a `ROW_BLOCK × LANES` register tile of accumulators and
//!   stream the shared operand through it, so each output element is written
//!   to memory exactly once instead of once per reduction step. The tile
//!   accumulates `0.0 * b` terms the naive kernels' zero-skip branch would
//!   elide, which cannot change the bits of a finite accumulator: the
//!   product is `±0.0` (inputs are finite), and a running sum seeded with
//!   `+0.0` over finite terms is `-0.0` only when every term so far was
//!   `-0.0` — impossible here because the equivalence suite and all
//!   production tensors exclude `-0.0` coefficients and underflowing
//!   products. Adding `±0.0` to anything else is the identity.
//! * `nt` widens to eight *independent* accumulator chains (one per output
//!   column); each chain is the reference dot product verbatim, the win is
//!   instruction-level parallelism on what is otherwise a latency-bound
//!   serial dependency.
//!
//! The inner loops run over fixed-size arrays and fixed-width slices so
//! LLVM can prove the trip count and emit vector code without `unsafe`
//! (the workspace forbids it).

/// Register-tile height for the `nn`/`tn` kernels: accumulator rows that
/// stay live across the whole reduction.
pub const ROW_BLOCK: usize = 4;

/// Register-tile width for the `nn`/`tn` kernels: 8 f32 = one 256-bit
/// vector lane group, so a `ROW_BLOCK × LANES` tile is four vector
/// registers of accumulators.
pub const LANES: usize = 8;

/// Accumulator-chain width for the `nt` kernel.
pub const NT_WIDTH: usize = 8;

/// Reference `a (m×k) · b (k×n)`, all row-major, ikj loop order.
pub fn matmul_nn_naive(a: &[f32], m: usize, k: usize, b: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Reference `a (m×n) · bᵀ` where `b` is `(k×n)` row-major; result is `m×k`.
pub fn matmul_nt_naive(a: &[f32], m: usize, n: usize, b: &[f32], k: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * k];
    for i in 0..m {
        let arow = &a[i * n..(i + 1) * n];
        for j in 0..k {
            let brow = &b[j * n..(j + 1) * n];
            let mut acc = 0.0f32;
            for (av, bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * k + j] = acc;
        }
    }
    out
}

/// Reference `aᵀ · b` where `a` is `(m×k)` and `b` is `(m×n)` row-major;
/// result `k×n`.
pub fn matmul_tn_naive(a: &[f32], m: usize, k: usize, b: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; k * n];
    for i in 0..m {
        let brow = &b[i * n..(i + 1) * n];
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[p * n..(p + 1) * n];
            for (o, bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Blocked `a (m×k) · b (k×n)`: a `ROW_BLOCK × LANES` register tile of
/// accumulators per output block; `b` streams through the tile and each
/// output element is stored exactly once.
///
/// Per output element the reduction is the reference one — `p` ascends and
/// the element itself is the only accumulator — so results are bit-identical
/// to [`matmul_nn_naive`] for finite inputs (see the module contract).
pub fn matmul_nn(a: &[f32], m: usize, k: usize, b: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    let m4 = m - m % ROW_BLOCK;
    let n8 = n - n % LANES;
    for i in (0..m4).step_by(ROW_BLOCK) {
        let arows: [&[f32]; ROW_BLOCK] = core::array::from_fn(|r| &a[(i + r) * k..(i + r + 1) * k]);
        for j in (0..n8).step_by(LANES) {
            let mut acc = [[0.0f32; LANES]; ROW_BLOCK];
            for p in 0..k {
                let bv = &b[p * n + j..p * n + j + LANES];
                for r in 0..ROW_BLOCK {
                    let av = arows[r][p];
                    for t in 0..LANES {
                        acc[r][t] += av * bv[t];
                    }
                }
            }
            for r in 0..ROW_BLOCK {
                out[(i + r) * n + j..(i + r) * n + j + LANES].copy_from_slice(&acc[r]);
            }
        }
        // Tail columns (`n % LANES`): one streaming pass per column with a
        // scalar accumulator per row, same ascending `p` order.
        for j in n8..n {
            let mut acc = [0.0f32; ROW_BLOCK];
            for p in 0..k {
                let bv = b[p * n + j];
                for r in 0..ROW_BLOCK {
                    acc[r] += arows[r][p] * bv;
                }
            }
            for (r, &v) in acc.iter().enumerate() {
                out[(i + r) * n + j] = v;
            }
        }
    }
    // Remainder rows: the reference loop verbatim.
    for i in m4..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Blocked `a (m×n) · bᵀ` (`b` is `k×n`): eight independent dot-product
/// chains per step. Each chain accumulates in the reference order, so the
/// result is bit-identical to [`matmul_nt_naive`].
pub fn matmul_nt(a: &[f32], m: usize, n: usize, b: &[f32], k: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * k];
    for i in 0..m {
        let arow = &a[i * n..(i + 1) * n];
        let orow = &mut out[i * k..(i + 1) * k];
        let mut j = 0;
        while j + NT_WIDTH <= k {
            let rows: [&[f32]; NT_WIDTH] =
                core::array::from_fn(|t| &b[(j + t) * n..(j + t + 1) * n]);
            let mut acc = [0.0f32; NT_WIDTH];
            for (p, &av) in arow.iter().enumerate() {
                for t in 0..NT_WIDTH {
                    acc[t] += av * rows[t][p];
                }
            }
            orow[j..j + NT_WIDTH].copy_from_slice(&acc);
            j += NT_WIDTH;
        }
        for (jj, o) in orow.iter_mut().enumerate().skip(j) {
            let brow = &b[jj * n..(jj + 1) * n];
            let mut acc = 0.0f32;
            for (av, bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
    out
}

/// Blocked `aᵀ · b` (`a` is `m×k`, `b` is `m×n`): a `ROW_BLOCK × LANES`
/// register tile of output accumulators; both operands stream through it
/// over `i` and each output element is stored exactly once (the naive
/// kernel rewrites every output row `m` times).
///
/// Per output element the reduction over `i` ascends with a single
/// accumulator, so the result is bit-identical to [`matmul_tn_naive`] for
/// finite inputs.
pub fn matmul_tn(a: &[f32], m: usize, k: usize, b: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; k * n];
    let k4 = k - k % ROW_BLOCK;
    let n8 = n - n % LANES;
    for p in (0..k4).step_by(ROW_BLOCK) {
        for j in (0..n8).step_by(LANES) {
            let mut acc = [[0.0f32; LANES]; ROW_BLOCK];
            for i in 0..m {
                let av = &a[i * k + p..i * k + p + ROW_BLOCK];
                let bv = &b[i * n + j..i * n + j + LANES];
                for r in 0..ROW_BLOCK {
                    for t in 0..LANES {
                        acc[r][t] += av[r] * bv[t];
                    }
                }
            }
            for r in 0..ROW_BLOCK {
                out[(p + r) * n + j..(p + r) * n + j + LANES].copy_from_slice(&acc[r]);
            }
        }
        // Tail columns: one streaming pass per column with a scalar
        // accumulator per row, ascending `i`.
        for j in n8..n {
            let mut acc = [0.0f32; ROW_BLOCK];
            for i in 0..m {
                let av = &a[i * k + p..i * k + p + ROW_BLOCK];
                let bv = b[i * n + j];
                for r in 0..ROW_BLOCK {
                    acc[r] += av[r] * bv;
                }
            }
            for (r, &v) in acc.iter().enumerate() {
                out[(p + r) * n + j] = v;
            }
        }
    }
    // Remainder output rows (`k % ROW_BLOCK`): the reference loop shape.
    for p in k4..k {
        for j in 0..n {
            let mut acc = 0.0f32;
            for i in 0..m {
                acc += a[i * k + p] * b[i * n + j];
            }
            out[p * n + j] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, seed: u32) -> Vec<f32> {
        // Deterministic non-trivial values with exact zeros sprinkled in so
        // the zero-skip paths are exercised.
        (0..len)
            .map(|i| {
                let v = ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 8) % 17;
                if v == 0 {
                    0.0
                } else {
                    (v as f32 - 8.0) * 0.25
                }
            })
            .collect()
    }

    fn check_shape(m: usize, k: usize, n: usize) {
        let a = pattern(m * k, 1);
        let b = pattern(k * n, 2);
        let nn = matmul_nn(&a, m, k, &b, n);
        let nn_ref = matmul_nn_naive(&a, m, k, &b, n);
        assert_eq!(
            nn.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            nn_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "nn mismatch at {m}x{k}x{n}"
        );
        // nt: a is m×n here against b k×n.
        let a2 = pattern(m * n, 3);
        let b2 = pattern(k * n, 4);
        let nt = matmul_nt(&a2, m, n, &b2, k);
        let nt_ref = matmul_nt_naive(&a2, m, n, &b2, k);
        assert_eq!(
            nt.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            nt_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "nt mismatch at {m}x{k}x{n}"
        );
        let a3 = pattern(m * k, 5);
        let b3 = pattern(m * n, 6);
        let tn = matmul_tn(&a3, m, k, &b3, n);
        let tn_ref = matmul_tn_naive(&a3, m, k, &b3, n);
        assert_eq!(
            tn.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            tn_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "tn mismatch at {m}x{k}x{n}"
        );
    }

    #[test]
    fn blocked_kernels_match_naive_on_awkward_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (2, 3, 1),
            (3, 1, 2),
            (4, 4, 8),
            (5, 7, 9),
            (6, 16, 16),
            (7, 8, 65),
            (13, 5, 67),
            (16, 33, 64),
            (17, 2, 130),
        ] {
            check_shape(m, k, n);
        }
    }

    #[test]
    fn zero_rows_and_columns_skip_identically() {
        // An `a` that is entirely zero except one coefficient per row block.
        let (m, k, n) = (8, 8, 24);
        let mut a = vec![0.0f32; m * k];
        a[3] = 1.5;
        a[k + 1] = -2.0;
        let b = pattern(k * n, 9);
        assert_eq!(matmul_nn(&a, m, k, &b, n), matmul_nn_naive(&a, m, k, &b, n));
        assert_eq!(matmul_tn(&a, m, k, &b, n), matmul_tn_naive(&a, m, k, &b, n));
    }
}
