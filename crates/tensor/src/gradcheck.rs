//! Finite-difference gradient checking.
//!
//! [`grad_check`] compares the gradients produced by reverse-mode
//! differentiation against central differences, perturbing each element of
//! each leaf tensor in place. The objective closure is re-evaluated from the
//! leaves' *current* data on every call, so it composes with models that hold
//! their parameters internally (pass `model.params()` as the leaves and
//! rebuild the forward tape inside the closure).
//!
//! # Example
//!
//! ```
//! use revelio_tensor::{grad_check, Tensor};
//!
//! let x = Tensor::from_vec(vec![0.3, -0.7], 1, 2).requires_grad();
//! let report = grad_check(|| x.tanh_t().sum_all(), std::slice::from_ref(&x), 1e-2, 1e-2)
//!     .expect("analytic and numeric gradients agree");
//! assert!(report.max_rel_err < 1e-2);
//! ```

use std::fmt;

use crate::tensor::Tensor;

/// The first disagreement found by [`grad_check`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckFailure {
    /// Index of the offending leaf in the `leaves` slice.
    pub leaf: usize,
    /// Flat element index within that leaf.
    pub elem: usize,
    /// The gradient reverse-mode differentiation produced.
    pub analytic: f32,
    /// The central-difference estimate.
    pub numeric: f32,
    /// `|analytic - numeric| / max(1, |analytic|, |numeric|)`.
    pub rel_err: f32,
}

impl fmt::Display for GradCheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gradient mismatch at leaf {} element {}: analytic {} vs numeric {} (rel err {})",
            self.leaf, self.elem, self.analytic, self.numeric, self.rel_err
        )
    }
}

impl std::error::Error for GradCheckFailure {}

/// Summary of a successful [`grad_check`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// The largest relative error observed across all checked elements.
    pub max_rel_err: f32,
    /// How many leaf elements were perturbed and compared.
    pub checked: usize,
}

/// Checks the reverse-mode gradient of a scalar objective against central
/// differences.
///
/// `f` must rebuild the computation from the leaves' current data each time
/// it is called and return a `1 × 1` tensor. Every element of every leaf is
/// perturbed by `±eps`; the check fails when the relative error
/// `|a - n| / max(1, |a|, |n|)` exceeds `tol` (or is non-finite).
///
/// Leaves are restored to their original data and their gradients cleared
/// before returning.
///
/// # Errors
///
/// Returns the first [`GradCheckFailure`] encountered.
///
/// # Panics
///
/// Panics if `f` does not return a scalar tensor.
pub fn grad_check(
    mut f: impl FnMut() -> Tensor,
    leaves: &[Tensor],
    eps: f32,
    tol: f32,
) -> Result<GradCheckReport, GradCheckFailure> {
    for leaf in leaves {
        leaf.zero_grad();
    }
    let out = f();
    assert_eq!(out.shape(), (1, 1), "grad_check objective must be scalar");
    out.backward();
    let analytic: Vec<Vec<f32>> = leaves.iter().map(Tensor::grad_vec).collect();
    for leaf in leaves {
        leaf.zero_grad();
    }

    let mut max_rel_err = 0.0f32;
    let mut checked = 0usize;
    for (li, leaf) in leaves.iter().enumerate() {
        let base = leaf.to_vec();
        let mut probe = base.clone();
        for i in 0..base.len() {
            probe[i] = base[i] + eps;
            leaf.set_data(&probe);
            let plus = f().item();
            probe[i] = base[i] - eps;
            leaf.set_data(&probe);
            let minus = f().item();
            probe[i] = base[i];
            leaf.set_data(&probe);

            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic[li][i];
            let rel_err = (a - numeric).abs() / a.abs().max(numeric.abs()).max(1.0);
            checked += 1;
            // `!(rel_err <= tol)` rather than `rel_err > tol`: the negated
            // form is also true when rel_err is NaN, which must fail.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(rel_err <= tol) {
                leaf.set_data(&base);
                return Err(GradCheckFailure {
                    leaf: li,
                    elem: i,
                    analytic: a,
                    numeric,
                    rel_err,
                });
            }
            max_rel_err = max_rel_err.max(rel_err);
        }
        leaf.set_data(&base);
    }
    Ok(GradCheckReport {
        max_rel_err,
        checked,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn accepts_correct_gradient() {
        let x = Tensor::from_vec(vec![0.5, -0.25, 1.5], 3, 1).requires_grad();
        let r = grad_check(|| x.mul(&x).sum_all(), std::slice::from_ref(&x), 1e-3, 1e-2).unwrap();
        assert_eq!(r.checked, 3);
        assert!(r.max_rel_err < 1e-2);
        // Leaves restored and grads cleared.
        assert_eq!(x.to_vec(), vec![0.5, -0.25, 1.5]);
        assert!(!x.has_grad());
    }

    #[test]
    fn rejects_wrong_gradient() {
        // relu at a kink: analytic subgradient is 0 there but the central
        // difference straddles it, so the check must fail.
        let x = Tensor::from_vec(vec![0.0], 1, 1).requires_grad();
        let err =
            grad_check(|| x.relu().sum_all(), std::slice::from_ref(&x), 1e-2, 1e-3).unwrap_err();
        assert_eq!(err.leaf, 0);
        assert_eq!(err.elem, 0);
    }

    #[test]
    #[should_panic(expected = "must be scalar")]
    fn rejects_non_scalar_objective() {
        let x = Tensor::from_vec(vec![1.0, 2.0], 1, 2).requires_grad();
        let _ = grad_check(|| x.relu(), std::slice::from_ref(&x), 1e-2, 1e-2);
    }
}
