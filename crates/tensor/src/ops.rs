//! Differentiable operators.
//!
//! Each method on [`Tensor`] performs the forward computation eagerly and
//! records an [`Op`] describing how to route gradients during
//! [`Tensor::backward`]. Shapes are validated eagerly with panics, matching
//! the conventions of dense math libraries.

use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use crate::kernels;
use crate::sparse::BinCsr;
use crate::tensor::Tensor;

/// Error returned by [`Tensor::try_gather_rows`] when a row index is out of
/// bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexOutOfRange {
    /// The offending index value.
    pub index: usize,
    /// The exclusive bound it violated (the number of rows).
    pub bound: usize,
}

impl fmt::Display for IndexOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "index {} out of bounds for {} rows",
            self.index, self.bound
        )
    }
}

impl std::error::Error for IndexOutOfRange {}

/// Error returned by the `try_matmul*` family when the contracted dimensions
/// of the two operands disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeMismatch {
    /// Which product was requested (`"matmul"`, `"matmul_nt"`, `"matmul_tn"`).
    pub op: &'static str,
    /// Shape of the left operand.
    pub lhs: (usize, usize),
    /// Shape of the right operand.
    pub rhs: (usize, usize),
}

impl fmt::Display for ShapeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: incompatible shapes [{},{}] and [{},{}]",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl std::error::Error for ShapeMismatch {}

/// The operation that produced a tensor, holding its parents and any saved
/// context required by the backward pass.
pub enum Op {
    Add(Tensor, Tensor),
    Sub(Tensor, Tensor),
    Mul(Tensor, Tensor),
    Div(Tensor, Tensor),
    Neg(Tensor),
    AddScalar(Tensor, f32),
    MulScalar(Tensor, f32),
    MatMul(Tensor, Tensor),
    /// `a · bᵀ` where `b` is stored row-major `[k,n]`.
    MatMulNt(Tensor, Tensor),
    /// `aᵀ · b` where `a` is stored row-major `[m,k]`.
    MatMulTn(Tensor, Tensor),
    /// `[m,n] + [1,n]` (bias add).
    AddRowBroadcast(Tensor, Tensor),
    /// `[m,n] * [m,1]` (per-row scaling; used for edge masks, Eq. 6).
    MulColBroadcast(Tensor, Tensor),
    Relu(Tensor),
    LeakyRelu(Tensor, f32),
    Tanh(Tensor),
    Sigmoid(Tensor),
    Exp(Tensor),
    Ln(Tensor),
    Softplus(Tensor),
    ClampMin(Tensor, f32),
    SumAll(Tensor),
    MeanAll(Tensor),
    /// Mean over rows: `[m,n] -> [1,n]` (graph readout).
    MeanRows(Tensor),
    LogSoftmaxRows(Tensor),
    /// Mean negative log-likelihood given per-row target classes.
    NllLoss(Tensor, Rc<Vec<usize>>),
    GatherRows(Tensor, Rc<Vec<usize>>),
    /// `out[idx[i], :] += in[i, :]`, output has `n_out` rows.
    ScatterAddRows(Tensor, Rc<Vec<usize>>, usize),
    SliceCols(Tensor, usize, usize),
    ConcatCols(Tensor, Tensor),
    /// Column-independent softmax within row segments (GAT attention).
    SegmentSoftmax(Tensor, Rc<Vec<usize>>),
    /// Sparse binary matrix (`R × C`) times dense `[C,1]` vector (Eq. 7).
    SpMatVec(Arc<BinCsr>, Tensor),
    /// Fused `σ(x ⊙ w)`; `w` is `[1,1]` (broadcast) or shaped like `x`.
    SigmoidScale(Tensor, Tensor),
    /// Fused `leaky_relu(x + bias, slope)`; bias is `[1,n]`, slope `>= 0`.
    BiasLeakyRelu(Tensor, Tensor, f32),
    /// Fused mean cross-entropy: `nll_loss(log_softmax_rows(x), targets)`.
    SoftmaxXent(Tensor, Rc<Vec<usize>>),
}

impl Op {
    /// The operator name, for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::Div(..) => "div",
            Op::Neg(..) => "neg",
            Op::AddScalar(..) => "add_scalar",
            Op::MulScalar(..) => "mul_scalar",
            Op::MatMul(..) => "matmul",
            Op::MatMulNt(..) => "matmul_nt",
            Op::MatMulTn(..) => "matmul_tn",
            Op::AddRowBroadcast(..) => "add_row_broadcast",
            Op::MulColBroadcast(..) => "mul_col_broadcast",
            Op::Relu(..) => "relu",
            Op::LeakyRelu(..) => "leaky_relu",
            Op::Tanh(..) => "tanh",
            Op::Sigmoid(..) => "sigmoid",
            Op::Exp(..) => "exp",
            Op::Ln(..) => "ln",
            Op::Softplus(..) => "softplus",
            Op::ClampMin(..) => "clamp_min",
            Op::SumAll(..) => "sum_all",
            Op::MeanAll(..) => "mean_all",
            Op::MeanRows(..) => "mean_rows",
            Op::LogSoftmaxRows(..) => "log_softmax_rows",
            Op::NllLoss(..) => "nll_loss",
            Op::GatherRows(..) => "gather_rows",
            Op::ScatterAddRows(..) => "scatter_add_rows",
            Op::SliceCols(..) => "slice_cols",
            Op::ConcatCols(..) => "concat_cols",
            Op::SegmentSoftmax(..) => "segment_softmax",
            Op::SpMatVec(..) => "sp_matvec",
            Op::SigmoidScale(..) => "sigmoid_scale",
            Op::BiasLeakyRelu(..) => "bias_leaky_relu",
            Op::SoftmaxXent(..) => "softmax_xent",
        }
    }

    /// The tensors this operation reads (exposed for static tape analysis).
    pub fn parents(&self) -> Vec<Tensor> {
        match self {
            Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::Div(a, b)
            | Op::MatMul(a, b)
            | Op::MatMulNt(a, b)
            | Op::MatMulTn(a, b)
            | Op::AddRowBroadcast(a, b)
            | Op::MulColBroadcast(a, b)
            | Op::ConcatCols(a, b)
            | Op::SigmoidScale(a, b)
            | Op::BiasLeakyRelu(a, b, _) => vec![a.clone(), b.clone()],
            Op::Neg(a)
            | Op::AddScalar(a, _)
            | Op::MulScalar(a, _)
            | Op::Relu(a)
            | Op::LeakyRelu(a, _)
            | Op::Tanh(a)
            | Op::Sigmoid(a)
            | Op::Exp(a)
            | Op::Ln(a)
            | Op::Softplus(a)
            | Op::ClampMin(a, _)
            | Op::SumAll(a)
            | Op::MeanAll(a)
            | Op::MeanRows(a)
            | Op::LogSoftmaxRows(a)
            | Op::NllLoss(a, _)
            | Op::GatherRows(a, _)
            | Op::ScatterAddRows(a, _, _)
            | Op::SliceCols(a, _, _)
            | Op::SegmentSoftmax(a, _)
            | Op::SpMatVec(_, a)
            | Op::SoftmaxXent(a, _) => vec![a.clone()],
        }
    }

    /// Routes `grad_out` (the gradient w.r.t. `out`) to the parents.
    pub(crate) fn backward(&self, out: &Tensor, grad_out: &[f32]) {
        match self {
            Op::Add(a, b) => {
                a.accumulate_grad(grad_out);
                b.accumulate_grad(grad_out);
            }
            Op::Sub(a, b) => {
                a.accumulate_grad(grad_out);
                let neg: Vec<f32> = grad_out.iter().map(|g| -g).collect();
                b.accumulate_grad(&neg);
            }
            Op::Mul(a, b) => {
                let (ad, bd) = (a.data(), b.data());
                let ga: Vec<f32> = grad_out.iter().zip(bd.iter()).map(|(g, b)| g * b).collect();
                let gb: Vec<f32> = grad_out.iter().zip(ad.iter()).map(|(g, a)| g * a).collect();
                drop((ad, bd));
                a.accumulate_grad(&ga);
                b.accumulate_grad(&gb);
            }
            Op::Div(a, b) => {
                let (ad, bd) = (a.data(), b.data());
                let ga: Vec<f32> = grad_out.iter().zip(bd.iter()).map(|(g, b)| g / b).collect();
                let gb: Vec<f32> = grad_out
                    .iter()
                    .zip(ad.iter().zip(bd.iter()))
                    .map(|(g, (a, b))| -g * a / (b * b))
                    .collect();
                drop((ad, bd));
                a.accumulate_grad(&ga);
                b.accumulate_grad(&gb);
            }
            Op::Neg(a) => {
                let g: Vec<f32> = grad_out.iter().map(|g| -g).collect();
                a.accumulate_grad(&g);
            }
            Op::AddScalar(a, _) => a.accumulate_grad(grad_out),
            Op::MulScalar(a, s) => {
                let g: Vec<f32> = grad_out.iter().map(|g| g * s).collect();
                a.accumulate_grad(&g);
            }
            Op::MatMul(a, b) => {
                let (m, k) = a.shape();
                let (_, n) = b.shape();
                // ga = g . b^T  (m x n) . (n x k)
                let ga = kernels::matmul_nt(grad_out, m, n, &b.data(), k);
                // gb = a^T . g  (k x m) . (m x n)
                let gb = kernels::matmul_tn(&a.data(), m, k, grad_out, n);
                a.accumulate_grad(&ga);
                b.accumulate_grad(&gb);
            }
            Op::MatMulNt(a, b) => {
                // out = a . b^T with a [m,n], b [k,n]; grad_out is [m,k].
                let (m, n) = a.shape();
                let (k, _) = b.shape();
                // ga = g . b  (m x k) . (k x n)
                let ga = kernels::matmul_nn(grad_out, m, k, &b.data(), n);
                // gb = g^T . a  (k x m) . (m x n)
                let gb = kernels::matmul_tn(grad_out, m, k, &a.data(), n);
                a.accumulate_grad(&ga);
                b.accumulate_grad(&gb);
            }
            Op::MatMulTn(a, b) => {
                // out = a^T . b with a [m,k], b [m,n]; grad_out is [k,n].
                let (m, k) = a.shape();
                let (_, n) = b.shape();
                // ga = b . g^T  (m x n) . (n x k)
                let ga = kernels::matmul_nt(&b.data(), m, n, grad_out, k);
                // gb = a . g  (m x k) . (k x n)
                let gb = kernels::matmul_nn(&a.data(), m, k, grad_out, n);
                a.accumulate_grad(&ga);
                b.accumulate_grad(&gb);
            }
            Op::AddRowBroadcast(a, b) => {
                a.accumulate_grad(grad_out);
                let (m, n) = a.shape();
                let mut gb = vec![0.0f32; n];
                for i in 0..m {
                    for j in 0..n {
                        gb[j] += grad_out[i * n + j];
                    }
                }
                b.accumulate_grad(&gb);
            }
            Op::MulColBroadcast(a, b) => {
                let (m, n) = a.shape();
                let ad = a.data();
                let bd = b.data();
                let mut ga = vec![0.0f32; m * n];
                let mut gb = vec![0.0f32; m];
                for i in 0..m {
                    let s = bd[i];
                    for j in 0..n {
                        let g = grad_out[i * n + j];
                        ga[i * n + j] = g * s;
                        gb[i] += g * ad[i * n + j];
                    }
                }
                drop((ad, bd));
                a.accumulate_grad(&ga);
                b.accumulate_grad(&gb);
            }
            Op::Relu(a) => {
                let ad = a.data();
                let g: Vec<f32> = grad_out
                    .iter()
                    .zip(ad.iter())
                    .map(|(g, x)| if *x > 0.0 { *g } else { 0.0 })
                    .collect();
                drop(ad);
                a.accumulate_grad(&g);
            }
            Op::LeakyRelu(a, slope) => {
                let ad = a.data();
                let g: Vec<f32> = grad_out
                    .iter()
                    .zip(ad.iter())
                    .map(|(g, x)| if *x > 0.0 { *g } else { g * slope })
                    .collect();
                drop(ad);
                a.accumulate_grad(&g);
            }
            Op::Tanh(a) => {
                let od = out.data();
                let g: Vec<f32> = grad_out
                    .iter()
                    .zip(od.iter())
                    .map(|(g, y)| g * (1.0 - y * y))
                    .collect();
                drop(od);
                a.accumulate_grad(&g);
            }
            Op::Sigmoid(a) => {
                let od = out.data();
                let g: Vec<f32> = grad_out
                    .iter()
                    .zip(od.iter())
                    .map(|(g, y)| g * y * (1.0 - y))
                    .collect();
                drop(od);
                a.accumulate_grad(&g);
            }
            Op::Exp(a) => {
                let od = out.data();
                let g: Vec<f32> = grad_out.iter().zip(od.iter()).map(|(g, y)| g * y).collect();
                drop(od);
                a.accumulate_grad(&g);
            }
            Op::Ln(a) => {
                let ad = a.data();
                let g: Vec<f32> = grad_out.iter().zip(ad.iter()).map(|(g, x)| g / x).collect();
                drop(ad);
                a.accumulate_grad(&g);
            }
            Op::Softplus(a) => {
                let ad = a.data();
                let g: Vec<f32> = grad_out
                    .iter()
                    .zip(ad.iter())
                    .map(|(g, x)| g * sigmoid_scalar(*x))
                    .collect();
                drop(ad);
                a.accumulate_grad(&g);
            }
            Op::ClampMin(a, min) => {
                let ad = a.data();
                let g: Vec<f32> = grad_out
                    .iter()
                    .zip(ad.iter())
                    .map(|(g, x)| if *x >= *min { *g } else { 0.0 })
                    .collect();
                drop(ad);
                a.accumulate_grad(&g);
            }
            Op::SumAll(a) => {
                let g = vec![grad_out[0]; a.len()];
                a.accumulate_grad(&g);
            }
            Op::MeanAll(a) => {
                let g = vec![grad_out[0] / a.len() as f32; a.len()];
                a.accumulate_grad(&g);
            }
            Op::MeanRows(a) => {
                let (m, n) = a.shape();
                let inv = 1.0 / m as f32;
                let mut g = vec![0.0f32; m * n];
                for i in 0..m {
                    for j in 0..n {
                        g[i * n + j] = grad_out[j] * inv;
                    }
                }
                a.accumulate_grad(&g);
            }
            Op::LogSoftmaxRows(a) => {
                // d x = g - softmax(x) * sum_row(g); softmax = exp(out).
                let (m, n) = a.shape();
                let od = out.data();
                let mut g = vec![0.0f32; m * n];
                for i in 0..m {
                    let row_sum: f32 = grad_out[i * n..(i + 1) * n].iter().sum();
                    for j in 0..n {
                        let s = od[i * n + j].exp();
                        g[i * n + j] = grad_out[i * n + j] - s * row_sum;
                    }
                }
                drop(od);
                a.accumulate_grad(&g);
            }
            Op::NllLoss(a, targets) => {
                let (m, n) = a.shape();
                let scale = grad_out[0] / m as f32;
                let mut g = vec![0.0f32; m * n];
                for (i, &t) in targets.iter().enumerate() {
                    g[i * n + t] = -scale;
                }
                a.accumulate_grad(&g);
            }
            Op::GatherRows(a, idx) => {
                let n = a.cols();
                let mut g = vec![0.0f32; a.len()];
                for (i, &src) in idx.iter().enumerate() {
                    for j in 0..n {
                        g[src * n + j] += grad_out[i * n + j];
                    }
                }
                a.accumulate_grad(&g);
            }
            Op::ScatterAddRows(a, idx, _) => {
                let n = a.cols();
                let mut g = vec![0.0f32; a.len()];
                for (i, &dst) in idx.iter().enumerate() {
                    for j in 0..n {
                        g[i * n + j] = grad_out[dst * n + j];
                    }
                }
                a.accumulate_grad(&g);
            }
            Op::SliceCols(a, c0, _c1) => {
                let (m, n) = a.shape();
                let w = out.cols();
                let mut g = vec![0.0f32; m * n];
                for i in 0..m {
                    for j in 0..w {
                        g[i * n + c0 + j] = grad_out[i * w + j];
                    }
                }
                a.accumulate_grad(&g);
            }
            Op::ConcatCols(a, b) => {
                let m = a.rows();
                let (na, nb) = (a.cols(), b.cols());
                let n = na + nb;
                let mut ga = vec![0.0f32; m * na];
                let mut gb = vec![0.0f32; m * nb];
                for i in 0..m {
                    ga[i * na..(i + 1) * na].copy_from_slice(&grad_out[i * n..i * n + na]);
                    gb[i * nb..(i + 1) * nb].copy_from_slice(&grad_out[i * n + na..(i + 1) * n]);
                }
                a.accumulate_grad(&ga);
                b.accumulate_grad(&gb);
            }
            Op::SegmentSoftmax(a, segs) => {
                // Per column c and segment S: ds_i = s_i * (g_i - sum_{j in S} s_j g_j).
                let (m, n) = a.shape();
                let od = out.data();
                let n_segs = segs.iter().copied().max().map_or(0, |s| s + 1);
                let mut seg_dot = vec![0.0f32; n_segs * n];
                for i in 0..m {
                    let s = segs[i];
                    for j in 0..n {
                        seg_dot[s * n + j] += od[i * n + j] * grad_out[i * n + j];
                    }
                }
                let mut g = vec![0.0f32; m * n];
                for i in 0..m {
                    let s = segs[i];
                    for j in 0..n {
                        g[i * n + j] = od[i * n + j] * (grad_out[i * n + j] - seg_dot[s * n + j]);
                    }
                }
                drop(od);
                a.accumulate_grad(&g);
            }
            Op::SpMatVec(mat, x) => {
                let mut g = vec![0.0f32; x.len()];
                for (r, &gr) in grad_out.iter().enumerate().take(mat.rows()) {
                    if gr != 0.0 {
                        for &c in mat.row(r) {
                            g[c as usize] += gr;
                        }
                    }
                }
                x.accumulate_grad(&g);
            }
            Op::SigmoidScale(a, w) => {
                // y = σ(a ⊙ w): dy/da = y(1-y)·w, dy/dw = y(1-y)·a, with the
                // broadcast weight gradient summed in ascending element order
                // (matching gather_rows' backward on the unfused chain).
                let od = out.data();
                let ad = a.data();
                let wd = w.data();
                let mut ga = vec![0.0f32; a.len()];
                if w.len() == 1 {
                    let wv = wd[0];
                    let mut gw = 0.0f32;
                    for i in 0..a.len() {
                        let dy = grad_out[i] * od[i] * (1.0 - od[i]);
                        ga[i] = dy * wv;
                        gw += dy * ad[i];
                    }
                    drop((od, ad, wd));
                    a.accumulate_grad(&ga);
                    w.accumulate_grad(&[gw]);
                } else {
                    let mut gw = vec![0.0f32; a.len()];
                    for i in 0..a.len() {
                        let dy = grad_out[i] * od[i] * (1.0 - od[i]);
                        ga[i] = dy * wd[i];
                        gw[i] = dy * ad[i];
                    }
                    drop((od, ad, wd));
                    a.accumulate_grad(&ga);
                    w.accumulate_grad(&gw);
                }
            }
            Op::BiasLeakyRelu(a, bias, slope) => {
                // With slope >= 0, `out > 0` iff the pre-activation was > 0,
                // so the stored output doubles as the gradient gate.
                let (m, n) = a.shape();
                let od = out.data();
                let mut ga = vec![0.0f32; m * n];
                let mut gb = vec![0.0f32; n];
                for i in 0..m {
                    for j in 0..n {
                        let g = grad_out[i * n + j];
                        let gated = if od[i * n + j] > 0.0 { g } else { g * slope };
                        ga[i * n + j] = gated;
                        gb[j] += gated;
                    }
                }
                drop(od);
                a.accumulate_grad(&ga);
                bias.accumulate_grad(&gb);
            }
            Op::SoftmaxXent(a, targets) => {
                // gx = scale·(softmax − onehot), written exactly as the
                // unfused NllLoss→LogSoftmaxRows chain computes it so the
                // bits match: gt - softmax · row_sum with row_sum = -scale.
                let (m, n) = a.shape();
                let ad = a.data();
                let scale = grad_out[0] / m as f32;
                let row_sum = -scale;
                let mut g = vec![0.0f32; m * n];
                for (i, &t) in targets.iter().enumerate() {
                    let row = &ad[i * n..(i + 1) * n];
                    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let lse = row.iter().map(|x| (x - max).exp()).sum::<f32>().ln() + max;
                    for j in 0..n {
                        let gt = if j == t { -scale } else { 0.0 };
                        let s = (row[j] - lse).exp();
                        g[i * n + j] = gt - s * row_sum;
                    }
                }
                drop(ad);
                a.accumulate_grad(&g);
            }
        }
    }
}

#[inline]
fn sigmoid_scalar(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

macro_rules! elementwise_binary {
    ($name:ident, $op_variant:ident, $f:expr) => {
        /// Elementwise binary operation; both operands must share a shape.
        pub fn $name(&self, other: &Tensor) -> Tensor {
            assert_eq!(
                self.shape(),
                other.shape(),
                concat!(stringify!($name), ": shape mismatch")
            );
            let f = $f;
            let data: Vec<f32> = self
                .data()
                .iter()
                .zip(other.data().iter())
                .map(|(a, b)| f(*a, *b))
                .collect();
            Tensor::new_from_op(
                data,
                self.rows(),
                self.cols(),
                Op::$op_variant(self.clone(), other.clone()),
            )
        }
    };
}

macro_rules! elementwise_unary {
    ($name:ident, $op_variant:ident, $f:expr) => {
        /// Elementwise unary operation.
        pub fn $name(&self) -> Tensor {
            let f = $f;
            let data: Vec<f32> = self.data().iter().map(|x| f(*x)).collect();
            Tensor::new_from_op(
                data,
                self.rows(),
                self.cols(),
                Op::$op_variant(self.clone()),
            )
        }
    };
}

impl Tensor {
    elementwise_binary!(add, Add, |a: f32, b: f32| a + b);
    elementwise_binary!(sub, Sub, |a: f32, b: f32| a - b);
    elementwise_binary!(mul, Mul, |a: f32, b: f32| a * b);
    elementwise_binary!(div, Div, |a: f32, b: f32| a / b);

    elementwise_unary!(neg, Neg, |x: f32| -x);
    elementwise_unary!(relu, Relu, |x: f32| x.max(0.0));
    elementwise_unary!(tanh_t, Tanh, |x: f32| x.tanh());
    elementwise_unary!(sigmoid, Sigmoid, sigmoid_scalar);
    elementwise_unary!(exp, Exp, |x: f32| x.exp());
    elementwise_unary!(ln, Ln, |x: f32| x.ln());
    elementwise_unary!(softplus, Softplus, |x: f32| {
        // Numerically stable log(1 + e^x).
        if x > 20.0 {
            x
        } else {
            x.exp().ln_1p()
        }
    });

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        let data: Vec<f32> = self.data().iter().map(|x| x + s).collect();
        Tensor::new_from_op(
            data,
            self.rows(),
            self.cols(),
            Op::AddScalar(self.clone(), s),
        )
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        let data: Vec<f32> = self.data().iter().map(|x| x * s).collect();
        Tensor::new_from_op(
            data,
            self.rows(),
            self.cols(),
            Op::MulScalar(self.clone(), s),
        )
    }

    /// Elementwise `max(x, min)`; gradient is blocked where clamping occurs.
    pub fn clamp_min(&self, min: f32) -> Tensor {
        let data: Vec<f32> = self.data().iter().map(|x| x.max(min)).collect();
        Tensor::new_from_op(
            data,
            self.rows(),
            self.cols(),
            Op::ClampMin(self.clone(), min),
        )
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&self, slope: f32) -> Tensor {
        let data: Vec<f32> = self
            .data()
            .iter()
            .map(|x| if *x > 0.0 { *x } else { x * slope })
            .collect();
        Tensor::new_from_op(
            data,
            self.rows(),
            self.cols(),
            Op::LeakyRelu(self.clone(), slope),
        )
    }

    /// Dense matrix multiplication `self (m×k) · other (k×n)`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree; use [`Tensor::try_matmul`]
    /// to get a typed error instead.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        match self.try_matmul(other) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Dense matrix multiplication `self (m×k) · other (k×n)`, returning
    /// [`ShapeMismatch`] when the inner dimensions disagree.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeMismatch`] if `self.cols() != other.rows()`.
    pub fn try_matmul(&self, other: &Tensor) -> Result<Tensor, ShapeMismatch> {
        let (m, k) = self.shape();
        let (k2, n) = other.shape();
        if k != k2 {
            return Err(ShapeMismatch {
                op: "matmul",
                lhs: (m, k),
                rhs: (k2, n),
            });
        }
        let data = kernels::matmul_nn(&self.data(), m, k, &other.data(), n);
        Ok(Tensor::new_from_op(
            data,
            m,
            n,
            Op::MatMul(self.clone(), other.clone()),
        ))
    }

    /// Transposed-right product `self (m×n) · otherᵀ` with `other` stored
    /// row-major `[k,n]`; the result is `[m,k]`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts disagree; use [`Tensor::try_matmul_nt`]
    /// to get a typed error instead.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        match self.try_matmul_nt(other) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Transposed-right product `self · otherᵀ`, returning [`ShapeMismatch`]
    /// when the column counts disagree.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeMismatch`] if `self.cols() != other.cols()`.
    pub fn try_matmul_nt(&self, other: &Tensor) -> Result<Tensor, ShapeMismatch> {
        let (m, n) = self.shape();
        let (k, n2) = other.shape();
        if n != n2 {
            return Err(ShapeMismatch {
                op: "matmul_nt",
                lhs: (m, n),
                rhs: (k, n2),
            });
        }
        let data = kernels::matmul_nt(&self.data(), m, n, &other.data(), k);
        Ok(Tensor::new_from_op(
            data,
            m,
            k,
            Op::MatMulNt(self.clone(), other.clone()),
        ))
    }

    /// Transposed-left product `selfᵀ · other` with `self` stored row-major
    /// `[m,k]` and `other` `[m,n]`; the result is `[k,n]`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts disagree; use [`Tensor::try_matmul_tn`] to
    /// get a typed error instead.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        match self.try_matmul_tn(other) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Transposed-left product `selfᵀ · other`, returning [`ShapeMismatch`]
    /// when the row counts disagree.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeMismatch`] if `self.rows() != other.rows()`.
    pub fn try_matmul_tn(&self, other: &Tensor) -> Result<Tensor, ShapeMismatch> {
        let (m, k) = self.shape();
        let (m2, n) = other.shape();
        if m != m2 {
            return Err(ShapeMismatch {
                op: "matmul_tn",
                lhs: (m, k),
                rhs: (m2, n),
            });
        }
        let data = kernels::matmul_tn(&self.data(), m, k, &other.data(), n);
        Ok(Tensor::new_from_op(
            data,
            k,
            n,
            Op::MatMulTn(self.clone(), other.clone()),
        ))
    }

    /// Fused `σ(self ⊙ w)`: multiply by a weight (scalar `[1,1]` broadcast
    /// or elementwise) and squash through a sigmoid in one pass.
    ///
    /// Forward values and gradients are bit-identical to the unfused
    /// `self.mul(&w_expanded).sigmoid()` chain; the fusion only removes the
    /// intermediate materialisations the optimize loop pays per epoch.
    ///
    /// # Panics
    ///
    /// Panics if `w` is neither `[1,1]` nor shaped like `self`.
    pub fn sigmoid_scale(&self, w: &Tensor) -> Tensor {
        let (m, n) = self.shape();
        assert!(
            w.shape() == (1, 1) || w.shape() == (m, n),
            "sigmoid_scale: weight must be [1,1] or [{m},{n}]"
        );
        let wd = w.data();
        let data: Vec<f32> = if w.len() == 1 {
            let wv = wd[0];
            self.data().iter().map(|x| sigmoid_scalar(x * wv)).collect()
        } else {
            self.data()
                .iter()
                .zip(wd.iter())
                .map(|(x, wv)| sigmoid_scalar(x * wv))
                .collect()
        };
        drop(wd);
        Tensor::new_from_op(data, m, n, Op::SigmoidScale(self.clone(), w.clone()))
    }

    /// Fused `leaky_relu(self + bias, slope)`: bias add and activation in
    /// one pass over the matrix.
    ///
    /// Bit-identical to `self.add_row_broadcast(&bias).leaky_relu(slope)`.
    /// Note that `slope = 0.0` is *not* bit-identical to `relu` on negative
    /// inputs (`0.0 * x` preserves the sign of zero where `max(x, 0.0)`
    /// yields `+0.0`); production layers always use a positive slope.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `[1,n]` or `slope` is negative.
    pub fn bias_leaky_relu(&self, bias: &Tensor, slope: f32) -> Tensor {
        let (m, n) = self.shape();
        assert_eq!(
            bias.shape(),
            (1, n),
            "bias_leaky_relu: bias must be [1,{n}]"
        );
        assert!(slope >= 0.0, "bias_leaky_relu: slope must be non-negative");
        let bd = bias.data();
        let data: Vec<f32> = self
            .data()
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let v = x + bd[i % n];
                if v > 0.0 {
                    v
                } else {
                    v * slope
                }
            })
            .collect();
        drop(bd);
        Tensor::new_from_op(
            data,
            m,
            n,
            Op::BiasLeakyRelu(self.clone(), bias.clone(), slope),
        )
    }

    /// Fused mean cross-entropy: `log_softmax_rows` + `nll_loss` in a single
    /// pass that never materialises the `[m,n]` log-probability matrix.
    ///
    /// Bit-identical to `self.log_softmax_rows().nll_loss(targets)` in both
    /// the forward value and the gradient.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of rows or a target
    /// class index is out of range.
    pub fn softmax_xent(&self, targets: &[usize]) -> Tensor {
        let (m, n) = self.shape();
        assert_eq!(
            targets.len(),
            m,
            "softmax_xent: one target per row required"
        );
        let d = self.data();
        let mut acc = 0.0f32;
        for (i, &t) in targets.iter().enumerate() {
            assert!(
                t < n,
                "softmax_xent: target {t} out of range for {n} classes"
            );
            let row = &d[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = row.iter().map(|x| (x - max).exp()).sum::<f32>().ln() + max;
            acc -= row[t] - lse;
        }
        drop(d);
        Tensor::new_from_op(
            vec![acc / m as f32],
            1,
            1,
            Op::SoftmaxXent(self.clone(), Rc::new(targets.to_vec())),
        )
    }

    /// `self [m,n] + bias [1,n]`, broadcasting the bias across rows.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        let (m, n) = self.shape();
        assert_eq!(
            bias.shape(),
            (1, n),
            "add_row_broadcast: bias must be [1,{n}]"
        );
        let bd = bias.data();
        let data: Vec<f32> = self
            .data()
            .iter()
            .enumerate()
            .map(|(i, x)| x + bd[i % n])
            .collect();
        drop(bd);
        Tensor::new_from_op(data, m, n, Op::AddRowBroadcast(self.clone(), bias.clone()))
    }

    /// `self [m,n] * scale [m,1]`, broadcasting the scale across columns.
    ///
    /// This is the mask-application primitive of Eq. 6: each edge message row
    /// is scaled by its layer-edge importance.
    pub fn mul_col_broadcast(&self, scale: &Tensor) -> Tensor {
        let (m, n) = self.shape();
        assert_eq!(
            scale.shape(),
            (m, 1),
            "mul_col_broadcast: scale must be [{m},1]"
        );
        let sd = scale.data();
        let mut data = self.to_vec();
        for i in 0..m {
            let s = sd[i];
            for v in &mut data[i * n..(i + 1) * n] {
                *v *= s;
            }
        }
        drop(sd);
        Tensor::new_from_op(data, m, n, Op::MulColBroadcast(self.clone(), scale.clone()))
    }

    /// Sum of all elements as a `1 × 1` tensor.
    pub fn sum_all(&self) -> Tensor {
        let s: f32 = self.data().iter().sum();
        Tensor::new_from_op(vec![s], 1, 1, Op::SumAll(self.clone()))
    }

    /// Mean of all elements as a `1 × 1` tensor.
    pub fn mean_all(&self) -> Tensor {
        let s: f32 = self.data().iter().sum();
        Tensor::new_from_op(vec![s / self.len() as f32], 1, 1, Op::MeanAll(self.clone()))
    }

    /// Mean over rows: `[m,n] -> [1,n]` (mean-pool graph readout).
    pub fn mean_rows(&self) -> Tensor {
        let (m, n) = self.shape();
        assert!(m > 0, "mean_rows on empty tensor");
        let d = self.data();
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for j in 0..n {
                out[j] += d[i * n + j];
            }
        }
        let inv = 1.0 / m as f32;
        for v in &mut out {
            *v *= inv;
        }
        drop(d);
        Tensor::new_from_op(out, 1, n, Op::MeanRows(self.clone()))
    }

    /// Row-wise log-softmax (numerically stabilised).
    pub fn log_softmax_rows(&self) -> Tensor {
        let (m, n) = self.shape();
        let d = self.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &d[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = row.iter().map(|x| (x - max).exp()).sum::<f32>().ln() + max;
            for j in 0..n {
                out[i * n + j] = row[j] - lse;
            }
        }
        drop(d);
        Tensor::new_from_op(out, m, n, Op::LogSoftmaxRows(self.clone()))
    }

    /// Mean negative log-likelihood of `targets` under row-wise log-probs.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of rows or a target
    /// class index is out of range.
    pub fn nll_loss(&self, targets: &[usize]) -> Tensor {
        let (m, n) = self.shape();
        assert_eq!(targets.len(), m, "nll_loss: one target per row required");
        let d = self.data();
        let mut acc = 0.0f32;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < n, "nll_loss: target {t} out of range for {n} classes");
            acc -= d[i * n + t];
        }
        drop(d);
        Tensor::new_from_op(
            vec![acc / m as f32],
            1,
            1,
            Op::NllLoss(self.clone(), Rc::new(targets.to_vec())),
        )
    }

    /// Gathers rows: `out[i, :] = self[idx[i], :]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds; use
    /// [`Tensor::try_gather_rows`] to get an error instead.
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        match self.try_gather_rows(idx) {
            Ok(t) => t,
            Err(e) => panic!(
                "gather_rows: index {} out of bounds for {} rows",
                e.index, e.bound
            ),
        }
    }

    /// Gathers rows, returning [`IndexOutOfRange`] instead of panicking when
    /// an index exceeds the row count.
    ///
    /// # Errors
    ///
    /// Returns the first out-of-bounds index encountered.
    pub fn try_gather_rows(&self, idx: &[usize]) -> Result<Tensor, IndexOutOfRange> {
        let (m, n) = self.shape();
        let d = self.data();
        let mut out = Vec::with_capacity(idx.len() * n);
        for &i in idx {
            if i >= m {
                return Err(IndexOutOfRange { index: i, bound: m });
            }
            out.extend_from_slice(&d[i * n..(i + 1) * n]);
        }
        drop(d);
        Ok(Tensor::new_from_op(
            out,
            idx.len(),
            n,
            Op::GatherRows(self.clone(), Rc::new(idx.to_vec())),
        ))
    }

    /// Scatter-add rows into a fresh `[n_out, cols]` tensor:
    /// `out[idx[i], :] += self[i, :]`.
    ///
    /// This is the message-aggregation primitive (sum aggregation).
    ///
    /// # Panics
    ///
    /// Panics if `idx.len()` differs from the number of rows or any index is
    /// `>= n_out`.
    pub fn scatter_add_rows(&self, idx: &[usize], n_out: usize) -> Tensor {
        let (m, n) = self.shape();
        assert_eq!(idx.len(), m, "scatter_add_rows: one index per row required");
        let d = self.data();
        let mut out = vec![0.0f32; n_out * n];
        for (i, &dst) in idx.iter().enumerate() {
            assert!(dst < n_out, "scatter_add_rows: index {dst} out of bounds");
            for j in 0..n {
                out[dst * n + j] += d[i * n + j];
            }
        }
        drop(d);
        Tensor::new_from_op(
            out,
            n_out,
            n,
            Op::ScatterAddRows(self.clone(), Rc::new(idx.to_vec()), n_out),
        )
    }

    /// Slices columns `[c0, c1)`.
    pub fn slice_cols(&self, c0: usize, c1: usize) -> Tensor {
        let (m, n) = self.shape();
        assert!(
            c0 < c1 && c1 <= n,
            "slice_cols: invalid range {c0}..{c1} for {n} cols"
        );
        let d = self.data();
        let w = c1 - c0;
        let mut out = Vec::with_capacity(m * w);
        for i in 0..m {
            out.extend_from_slice(&d[i * n + c0..i * n + c1]);
        }
        drop(d);
        Tensor::new_from_op(out, m, w, Op::SliceCols(self.clone(), c0, c1))
    }

    /// Concatenates two tensors along columns.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        let (m, na) = self.shape();
        let (m2, nb) = other.shape();
        assert_eq!(m, m2, "concat_cols: row counts differ");
        let (a, b) = (self.data(), other.data());
        let mut out = Vec::with_capacity(m * (na + nb));
        for i in 0..m {
            out.extend_from_slice(&a[i * na..(i + 1) * na]);
            out.extend_from_slice(&b[i * nb..(i + 1) * nb]);
        }
        drop((a, b));
        Tensor::new_from_op(out, m, na + nb, Op::ConcatCols(self.clone(), other.clone()))
    }

    /// Softmax computed independently per column over row segments.
    ///
    /// Rows sharing a segment id form one softmax group — for GAT this
    /// normalises edge attention logits over each destination node's in-edges.
    ///
    /// # Panics
    ///
    /// Panics if `segments.len()` differs from the number of rows.
    pub fn segment_softmax(&self, segments: &[usize]) -> Tensor {
        let (m, n) = self.shape();
        assert_eq!(segments.len(), m, "segment_softmax: one segment per row");
        let n_segs = segments.iter().copied().max().map_or(0, |s| s + 1);
        let d = self.data();
        let mut seg_max = vec![f32::NEG_INFINITY; n_segs * n];
        for i in 0..m {
            let s = segments[i];
            for j in 0..n {
                let v = d[i * n + j];
                if v > seg_max[s * n + j] {
                    seg_max[s * n + j] = v;
                }
            }
        }
        let mut seg_sum = vec![0.0f32; n_segs * n];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let s = segments[i];
            for j in 0..n {
                let e = (d[i * n + j] - seg_max[s * n + j]).exp();
                out[i * n + j] = e;
                seg_sum[s * n + j] += e;
            }
        }
        for i in 0..m {
            let s = segments[i];
            for j in 0..n {
                out[i * n + j] /= seg_sum[s * n + j];
            }
        }
        drop(d);
        Tensor::new_from_op(
            out,
            m,
            n,
            Op::SegmentSoftmax(self.clone(), Rc::new(segments.to_vec())),
        )
    }

    /// Sparse binary matrix (`R × C`) times this dense `[C,1]` vector.
    ///
    /// Implements the flow-incidence transform of Eq. 7:
    /// `out[r] = Σ_{c ∈ row r} self[c]`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a `[C,1]` column vector matching the matrix.
    pub fn sp_matvec(&self, mat: &Arc<BinCsr>) -> Tensor {
        assert_eq!(
            self.shape(),
            (mat.cols(), 1),
            "sp_matvec: vector must be [{},1]",
            mat.cols()
        );
        let d = self.data();
        let mut out = vec![0.0f32; mat.rows()];
        for (r, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for &c in mat.row(r) {
                acc += d[c as usize];
            }
            *o = acc;
        }
        drop(d);
        Tensor::new_from_op(
            out,
            mat.rows(),
            1,
            Op::SpMatVec(Arc::clone(mat), self.clone()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32) {
        assert!((a - b).abs() < 1e-4, "{a} vs {b}");
    }

    #[test]
    fn matmul_forward_and_backward() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2).requires_grad();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], 2, 2).requires_grad();
        let c = a.matmul(&b);
        assert_eq!(c.to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
        c.sum_all().backward();
        // dC/dA = 1 . B^T
        assert_eq!(a.grad_vec(), vec![11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad_vec(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn log_softmax_rows_sums_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], 2, 3);
        let ls = x.log_softmax_rows();
        for i in 0..2 {
            let s: f32 = (0..3).map(|j| ls.get(i, j).exp()).sum();
            assert_close(s, 1.0);
        }
    }

    #[test]
    fn nll_loss_gradient_matches_softmax_minus_onehot() {
        let x = Tensor::from_vec(vec![0.2, -0.4, 0.9], 1, 3).requires_grad();
        let loss = x.log_softmax_rows().nll_loss(&[2]);
        loss.backward();
        let g = x.grad_vec();
        let probs: Vec<f32> = {
            let m = 0.9f32;
            let e: Vec<f32> = [0.2, -0.4, 0.9]
                .iter()
                .map(|v: &f32| (v - m).exp())
                .collect();
            let s: f32 = e.iter().sum();
            e.iter().map(|v| v / s).collect()
        };
        assert_close(g[0], probs[0]);
        assert_close(g[1], probs[1]);
        assert_close(g[2], probs[2] - 1.0);
    }

    #[test]
    fn gather_scatter_roundtrip_gradients() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], 3, 1).requires_grad();
        let gathered = x.gather_rows(&[0, 0, 2]);
        let scattered = gathered.scatter_add_rows(&[1, 1, 0], 2);
        assert_eq!(scattered.to_vec(), vec![3.0, 2.0]);
        scattered.sum_all().backward();
        assert_eq!(x.grad_vec(), vec![2.0, 0.0, 1.0]);
    }

    #[test]
    fn mul_col_broadcast_masks_messages() {
        let msgs = Tensor::from_vec(vec![1.0, 1.0, 2.0, 2.0], 2, 2).requires_grad();
        let mask = Tensor::from_vec(vec![0.5, 0.0], 2, 1).requires_grad();
        let out = msgs.mul_col_broadcast(&mask);
        assert_eq!(out.to_vec(), vec![0.5, 0.5, 0.0, 0.0]);
        out.sum_all().backward();
        assert_eq!(mask.grad_vec(), vec![2.0, 4.0]);
        assert_eq!(msgs.grad_vec(), vec![0.5, 0.5, 0.0, 0.0]);
    }

    #[test]
    fn segment_softmax_normalises_within_segments() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 10.0], 4, 1);
        let sm = x.segment_softmax(&[0, 0, 1, 1]);
        let d = sm.to_vec();
        assert_close(d[0] + d[1], 1.0);
        assert_close(d[2] + d[3], 1.0);
        assert!(d[3] > d[2]);
    }

    #[test]
    fn segment_softmax_gradient_sums_to_zero() {
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.8], 3, 1).requires_grad();
        let sm = x.segment_softmax(&[0, 0, 0]);
        // A weighted sum with distinct weights makes the gradient non-trivial.
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0], 3, 1);
        sm.mul(&w).sum_all().backward();
        let g = x.grad_vec();
        let s: f32 = g.iter().sum();
        assert_close(s, 0.0);
    }

    #[test]
    fn sp_matvec_forward_backward() {
        // rows: {0,2}, {1}
        let m = Arc::new(BinCsr::from_rows(2, 3, &[vec![0, 2], vec![1]]));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], 3, 1).requires_grad();
        let y = x.sp_matvec(&m);
        assert_eq!(y.to_vec(), vec![4.0, 2.0]);
        let w = Tensor::from_vec(vec![10.0, 100.0], 2, 1);
        y.mul(&w).sum_all().backward();
        assert_eq!(x.grad_vec(), vec![10.0, 100.0, 10.0]);
    }

    #[test]
    fn chained_activations_numerical_gradient() {
        // f(x) = sigmoid(tanh(x) * 2 + 0.5) summed.
        let f = |v: f32| {
            let t = v.tanh() * 2.0 + 0.5;
            1.0 / (1.0 + (-t).exp())
        };
        let x0 = 0.37f32;
        let x = Tensor::scalar(x0).requires_grad();
        let y = x
            .tanh_t()
            .mul_scalar(2.0)
            .add_scalar(0.5)
            .sigmoid()
            .sum_all();
        y.backward();
        let eps = 1e-3;
        let num = (f(x0 + eps) - f(x0 - eps)) / (2.0 * eps);
        assert!((x.grad_vec()[0] - num).abs() < 1e-3);
    }

    #[test]
    fn div_gradient() {
        let a = Tensor::scalar(6.0).requires_grad();
        let b = Tensor::scalar(2.0).requires_grad();
        a.div(&b).backward();
        assert_close(a.grad_vec()[0], 0.5);
        assert_close(b.grad_vec()[0], -1.5);
    }

    #[test]
    fn concat_and_slice_are_inverse() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2).requires_grad();
        let b = Tensor::from_vec(vec![5.0, 6.0], 2, 1).requires_grad();
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        let back = c.slice_cols(0, 2);
        assert_eq!(back.to_vec(), a.to_vec());
        c.slice_cols(2, 3).sum_all().backward();
        assert_eq!(b.grad_vec(), vec![1.0, 1.0]);
        assert_eq!(a.grad_vec(), vec![0.0; 4]);
    }

    #[test]
    fn mean_rows_readout() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], 2, 2).requires_grad();
        let m = x.mean_rows();
        assert_eq!(m.to_vec(), vec![3.0, 5.0]);
        m.sum_all().backward();
        assert_eq!(x.grad_vec(), vec![0.5; 4]);
    }

    #[test]
    fn clamp_min_blocks_gradient_below_threshold() {
        let x = Tensor::from_vec(vec![-1.0, 2.0], 1, 2).requires_grad();
        x.clamp_min(0.0).sum_all().backward();
        assert_eq!(x.grad_vec(), vec![0.0, 1.0]);
    }

    #[test]
    fn softplus_matches_reference() {
        let x = Tensor::from_vec(vec![-30.0, 0.0, 30.0], 1, 3);
        let y = x.softplus();
        assert!(y.get(0, 0).abs() < 1e-6);
        assert_close(y.get(0, 1), std::f32::consts::LN_2);
        assert_close(y.get(0, 2), 30.0);
    }
}
