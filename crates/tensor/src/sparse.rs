//! Sparse binary matrices in CSR form.
//!
//! Used for the flow-incidence matrix `I ∈ {0,1}^{|E| × |F|}` of Eq. 7: one
//! per GNN layer, with `I[e, f] = 1` iff layer edge `e` carries message flow
//! `f` at that layer.

/// An immutable sparse binary matrix stored as CSR (row pointer + column
/// indices). Entries are implicitly `1.0`.
#[derive(Debug, Clone)]
pub struct BinCsr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
}

impl BinCsr {
    /// Builds a matrix from per-row column lists.
    ///
    /// # Panics
    ///
    /// Panics if `row_cols.len() != rows` or any column index is `>= cols`.
    pub fn from_rows(rows: usize, cols: usize, row_cols: &[Vec<u32>]) -> Self {
        assert_eq!(
            row_cols.len(),
            rows,
            "BinCsr::from_rows: row count mismatch"
        );
        let nnz: usize = row_cols.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for r in row_cols {
            for &c in r {
                assert!(
                    (c as usize) < cols,
                    "BinCsr::from_rows: column {c} out of bounds for {cols} cols"
                );
                col_idx.push(c);
            }
            row_ptr.push(col_idx.len());
        }
        BinCsr {
            rows,
            cols,
            row_ptr,
            col_idx,
        }
    }

    /// Builds a matrix from `(row, col)` pairs; pairs must be grouped but
    /// need not be sorted within a row.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_pairs(rows: usize, cols: usize, pairs: &[(u32, u32)]) -> Self {
        let mut counts = vec![0usize; rows];
        for &(r, c) in pairs {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "index out of bounds"
            );
            counts[r as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut running = 0usize;
        row_ptr.push(running);
        for &c in &counts {
            running += c;
            row_ptr.push(running);
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0u32; pairs.len()];
        for &(r, c) in pairs {
            col_idx[cursor[r as usize]] = c;
            cursor[r as usize] += 1;
        }
        BinCsr {
            rows,
            cols,
            row_ptr,
            col_idx,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The column indices of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Iterates over `(row, col)` pairs of stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).iter().map(move |&c| (r, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_basic() {
        let m = BinCsr::from_rows(3, 4, &[vec![0, 3], vec![], vec![2]]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0), &[0, 3]);
        assert_eq!(m.row(1), &[] as &[u32]);
        assert_eq!(m.row(2), &[2]);
    }

    #[test]
    fn from_pairs_matches_from_rows() {
        let a = BinCsr::from_pairs(2, 3, &[(0, 1), (1, 0), (0, 2)]);
        assert_eq!(a.row(0), &[1, 2]);
        assert_eq!(a.row(1), &[0]);
        assert_eq!(a.iter().count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_rows_rejects_bad_col() {
        let _ = BinCsr::from_rows(1, 2, &[vec![2]]);
    }
}
