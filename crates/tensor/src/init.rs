//! Weight initialisers.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;

/// Uniform initialisation in `[-bound, bound]`.
pub fn uniform(rows: usize, cols: usize, bound: f32, seed: u64) -> Tensor {
    let mut rng = SmallRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..=bound))
        .collect();
    Tensor::from_vec(data, rows, cols)
}

/// Glorot / Xavier uniform initialisation: `bound = sqrt(6 / (fan_in + fan_out))`.
pub fn glorot_uniform(rows: usize, cols: usize, seed: u64) -> Tensor {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rows, cols, bound, seed)
}

/// Kaiming / He uniform initialisation: `bound = sqrt(6 / fan_in)`.
pub fn kaiming_uniform(rows: usize, cols: usize, seed: u64) -> Tensor {
    let bound = (6.0 / rows as f32).sqrt();
    uniform(rows, cols, bound, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_respects_bound_and_is_deterministic() {
        let a = glorot_uniform(10, 20, 42);
        let b = glorot_uniform(10, 20, 42);
        assert_eq!(a.to_vec(), b.to_vec());
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(a.to_vec().iter().all(|v| v.abs() <= bound + 1e-6));
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform(4, 4, 1.0, 1);
        let b = uniform(4, 4, 1.0, 2);
        assert_ne!(a.to_vec(), b.to_vec());
    }
}
