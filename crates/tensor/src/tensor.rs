//! The [`Tensor`] type: a reference-counted 2-D `f32` matrix that records the
//! operation which produced it, enabling reverse-mode differentiation.

use std::cell::{Cell, Ref, RefCell};
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;

use crate::ops::Op;

thread_local! {
    static NEXT_ID: Cell<u64> = const { Cell::new(0) };
}

fn fresh_id() -> u64 {
    NEXT_ID.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

pub(crate) struct Inner {
    pub(crate) id: u64,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) data: RefCell<Vec<f32>>,
    pub(crate) grad: RefCell<Option<Vec<f32>>>,
    /// Leaf tensors flagged for gradient accumulation (model parameters,
    /// explanation masks). Non-leaf tensors participate in backprop whenever
    /// any ancestor requires a gradient.
    pub(crate) requires_grad: Cell<bool>,
    pub(crate) op: Option<Op>,
}

/// A 2-D `f32` matrix with optional gradient tracking.
///
/// Cloning a `Tensor` is cheap (it clones an `Rc`); both clones refer to the
/// same storage and gradient buffer.
#[derive(Clone)]
pub struct Tensor {
    pub(crate) inner: Rc<Inner>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tensor")
            .field("id", &self.inner.id)
            .field("rows", &self.inner.rows)
            .field("cols", &self.inner.cols)
            .field("requires_grad", &self.inner.requires_grad.get())
            .field("is_leaf", &self.inner.op.is_none())
            .finish()
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Creates a leaf tensor from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Tensor::from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self::new_leaf(data, rows, cols)
    }

    /// Creates a `rows × cols` tensor filled with `value`.
    pub fn full(value: f32, rows: usize, cols: usize) -> Self {
        Self::new_leaf(vec![value; rows * cols], rows, cols)
    }

    /// Creates a `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::full(0.0, rows, cols)
    }

    /// Creates a `rows × cols` tensor of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(1.0, rows, cols)
    }

    /// Creates a `1 × 1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self::full(value, 1, 1)
    }

    pub(crate) fn new_leaf(data: Vec<f32>, rows: usize, cols: usize) -> Self {
        Tensor {
            inner: Rc::new(Inner {
                id: fresh_id(),
                rows,
                cols,
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad: Cell::new(false),
                op: None,
            }),
        }
    }

    pub(crate) fn new_from_op(data: Vec<f32>, rows: usize, cols: usize, op: Op) -> Self {
        assert_eq!(data.len(), rows * cols, "internal op produced wrong shape");
        Tensor {
            inner: Rc::new(Inner {
                id: fresh_id(),
                rows,
                cols,
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad: Cell::new(false),
                op: Some(op),
            }),
        }
    }

    /// Flags this tensor for gradient accumulation and returns it.
    ///
    /// Intended for leaf tensors (parameters, masks); calling it on a
    /// non-leaf is harmless but has no additional effect because non-leaf
    /// gradients are tracked automatically during [`Tensor::backward`].
    #[must_use]
    pub fn requires_grad(self) -> Self {
        self.inner.requires_grad.set(true);
        self
    }

    /// Whether this tensor accumulates gradients as a leaf.
    pub fn requires_grad_flag(&self) -> bool {
        self.inner.requires_grad.get()
    }

    // ------------------------------------------------------------------
    // Shape / data access
    // ------------------------------------------------------------------

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.inner.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.inner.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.inner.rows, self.inner.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.inner.rows * self.inner.cols
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the row-major data.
    pub fn data(&self) -> Ref<'_, Vec<f32>> {
        self.inner.data.borrow()
    }

    /// Copies the row-major data out.
    pub fn to_vec(&self) -> Vec<f32> {
        self.inner.data.borrow().clone()
    }

    /// Returns element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows() && c < self.cols(), "index out of bounds");
        self.inner.data.borrow()[r * self.cols() + c]
    }

    /// Returns the value of a `1 × 1` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a scalar.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.inner.data.borrow()[0]
    }

    /// Overwrites the data of a leaf tensor in place (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if `new_data.len()` does not match the tensor length.
    pub fn set_data(&self, new_data: &[f32]) {
        let mut d = self.inner.data.borrow_mut();
        assert_eq!(new_data.len(), d.len(), "set_data: length mismatch");
        d.copy_from_slice(new_data);
    }

    /// Applies `f` to the data buffer in place (used by optimizers).
    pub fn update_data(&self, f: impl FnOnce(&mut [f32])) {
        f(&mut self.inner.data.borrow_mut());
    }

    /// A stable identifier unique to this tensor's storage.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The recorded operation that produced this tensor, or `None` for a
    /// leaf. This is the entry point for static tape analysis
    /// (`revelio-analysis` walks the op graph through it without executing
    /// anything).
    pub fn op(&self) -> Option<&Op> {
        self.inner.op.as_ref()
    }

    /// Records `op` as the producer of a fresh tensor **without** validating
    /// that the claimed shape is consistent with the operand shapes.
    ///
    /// Exists so the static analyzer's tests can seed deliberately defective
    /// tapes; real forward code must go through the checked op methods.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` (the data buffer itself must be
    /// coherent; only op-vs-operand consistency is left unchecked).
    #[doc(hidden)]
    pub fn from_op_unchecked(data: Vec<f32>, rows: usize, cols: usize, op: Op) -> Tensor {
        Tensor::new_from_op(data, rows, cols, op)
    }

    /// Returns a detached copy: same data, no history, no gradient.
    pub fn detach(&self) -> Tensor {
        Tensor::new_leaf(self.to_vec(), self.rows(), self.cols())
    }

    // ------------------------------------------------------------------
    // Gradients
    // ------------------------------------------------------------------

    /// Copies the accumulated gradient out, or zeros if none was recorded.
    pub fn grad_vec(&self) -> Vec<f32> {
        self.inner
            .grad
            .borrow()
            .clone()
            .unwrap_or_else(|| vec![0.0; self.len()])
    }

    /// Whether a gradient has been accumulated.
    pub fn has_grad(&self) -> bool {
        self.inner.grad.borrow().is_some()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.inner.grad.borrow_mut() = None;
    }

    /// Adds `g` into the accumulated gradient (used by gradient clipping).
    pub fn accumulate_grad_public(&self, g: &[f32]) {
        assert_eq!(g.len(), self.len(), "gradient shape mismatch");
        self.accumulate_grad(g);
    }

    pub(crate) fn accumulate_grad(&self, g: &[f32]) {
        let mut slot = self.inner.grad.borrow_mut();
        match slot.as_mut() {
            Some(existing) => {
                for (e, v) in existing.iter_mut().zip(g) {
                    *e += v;
                }
            }
            None => *slot = Some(g.to_vec()),
        }
    }

    /// Runs reverse-mode differentiation from this tensor.
    ///
    /// The tensor must be a scalar (`1 × 1`); the seed gradient is `1.0`.
    /// Gradients accumulate (are summed) into every leaf created with
    /// [`Tensor::requires_grad`] and into intermediate nodes reachable from
    /// them, so call [`Tensor::zero_grad`] on parameters between steps.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `1 × 1`.
    pub fn backward(&self) {
        assert_eq!(
            self.shape(),
            (1, 1),
            "backward() must be called on a scalar loss"
        );
        self.backward_with_grad(vec![1.0]);
    }

    /// Runs reverse-mode differentiation with an explicit seed gradient of
    /// the same shape as `self`.
    pub fn backward_with_grad(&self, seed: Vec<f32>) {
        assert_eq!(seed.len(), self.len(), "seed gradient shape mismatch");

        // Topological order over the op graph (parents before children when
        // iterated in reverse).
        let mut order: Vec<Tensor> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        // Iterative DFS to avoid stack overflow on deep graphs (e.g. many
        // mask-learning epochs chained by accident).
        let mut stack: Vec<(Tensor, bool)> = vec![(self.clone(), false)];
        while let Some((t, children_done)) = stack.pop() {
            if children_done {
                order.push(t);
                continue;
            }
            if !visited.insert(t.inner.id) {
                continue;
            }
            stack.push((t.clone(), true));
            if let Some(op) = &t.inner.op {
                for p in op.parents() {
                    if !visited.contains(&p.inner.id) {
                        stack.push((p, false));
                    }
                }
            }
        }

        self.accumulate_grad(&seed);
        for t in order.iter().rev() {
            let Some(op) = &t.inner.op else { continue };
            let grad_out = match t.inner.grad.borrow().clone() {
                Some(g) => g,
                None => continue,
            };
            op.backward(t, &grad_out);
            // Match PyTorch semantics: intermediate (op-produced) tensors do
            // not retain gradients across passes unless explicitly flagged
            // via `requires_grad()` (retain_grad). Leaves always accumulate.
            if !t.inner.requires_grad.get() {
                *t.inner.grad.borrow_mut() = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_shapes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.len(), 6);
        assert_eq!(t.get(1, 2), 6.0);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], 2, 3);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn detach_breaks_history() {
        let a = Tensor::scalar(2.0).requires_grad();
        let b = a.mul_scalar(3.0);
        let d = b.detach();
        assert!(d.inner.op.is_none());
        assert_eq!(d.item(), 6.0);
    }

    #[test]
    fn grad_accumulates_across_backward_calls() {
        let a = Tensor::scalar(2.0).requires_grad();
        let b = a.mul_scalar(3.0);
        b.backward();
        b.backward();
        assert_eq!(a.grad_vec(), vec![6.0]);
        a.zero_grad();
        assert!(!a.has_grad());
    }

    #[test]
    fn clone_shares_storage() {
        let a = Tensor::scalar(1.0);
        let b = a.clone();
        a.set_data(&[9.0]);
        assert_eq!(b.item(), 9.0);
    }
}
