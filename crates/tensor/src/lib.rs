//! A minimal reverse-mode automatic-differentiation engine for dense `f32`
//! matrices, purpose-built for the REVELIO reproduction.
//!
//! The engine supports exactly the operator set needed to (a) train the
//! paper's GNN models (GCN / GIN / GAT) and (b) learn explanation masks
//! (REVELIO flow masks, GNNExplainer / PGExplainer / GraphMask edge masks,
//! FlowX refinement):
//!
//! * dense matmul, elementwise arithmetic, row/column broadcasts,
//! * ReLU / LeakyReLU / tanh / sigmoid / exp / ln / softplus activations,
//! * row-wise log-softmax and NLL loss,
//! * `gather_rows` / `scatter_add_rows` (message passing),
//! * `segment_softmax` (GAT attention normalised per destination node),
//! * sparse-binary × dense matvec (the flow-incidence transform of Eq. 7),
//! * sum / mean reductions and column slicing / concatenation.
//!
//! Tensors are 2-D (`rows × cols`) and reference-counted; calling
//! [`Tensor::backward`] on a scalar output accumulates gradients into every
//! reachable tensor created with `requires_grad = true`.
//!
//! # Example
//!
//! ```
//! use revelio_tensor::Tensor;
//!
//! let w = Tensor::from_vec(vec![2.0, -1.0], 1, 2).requires_grad();
//! let x = Tensor::from_vec(vec![3.0, 4.0], 2, 1);
//! let y = w.matmul(&x); // 2*3 + (-1)*4 = 2
//! y.backward();
//! assert_eq!(y.item(), 2.0);
//! assert_eq!(w.grad_vec(), vec![3.0, 4.0]);
//! ```

#![deny(clippy::print_stdout, clippy::print_stderr)]

mod gradcheck;
mod init;
pub mod kernels;
mod ops;
mod optim;
mod sparse;
mod tensor;

pub use gradcheck::{grad_check, GradCheckFailure, GradCheckReport};
pub use init::{glorot_uniform, kaiming_uniform, uniform};
pub use ops::{IndexOutOfRange, Op, ShapeMismatch};
pub use optim::{clip_grad_norm, Adam, AdamConfig, Optimizer, Sgd};
pub use sparse::BinCsr;
pub use tensor::Tensor;
