//! First-order optimizers over collections of leaf tensors.

use crate::tensor::Tensor;

/// Rescales gradients so their global L2 norm is at most `max_norm`,
/// returning the pre-clip norm. A standard guard against late-training loss
/// spikes.
pub fn clip_grad_norm(params: &[Tensor], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        if p.has_grad() {
            total += p.grad_vec().iter().map(|g| g * g).sum::<f32>();
        }
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if p.has_grad() {
                let scaled: Vec<f32> = p.grad_vec().iter().map(|g| g * scale).collect();
                p.zero_grad();
                p.accumulate_grad_public(&scaled);
            }
        }
    }
    norm
}

/// A first-order optimizer over a fixed set of parameters.
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated on
    /// the parameters.
    fn step(&mut self);

    /// Clears the gradients of all managed parameters.
    fn zero_grad(&mut self);
}

/// Plain stochastic gradient descent with optional L2 weight decay.
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
    weight_decay: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Sgd {
            params,
            lr,
            weight_decay: 0.0,
        }
    }

    /// Sets the L2 weight-decay coefficient.
    #[must_use]
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for p in &self.params {
            if !p.has_grad() {
                continue;
            }
            let g = p.grad_vec();
            let (lr, wd) = (self.lr, self.weight_decay);
            p.update_data(|d| {
                for (x, gi) in d.iter_mut().zip(&g) {
                    *x -= lr * (gi + wd * *x);
                }
            });
        }
    }

    fn zero_grad(&mut self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

/// Hyperparameters for [`Adam`].
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// The Adam optimizer (Kingma & Ba, 2015).
pub struct Adam {
    params: Vec<Tensor>,
    cfg: AdamConfig,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer with the given learning rate and default
    /// moment coefficients.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Self::with_config(
            params,
            AdamConfig {
                lr,
                ..AdamConfig::default()
            },
        )
    }

    /// Creates an Adam optimizer with explicit hyperparameters.
    pub fn with_config(params: Vec<Tensor>, cfg: AdamConfig) -> Self {
        let m = params.iter().map(|p| vec![0.0; p.len()]).collect();
        let v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        Adam {
            params,
            cfg,
            m,
            v,
            t: 0,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Overrides the learning rate (e.g. for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let c = self.cfg;
        let bc1 = 1.0 - c.beta1.powi(self.t as i32);
        let bc2 = 1.0 - c.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            if !p.has_grad() {
                continue;
            }
            let g = p.grad_vec();
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            p.update_data(|d| {
                for j in 0..d.len() {
                    let grad = g[j] + c.weight_decay * d[j];
                    m[j] = c.beta1 * m[j] + (1.0 - c.beta1) * grad;
                    v[j] = c.beta2 * v[j] + (1.0 - c.beta2) * grad * grad;
                    let mh = m[j] / bc1;
                    let vh = v[j] / bc2;
                    d[j] -= c.lr * mh / (vh.sqrt() + c.eps);
                }
            });
        }
    }

    fn zero_grad(&mut self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise (x - 3)^2 and check convergence.
    fn quadratic_descent(mut opt: impl Optimizer, x: Tensor, iters: usize) -> f32 {
        for _ in 0..iters {
            opt.zero_grad();
            let diff = x.add_scalar(-3.0);
            let loss = diff.mul(&diff).sum_all();
            loss.backward();
            opt.step();
        }
        x.item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = Tensor::scalar(0.0).requires_grad();
        let v = quadratic_descent(Sgd::new(vec![x.clone()], 0.1), x, 100);
        assert!((v - 3.0).abs() < 1e-3, "got {v}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = Tensor::scalar(0.0).requires_grad();
        let v = quadratic_descent(Adam::new(vec![x.clone()], 0.1), x, 300);
        assert!((v - 3.0).abs() < 1e-2, "got {v}");
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let x = Tensor::scalar(1.0).requires_grad();
        let mut opt = Sgd::new(vec![x.clone()], 0.1).with_weight_decay(1.0);
        for _ in 0..10 {
            opt.zero_grad();
            // Zero loss gradient; only decay acts.
            let loss = x.mul_scalar(0.0).sum_all();
            loss.backward();
            opt.step();
        }
        assert!(x.item() < 1.0);
        assert!(x.item() > 0.0);
    }

    #[test]
    fn step_skips_params_without_grad() {
        let x = Tensor::scalar(5.0).requires_grad();
        let mut opt = Adam::new(vec![x.clone()], 0.1);
        opt.step();
        assert_eq!(x.item(), 5.0);
    }
}
