//! Client library: connect, typed request helpers, and
//! retry-with-exponential-backoff on `Busy` and transient I/O failures.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use revelio_gnn::Gnn;
use revelio_trace::AssembledTrace;

use crate::wire::{
    read_frame, write_frame, ErrorKind, ExplainRequest, GatewayStats, Request, Response,
    ServedExplanation, ServerStats, WireError, WireExplanationSummary, WireStoredExplanation,
    WireTrace, DEFAULT_MAX_FRAME_LEN,
};

/// Client-side knobs; the defaults suit loopback and LAN serving.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-frame payload cap (must be at least the server's for large
    /// responses to arrive).
    pub max_frame_len: usize,
    /// Socket read timeout for one response. Explanations can legitimately
    /// take a while (queue wait + optimisation), so this is generous.
    pub read_timeout: Duration,
    /// Socket write timeout for one request frame.
    pub write_timeout: Duration,
    /// Retry budget for [`Client::explain_with_retry`] and
    /// [`Client::connect_with_retry`]: total attempts, including the first.
    pub max_attempts: u32,
    /// First backoff sleep; doubles on every retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            read_timeout: Duration::from_secs(120),
            write_timeout: Duration::from_secs(10),
            max_attempts: 6,
            backoff_base: Duration::from_millis(20),
            backoff_max: Duration::from_secs(2),
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or codec failure.
    Wire(WireError),
    /// The server answered with a typed error.
    Server {
        /// Machine-readable category.
        kind: ErrorKind,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server shed the request (`Busy`) and the retry budget — if any
    /// was allowed — is exhausted.
    Busy {
        /// Jobs in flight when the last attempt was refused.
        in_flight: u32,
        /// The server's admission limit.
        limit: u32,
    },
    /// The server answered with a response that does not match the
    /// request (a protocol bug; carries a short description).
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server { kind, message } => {
                write!(f, "server error ({kind:?}): {message}")
            }
            ClientError::Busy { in_flight, limit } => {
                write!(f, "server busy ({in_flight}/{limit} in flight)")
            }
            ClientError::UnexpectedResponse(what) => {
                write!(f, "response does not match the request: {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl ClientError {
    /// Whether a retry (possibly on a fresh connection) could succeed.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Busy { .. } => true,
            ClientError::Wire(e) => e.is_transient(),
            _ => false,
        }
    }

    /// Whether the failure happened in transport (socket or codec) rather
    /// than as a server-level answer. A gateway may re-route a transport
    /// failure to another backend, but `Busy` and typed server errors are
    /// genuine answers that must propagate to the caller verbatim —
    /// retrying them inside the gateway would hide backpressure.
    pub fn is_transport(&self) -> bool {
        matches!(self, ClientError::Wire(_))
    }
}

/// A blocking connection to one `revelio-serve` instance.
///
/// Not thread-safe by design (requests are strictly sequential on one
/// connection); open one client per thread for concurrent load.
pub struct Client {
    stream: TcpStream,
    /// The address the stream was connected to, captured while the socket
    /// is known-good; reconnects use this rather than `peer_addr()`, which
    /// fails on a dead socket.
    addr: std::net::SocketAddr,
    cfg: ClientConfig,
}

impl Client {
    /// Connects with default [`ClientConfig`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit configuration.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        cfg: ClientConfig,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        let addr = stream.peer_addr().map_err(WireError::Io)?;
        stream
            .set_read_timeout(Some(cfg.read_timeout))
            .map_err(WireError::Io)?;
        stream
            .set_write_timeout(Some(cfg.write_timeout))
            .map_err(WireError::Io)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream, addr, cfg })
    }

    /// Connects, retrying with exponential backoff while the server is
    /// still coming up (covers the start-up race in scripts that launch
    /// `revelio-serve` and a client back to back).
    pub fn connect_with_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        cfg: ClientConfig,
    ) -> Result<Client, ClientError> {
        let mut backoff = cfg.backoff_base;
        let mut attempt = 0;
        loop {
            attempt += 1;
            match Client::connect_with(addr.clone(), cfg.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if attempt < cfg.max_attempts => {
                    let _ = e;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(cfg.backoff_max);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The address this client connected to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Replaces the underlying stream with a fresh connection to the same
    /// address. Use after a transport error: the old stream may hold half
    /// a frame, and reconnecting is cheaper than resynchronising.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let fresh = Client::connect_with(self.addr, self.cfg.clone())?;
        self.stream = fresh.stream;
        Ok(())
    }

    /// Sends one request and reads one response (no retries).
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.encode(), self.cfg.max_frame_len)?;
        match read_frame(&mut self.stream, self.cfg.max_frame_len)? {
            Some((payload, _)) => Ok(Response::decode(&payload).map_err(WireError::Decode)?),
            None => Err(ClientError::Wire(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            )))),
        }
    }

    /// Liveness check; returns the server's protocol version.
    pub fn ping(&mut self) -> Result<u16, ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong { version } => Ok(version),
            other => Err(unexpected(&other, "expected Pong")),
        }
    }

    /// Ships `model` (architecture + weights) and returns the server's id
    /// for it.
    pub fn register_model(&mut self, model: &Gnn) -> Result<u32, ClientError> {
        let req = Request::RegisterModel {
            config: model.config().clone(),
            state: model.state_dict(),
        };
        match self.request(&req)? {
            Response::ModelRegistered { model } => Ok(model),
            other => Err(unexpected(&other, "expected ModelRegistered")),
        }
    }

    /// Requests one explanation; `Busy` surfaces as [`ClientError::Busy`]
    /// without retrying.
    pub fn explain(&mut self, req: &ExplainRequest) -> Result<ServedExplanation, ClientError> {
        match self.request(&Request::Explain(req.clone()))? {
            Response::Explained(e) => Ok(e),
            Response::Busy { in_flight, limit } => Err(ClientError::Busy { in_flight, limit }),
            other => Err(unexpected(&other, "expected Explained")),
        }
    }

    /// Requests one explanation, retrying with exponential backoff on
    /// `Busy` and on transient I/O errors (reconnecting for the latter).
    ///
    /// At most [`ClientConfig::max_attempts`] attempts are made; the last
    /// failure is returned when the budget runs out.
    pub fn explain_with_retry(
        &mut self,
        req: &ExplainRequest,
    ) -> Result<ServedExplanation, ClientError> {
        let mut backoff = self.cfg.backoff_base;
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.explain(req) {
                Ok(e) => return Ok(e),
                Err(e) if e.is_retryable() && attempt < self.cfg.max_attempts => {
                    if let ClientError::Wire(_) = &e {
                        // The stream may hold half a frame; reconnect
                        // rather than resynchronise.
                        if let Ok(fresh) = Client::connect_with(self.addr, self.cfg.clone()) {
                            self.stream = fresh.stream;
                        }
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(self.cfg.backoff_max);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fetches the server's unified wire + runtime stats.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        Ok(self.stats_full()?.0)
    }

    /// Fetches stats together with the optional gateway tail. Talking to a
    /// plain `revelio-serve` backend yields `None`; talking to a
    /// `revelio-gateway` yields the fleet rollup.
    pub fn stats_full(&mut self) -> Result<(ServerStats, Option<GatewayStats>), ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s, gateway) => Ok((*s, gateway.map(|g| *g))),
            other => Err(unexpected(&other, "expected Stats")),
        }
    }

    /// Fetches the recorded trace for a completed job, or `None` if the id
    /// is unknown or the trace has aged out of the server's retention
    /// window. Pass the `trace_id` echoed on a traced
    /// [`ServedExplanation`].
    pub fn trace(&mut self, id: u64) -> Result<Option<WireTrace>, ClientError> {
        match self.request(&Request::Trace(id, None))? {
            Response::Trace(t) => Ok(t.map(|b| *b)),
            other => Err(unexpected(&other, "expected Trace")),
        }
    }

    /// Fetches the assembled cross-process trace for a global trace id
    /// (`hi`/`lo` halves of the 128-bit id; `(0, 0)` asks for the newest
    /// assembled trace the peer retains). Against a gateway this stitches
    /// gateway + backend lanes; against a backend it is the single-lane
    /// fragment. A retention miss surfaces as
    /// [`ErrorKind::UnknownTrace`] inside [`ClientError::Server`].
    pub fn assembled_trace(&mut self, hi: u64, lo: u64) -> Result<AssembledTrace, ClientError> {
        match self.request(&Request::AssembledTrace { hi, lo })? {
            Response::Assembled(t) => Ok(*t),
            other => Err(unexpected(&other, "expected Assembled")),
        }
    }

    /// Fetches a persisted explanation from the server's store by runtime
    /// job id, or `None` if the store holds nothing under that id. Job ids
    /// survive server restarts; discover them with
    /// [`Client::list_explanations`].
    pub fn fetch_explanation(
        &mut self,
        job_id: u64,
    ) -> Result<Option<WireStoredExplanation>, ClientError> {
        match self.request(&Request::FetchExplanation(job_id, None))? {
            Response::Explanation(e) => Ok(e.map(|b| *b)),
            other => Err(unexpected(&other, "expected Explanation")),
        }
    }

    /// Lists every explanation the server's store holds, ascending by job
    /// id.
    pub fn list_explanations(&mut self) -> Result<Vec<WireExplanationSummary>, ClientError> {
        match self.request(&Request::ListExplanations)? {
            Response::ExplanationList(list) => Ok(list),
            other => Err(unexpected(&other, "expected ExplanationList")),
        }
    }

    /// Asks the server to shut down gracefully; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(&other, "expected ShutdownAck")),
        }
    }
}

fn unexpected(resp: &Response, what: &'static str) -> ClientError {
    // Server-sent errors are worth preserving verbatim.
    if let Response::Error { kind, message } = resp {
        return ClientError::Server {
            kind: *kind,
            message: message.clone(),
        };
    }
    ClientError::UnexpectedResponse(what)
}
