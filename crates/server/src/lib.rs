//! Network serving layer over the explanation runtime.
//!
//! The crate is the paper's explanation engine turned into a service:
//! a versioned binary wire protocol ([`wire`]), a blocking TCP server that
//! funnels decoded requests into the [`revelio_runtime::Runtime`] worker
//! pool ([`server`]), and a small client library with retry/backoff
//! ([`client`]). Everything is `std`-only — the transport is plain TCP,
//! the codec hand-rolled and validated, the concurrency model
//! thread-per-connection over the runtime's fixed worker pool.
//!
//! ```no_run
//! use revelio_server::{Client, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! // ... in another process or thread:
//! let mut client = Client::connect(addr).unwrap();
//! client.ping().unwrap();
//! ```

#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, ClientConfig, ClientError};
pub use server::{read_frame_cancellable, Server, ServerConfig, ServerStartError, POLL_INTERVAL};
pub use wire::{
    ErrorKind, ExplainRequest, GatewayBackendStats, GatewayStats, Request, Response,
    ServedExplanation, ServerStats, WireError, WireEvent, WireEventKind, WireExplanationSummary,
    WireStoredExplanation, WireTiming, WireTrace, DEFAULT_MAX_FRAME_LEN, MAGIC, PROTOCOL_VERSION,
};
