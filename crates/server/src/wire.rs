//! The versioned, checksummed frame protocol and its message types.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"RVLO"
//! 4       2     protocol version (LE u16), see [`PROTOCOL_VERSION`]
//! 6       4     payload length (LE u32)
//! 10      4     CRC-32 (IEEE) of the payload (LE u32)
//! 14      len   payload
//! ```
//!
//! The header is fixed-size and validated *before* the payload is read, so
//! a peer speaking the wrong protocol (or garbage) is rejected after 14
//! bytes and never triggers a large allocation: the declared length is
//! checked against the configured maximum first. The checksum catches
//! corruption that TCP's own checksum misses (proxies, truncated writes
//! replayed from buggy peers).
//!
//! Payloads are typed [`Request`] / [`Response`] values encoded with the
//! serde-free primitives from [`revelio_core::wire`]; every enum tag and
//! length is validated on decode, so a malformed payload is a typed
//! [`WireError`] — never a panic or an unbounded allocation.

use std::io::{Read, Write};

use revelio_core::wire::{
    put_bool, put_f32, put_f32s, put_opt_u64, put_str, put_u16, put_u32, put_u64, put_u8,
    ControlSpec, WireDecodeError, WireReader,
};
use revelio_core::{Degradation, Objective};
use revelio_eval::Effort;
use revelio_gnn::{GnnConfig, GnnKind, Task};
use revelio_graph::{Graph, Target};
use revelio_runtime::prometheus::{push_counter, push_gauge, push_histogram, render_metrics};
use revelio_runtime::{
    HistogramSnapshot, MetricsSnapshot, SizeHistogramSnapshot, BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_US,
};
use revelio_trace::{AssembledSpan, AssembledTrace, Event, EventKind, Phase, Trace, TraceContext};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"RVLO";

/// Wire protocol version; bumped on any incompatible layout change.
///
/// History: v1 — initial protocol; v2 — observability (`ControlSpec` trace
/// toggle, `Stats` metrics extended with phase histograms and the epoch
/// counter, `Trace` request/response, `trace_id` on served explanations);
/// v3 — persistence (`ControlSpec` warm-start toggle, store hit/miss
/// counters in `Stats`, `FetchExplanation` / `ListExplanations`
/// request/response pairs over the server's persistent store);
/// v4 — batched optimisation (batch counters and the batch-size histogram
/// appended to the `Stats` metrics tail);
/// v5 — sharding gateway (an optional [`GatewayStats`] tail on the `Stats`
/// response carrying per-backend health, routing counters, and the fleet
/// rollup; absent on plain `revelio-serve` answers);
/// v6 — distributed tracing (an optional [`TraceContext`] on `Explain` /
/// `Trace` / `FetchExplanation`, the `AssembledTrace` request/response
/// pair, the `UnknownTrace` error kind, and trace sampling counters
/// appended to the `Stats` tail).
pub const PROTOCOL_VERSION: u16 = 6;

/// Frame header length in bytes (magic + version + length + checksum).
pub const HEADER_LEN: usize = 14;

/// Upper bound on the node count a wire graph may declare.
///
/// A frame can justify at most `max_frame_len / 4` feature values or edge
/// endpoints, so any feature-bearing graph that fits a default frame has
/// well under 2^24 nodes; the cap keeps a featureless hostile frame from
/// declaring billions of nodes and forcing huge per-node allocations
/// downstream of the decoder.
pub const MAX_WIRE_NODES: usize = 1 << 24;

/// Default cap on one frame's payload (32 MiB) — enough for a model
/// registration with millions of parameters, small enough that a hostile
/// length field cannot exhaust memory.
pub const DEFAULT_MAX_FRAME_LEN: usize = 32 * 1024 * 1024;

const NUM_BUCKETS: usize = LATENCY_BUCKETS_US.len() + 1;
const NUM_SIZE_BUCKETS: usize = BATCH_SIZE_BUCKETS.len() + 1;

/// Everything that can go wrong speaking the protocol.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure (includes mid-frame EOF as `UnexpectedEof`).
    Io(std::io::Error),
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    UnsupportedVersion {
        /// Version announced by the peer.
        got: u16,
        /// The version this build speaks.
        expected: u16,
    },
    /// The announced payload length exceeds the configured cap.
    FrameTooLarge {
        /// Announced length.
        len: usize,
        /// Configured cap.
        max: usize,
    },
    /// The payload did not hash to the checksum in the header.
    ChecksumMismatch {
        /// Checksum announced in the header.
        expected: u32,
        /// Checksum of the bytes actually received.
        got: u32,
    },
    /// The payload parsed as no known message.
    Decode(WireDecodeError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion { got, expected } => {
                write!(
                    f,
                    "unsupported protocol version {got} (expected {expected})"
                )
            }
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "payload checksum {got:08x} != header checksum {expected:08x}"
                )
            }
            WireError::Decode(e) => write!(f, "malformed payload: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<WireDecodeError> for WireError {
    fn from(e: WireDecodeError) -> Self {
        WireError::Decode(e)
    }
}

impl WireError {
    /// Whether retrying the request on a fresh connection could succeed
    /// (transport-level failures, not protocol disagreements).
    pub fn is_transient(&self) -> bool {
        match self {
            WireError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::Interrupted
            ),
            _ => false,
        }
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, computed at compile time.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Frame I/O.
// ---------------------------------------------------------------------------

/// Encodes `payload` as one complete frame (header + payload).
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] when the payload exceeds `max_len`.
pub fn encode_frame(payload: &[u8], max_len: usize) -> Result<Vec<u8>, WireError> {
    if payload.len() > max_len {
        return Err(WireError::FrameTooLarge {
            len: payload.len(),
            max: max_len,
        });
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// Writes one frame; returns the bytes put on the wire.
pub fn write_frame<W: Write>(
    w: &mut W,
    payload: &[u8],
    max_len: usize,
) -> Result<usize, WireError> {
    let frame = encode_frame(payload, max_len)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len())
}

/// Parses and validates a frame header; returns the declared payload
/// length and checksum.
pub fn parse_header(header: &[u8; HEADER_LEN], max_len: usize) -> Result<(usize, u32), WireError> {
    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion {
            got: version,
            expected: PROTOCOL_VERSION,
        });
    }
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    if len > max_len {
        return Err(WireError::FrameTooLarge { len, max: max_len });
    }
    let crc = u32::from_le_bytes([header[10], header[11], header[12], header[13]]);
    Ok((len, crc))
}

/// Reads one complete frame (blocking), returning its payload and the
/// total bytes consumed. A clean EOF *before the first header byte*
/// returns `Ok(None)`; EOF anywhere later is [`WireError::Io`] with
/// `UnexpectedEof` (a truncated frame).
pub fn read_frame<R: Read>(
    r: &mut R,
    max_len: usize,
) -> Result<Option<(Vec<u8>, usize)>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    // First byte decides "clean EOF" vs "truncated frame".
    match r.read(&mut header[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut header[1..])?,
    }
    let (len, expected_crc) = parse_header(&header, max_len)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let got = crc32(&payload);
    if got != expected_crc {
        return Err(WireError::ChecksumMismatch {
            expected: expected_crc,
            got,
        });
    }
    Ok(Some((payload, HEADER_LEN + len)))
}

// ---------------------------------------------------------------------------
// Message types.
// ---------------------------------------------------------------------------

/// One explanation request as it crosses the wire.
#[derive(Clone)]
pub struct ExplainRequest {
    /// Model id returned by a prior `RegisterModel`.
    pub model: u32,
    /// Caller-assigned content id for `graph` (the artifact-cache key;
    /// requests sharing a `graph_id` must carry identical graphs).
    pub graph_id: u64,
    /// Method name as in the paper's tables (`"REVELIO"`, `"FlowX"`, …).
    pub method: String,
    /// Factual or counterfactual variant.
    pub objective: Objective,
    /// Compute budget for learning-based methods.
    pub effort: Effort,
    /// What to explain.
    pub target: Target,
    /// Deadline / flow-budget controls.
    pub control: ControlSpec,
    /// The instance graph.
    pub graph: Graph,
    /// Distributed-tracing context inherited from an upstream hop (the
    /// gateway's routing span), or `None` when the caller is the trace
    /// origin or tracing is off. When `Some` with `sampled`, the server
    /// journals its fragment under the context's `trace_lo` so it can be
    /// fetched back by global trace id.
    pub context: Option<TraceContext>,
}

/// A client → server message.
pub enum Request {
    /// Liveness + version check.
    Ping,
    /// Ship a model (architecture + weights) for serving; answered with
    /// `ModelRegistered`.
    RegisterModel {
        /// Architecture hyperparameters.
        config: GnnConfig,
        /// Per-parameter flattened weights, as from `Gnn::state_dict`.
        state: Vec<Vec<f32>>,
    },
    /// Explain one instance.
    Explain(ExplainRequest),
    /// Fetch the unified wire + runtime metrics report.
    Stats,
    /// Begin graceful shutdown: the server acks, stops accepting, drains
    /// in-flight work, then exits.
    Shutdown,
    /// Fetch the retained execution trace of a finished traced request, by
    /// the `trace_id` echoed on its `Explained` response (for distributed
    /// traces this is the context's `trace_lo`). The optional context
    /// propagates the caller's own tracing metadata across hops.
    Trace(u64, Option<TraceContext>),
    /// Fetch a persisted explanation from the server's store by runtime
    /// job id (ids survive restarts; see `ListExplanations` to discover
    /// them). Answered with `Explanation`. The optional context propagates
    /// the caller's tracing metadata.
    FetchExplanation(u64, Option<TraceContext>),
    /// List every explanation the server's store holds, newest last.
    /// Answered with `ExplanationList`.
    ListExplanations,
    /// Fetch the assembled cross-process trace for a global 128-bit trace
    /// id (`hi`/`lo` halves); `(0, 0)` asks for the newest assembled
    /// trace. Answered with `Assembled` or an `UnknownTrace` error.
    AssembledTrace {
        /// High half of the global trace id (0 with `lo == 0` = newest).
        hi: u64,
        /// Low half of the global trace id.
        lo: u64,
    },
}

/// Why the server refused or failed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request named a model id that was never registered.
    UnknownModel,
    /// The request named a method outside the registry.
    UnknownMethod,
    /// The method trains over instance *groups* (PGExplainer, GraphMask)
    /// and cannot be served per-request.
    GroupLevelMethod,
    /// The request decoded but its contents were rejected (bad graph,
    /// inconsistent lengths, …).
    Malformed,
    /// The explainer failed server-side (panic, lost worker).
    Internal,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The request needs the persistent store and this server runs
    /// without one (`revelio-serve` started without `--store`).
    NoStore,
    /// The cited trace id resolves to nothing: never sampled, expired
    /// from retention, or plain wrong. Distinguishable from transport
    /// failures so callers don't retry a miss.
    UnknownTrace,
}

impl ErrorKind {
    fn to_u8(self) -> u8 {
        match self {
            ErrorKind::UnknownModel => 0,
            ErrorKind::UnknownMethod => 1,
            ErrorKind::GroupLevelMethod => 2,
            ErrorKind::Malformed => 3,
            ErrorKind::Internal => 4,
            ErrorKind::ShuttingDown => 5,
            ErrorKind::NoStore => 6,
            ErrorKind::UnknownTrace => 7,
        }
    }

    fn from_u8(v: u8) -> Result<ErrorKind, WireDecodeError> {
        Ok(match v {
            0 => ErrorKind::UnknownModel,
            1 => ErrorKind::UnknownMethod,
            2 => ErrorKind::GroupLevelMethod,
            3 => ErrorKind::Malformed,
            4 => ErrorKind::Internal,
            5 => ErrorKind::ShuttingDown,
            6 => ErrorKind::NoStore,
            7 => ErrorKind::UnknownTrace,
            _ => return Err(WireDecodeError::Invalid("error kind tag")),
        })
    }
}

/// Per-request wall-clock timing, echoed back to the client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireTiming {
    /// Submission → picked up by a worker (µs).
    pub queue_us: u64,
    /// Artifact preparation (µs).
    pub prep_us: u64,
    /// The explainer call itself (µs).
    pub explain_us: u64,
    /// Decode → response encode, as measured by the server (µs).
    pub total_us: u64,
}

/// A served explanation as it crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedExplanation {
    /// Importance per original edge of the instance graph.
    pub edge_scores: Vec<f32>,
    /// Per-layer scores over layer edges, when the method distinguishes
    /// layers.
    pub layer_edge_scores: Option<Vec<Vec<f32>>>,
    /// Per-flow scores, for flow-based methods (aligned with the server's
    /// deterministic flow enumeration order).
    pub flow_scores: Option<Vec<f32>>,
    /// What, if anything, was cut to meet the budget.
    pub degradation: Degradation,
    /// Server-side timing breakdown.
    pub timing: WireTiming,
    /// Set when the request asked for a trace ([`ControlSpec`]'s `trace`):
    /// the id to cite in a follow-up [`Request::Trace`].
    pub trace_id: Option<u64>,
}

/// A persisted explanation as it crosses the wire: the stored answer plus
/// the key it was recorded under. Converged-mask parameters stay
/// server-side (they only seed warm starts); `has_mask` reports whether
/// the record carries one.
#[derive(Debug, Clone, PartialEq)]
pub struct WireStoredExplanation {
    /// Runtime job id the record is addressed by (stable across restarts).
    pub job_id: u64,
    /// Wire model id the job ran against.
    pub model: u32,
    /// Caller-assigned graph id.
    pub graph_id: u64,
    /// What was explained.
    pub target: Target,
    /// GNN layer count `L` of the serving model.
    pub layers: u32,
    /// Importance per original edge of the instance graph.
    pub edge_scores: Vec<f32>,
    /// Per-layer scores over layer edges, when the method distinguishes
    /// layers.
    pub layer_edge_scores: Option<Vec<Vec<f32>>>,
    /// Per-flow scores, for flow-based methods.
    pub flow_scores: Option<Vec<f32>>,
    /// What, if anything, was cut to meet the budget.
    pub degradation: Degradation,
    /// Microseconds the job spent queued.
    pub queue_us: u64,
    /// Microseconds spent preparing artifacts.
    pub prep_us: u64,
    /// Microseconds inside the explainer.
    pub explain_us: u64,
    /// Whether the record carries a converged mask (i.e. can seed a
    /// warm start).
    pub has_mask: bool,
}

/// One entry of a `ListExplanations` answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireExplanationSummary {
    /// Job id to cite in a follow-up [`Request::FetchExplanation`].
    pub job_id: u64,
    /// Wire model id the job ran against.
    pub model: u32,
    /// Caller-assigned graph id.
    pub graph_id: u64,
    /// What was explained.
    pub target: Target,
    /// GNN layer count `L` of the serving model.
    pub layers: u32,
    /// Whether the stored answer was degraded.
    pub degraded: bool,
    /// Whether the record carries a converged mask.
    pub has_mask: bool,
}

/// One point-in-time unified metrics report: wire-level counters folded
/// together with the runtime's registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted since start.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Payload + header bytes received.
    pub bytes_in: u64,
    /// Payload + header bytes sent.
    pub bytes_out: u64,
    /// Requests answered (any response, including errors).
    pub requests: u64,
    /// Explain requests shed with `Busy`.
    pub shed: u64,
    /// Frames that failed to parse (connection closed after each).
    pub protocol_errors: u64,
    /// End-to-end per-request latency (decode → response write).
    pub request_latency: HistogramSnapshot,
    /// Explain requests traced end to end (head-sampled or inherited).
    pub trace_sampled: u64,
    /// Explain requests that passed a sampler with tracing possible but
    /// were not sampled.
    pub trace_dropped: u64,
    /// The serving runtime's own registry snapshot.
    pub runtime: MetricsSnapshot,
}

impl ServerStats {
    /// Folds another server's stats into this one: counters sum,
    /// histograms add bucket-wise, and the runtime snapshots merge. The
    /// gateway uses this to answer `Stats` with one fleet-wide rollup.
    pub fn merge(&mut self, other: &ServerStats) {
        self.connections_accepted = self
            .connections_accepted
            .saturating_add(other.connections_accepted);
        self.connections_active = self
            .connections_active
            .saturating_add(other.connections_active);
        self.bytes_in = self.bytes_in.saturating_add(other.bytes_in);
        self.bytes_out = self.bytes_out.saturating_add(other.bytes_out);
        self.requests = self.requests.saturating_add(other.requests);
        self.shed = self.shed.saturating_add(other.shed);
        self.protocol_errors = self.protocol_errors.saturating_add(other.protocol_errors);
        self.request_latency.merge(&other.request_latency);
        self.trace_sampled = self.trace_sampled.saturating_add(other.trace_sampled);
        self.trace_dropped = self.trace_dropped.saturating_add(other.trace_dropped);
        self.runtime.merge(&other.runtime);
    }

    /// Renders the unified report (wire section + runtime section).
    pub fn report(&self) -> String {
        let h = &self.request_latency;
        let mut out = String::new();
        out.push_str("server metrics\n");
        out.push_str(&format!(
            "  conns     accepted={} active={}\n",
            self.connections_accepted, self.connections_active
        ));
        out.push_str(&format!(
            "  wire      bytes_in={} bytes_out={} protocol_errors={}\n",
            self.bytes_in, self.bytes_out, self.protocol_errors
        ));
        out.push_str(&format!(
            "  requests  answered={} shed={}\n",
            self.requests, self.shed
        ));
        out.push_str(&format!(
            "  tracing   sampled={} dropped={}\n",
            self.trace_sampled, self.trace_dropped
        ));
        out.push_str(&format!(
            "  latency   n={} mean={}us max={}us\n",
            h.count,
            h.mean_us(),
            h.max_us
        ));
        out.push_str(&self.runtime.report());
        out
    }

    /// Renders the unified report as Prometheus text exposition: the
    /// runtime's families (see [`render_metrics`]) plus the wire-level
    /// `revelio_server_*` counters and the request-latency histogram.
    pub fn prometheus(&self) -> String {
        let mut out = render_metrics(&self.runtime);
        for (name, help, value) in [
            (
                "revelio_server_connections_accepted_total",
                "Connections accepted since start.",
                self.connections_accepted,
            ),
            (
                "revelio_server_bytes_in_total",
                "Header + payload bytes received.",
                self.bytes_in,
            ),
            (
                "revelio_server_bytes_out_total",
                "Header + payload bytes sent.",
                self.bytes_out,
            ),
            (
                "revelio_server_requests_total",
                "Requests answered (including errors).",
                self.requests,
            ),
            (
                "revelio_server_shed_total",
                "Explain requests shed with Busy.",
                self.shed,
            ),
            (
                "revelio_server_protocol_errors_total",
                "Frames that failed to parse.",
                self.protocol_errors,
            ),
            (
                "revelio_trace_sampled_total",
                "Explain requests traced end to end (head-sampled or inherited).",
                self.trace_sampled,
            ),
            (
                "revelio_trace_dropped_total",
                "Explain requests considered for tracing but not sampled.",
                self.trace_dropped,
            ),
        ] {
            push_counter(&mut out, name, help, value);
        }
        push_gauge(
            &mut out,
            "revelio_server_connections_active",
            "Connections currently open.",
            self.connections_active as f64,
        );
        push_histogram(
            &mut out,
            "revelio_server_request_latency_seconds",
            "End-to-end per-request latency (decode to response write).",
            &self.request_latency,
        );
        out
    }
}

/// The gateway's view of one backend shard: health-state machine output
/// plus forwarding counters, with the cache/job counters lifted from the
/// backend's most recent health poll.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GatewayBackendStats {
    /// The backend's address as configured on the gateway CLI.
    pub addr: String,
    /// Whether the ring currently routes to this backend.
    pub healthy: bool,
    /// Consecutive failed health checks / forwards; reaching the
    /// gateway's threshold marks the backend dead.
    pub consecutive_failures: u32,
    /// Requests forwarded to this backend (the per-backend routing
    /// histogram: comparing these counters across backends shows how the
    /// ring spreads keys).
    pub forwarded: u64,
    /// Transport or protocol failures talking to this backend.
    pub errors: u64,
    /// `Busy` answers this backend returned (propagated to callers).
    pub busy: u64,
    /// Successful `Stats` health polls.
    pub health_checks: u64,
    /// Artifact-cache hits at the last health poll.
    pub cache_hits: u64,
    /// Artifact-cache misses at the last health poll.
    pub cache_misses: u64,
    /// Jobs the backend completed, at the last health poll.
    pub jobs_completed: u64,
}

/// Gateway-level counters riding as an optional tail on the `Stats`
/// response (protocol v5). Plain `revelio-serve` never attaches one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Explain requests routed to a single owner via the ring.
    pub routed: u64,
    /// Registrations fanned out (replicated) to the healthy fleet.
    pub fanout: u64,
    /// Forwards retried against a successor shard after a failure.
    pub rerouted: u64,
    /// Scatter-gather reads (fetch/list/trace) sent to the whole fleet.
    pub scatter: u64,
    /// Per-backend health + counters, in configured shard order.
    pub backends: Vec<GatewayBackendStats>,
}

impl GatewayStats {
    /// Backends the ring currently routes to.
    pub fn healthy_backends(&self) -> usize {
        self.backends.iter().filter(|b| b.healthy).count()
    }

    /// Fleet-wide artifact-cache hit rate in `[0, 1]` from the summed
    /// per-backend counters (0 when the fleet was never probed).
    pub fn fleet_cache_hit_rate(&self) -> f64 {
        let hits: u64 = self.backends.iter().map(|b| b.cache_hits).sum();
        let misses: u64 = self.backends.iter().map(|b| b.cache_misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Renders the gateway families as Prometheus text exposition
    /// (`revelio_gateway_*`), appended after the standard server families
    /// by `revelio-top` and the gateway's own scrape surface.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (name, help, value) in [
            (
                "revelio_gateway_routed_total",
                "Explain requests routed to their owning shard.",
                self.routed,
            ),
            (
                "revelio_gateway_fanout_total",
                "Registrations replicated to the healthy fleet.",
                self.fanout,
            ),
            (
                "revelio_gateway_rerouted_total",
                "Forwards retried on a successor shard after a failure.",
                self.rerouted,
            ),
            (
                "revelio_gateway_scatter_total",
                "Scatter-gather reads sent to the whole fleet.",
                self.scatter,
            ),
        ] {
            push_counter(&mut out, name, help, value);
        }
        push_gauge(
            &mut out,
            "revelio_gateway_backends_healthy",
            "Backends the ring currently routes to.",
            self.healthy_backends() as f64,
        );
        push_gauge(
            &mut out,
            "revelio_gateway_fleet_cache_hit_rate",
            "Fleet-wide artifact-cache hit rate in [0, 1].",
            self.fleet_cache_hit_rate(),
        );
        let labelled = |out: &mut String,
                        name: &str,
                        help: &str,
                        ty: &str,
                        f: &dyn Fn(&GatewayBackendStats) -> f64| {
            out.push_str(&format!("# HELP {name} {help}\n"));
            out.push_str(&format!("# TYPE {name} {ty}\n"));
            for b in &self.backends {
                out.push_str(&format!("{name}{{backend=\"{}\"}} {}\n", b.addr, f(b)));
            }
        };
        labelled(
            &mut out,
            "revelio_gateway_backend_up",
            "Whether the ring routes to this backend (1 = healthy).",
            "gauge",
            &|b| if b.healthy { 1.0 } else { 0.0 },
        );
        labelled(
            &mut out,
            "revelio_gateway_backend_forwarded_total",
            "Requests forwarded to this backend.",
            "counter",
            &|b| b.forwarded as f64,
        );
        labelled(
            &mut out,
            "revelio_gateway_backend_errors_total",
            "Transport or protocol failures against this backend.",
            "counter",
            &|b| b.errors as f64,
        );
        labelled(
            &mut out,
            "revelio_gateway_backend_busy_total",
            "Busy answers this backend returned.",
            "counter",
            &|b| b.busy as f64,
        );
        labelled(
            &mut out,
            "revelio_gateway_backend_health_checks_total",
            "Successful Stats health polls of this backend.",
            "counter",
            &|b| b.health_checks as f64,
        );
        out
    }

    /// Renders a human-readable gateway section for the unified report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("gateway\n");
        out.push_str(&format!(
            "  routing   routed={} fanout={} rerouted={} scatter={}\n",
            self.routed, self.fanout, self.rerouted, self.scatter
        ));
        out.push_str(&format!(
            "  fleet     backends={} healthy={} cache_hit_rate={:.1}%\n",
            self.backends.len(),
            self.healthy_backends(),
            100.0 * self.fleet_cache_hit_rate()
        ));
        for b in &self.backends {
            out.push_str(&format!(
                "  backend   {} {} fails={} fwd={} err={} busy={} polls={}\n",
                b.addr,
                if b.healthy { "up" } else { "DOWN" },
                b.consecutive_failures,
                b.forwarded,
                b.errors,
                b.busy,
                b.health_checks,
            ));
        }
        out
    }
}

/// Cheapest possible [`GatewayBackendStats`] encoding: empty address
/// (4-byte length prefix), flag, failure count, seven u64 counters. Used
/// to bound a hostile backend count before allocation.
const BACKEND_MIN_LEN: usize = 4 + 1 + 4 + 7 * 8;

fn encode_gateway_stats(out: &mut Vec<u8>, g: &GatewayStats) {
    put_u64(out, g.routed);
    put_u64(out, g.fanout);
    put_u64(out, g.rerouted);
    put_u64(out, g.scatter);
    put_u32(out, g.backends.len() as u32);
    for b in &g.backends {
        put_str(out, &b.addr);
        put_bool(out, b.healthy);
        put_u32(out, b.consecutive_failures);
        put_u64(out, b.forwarded);
        put_u64(out, b.errors);
        put_u64(out, b.busy);
        put_u64(out, b.health_checks);
        put_u64(out, b.cache_hits);
        put_u64(out, b.cache_misses);
        put_u64(out, b.jobs_completed);
    }
}

fn decode_gateway_stats(r: &mut WireReader<'_>) -> Result<GatewayStats, WireDecodeError> {
    let routed = r.u64()?;
    let fanout = r.u64()?;
    let rerouted = r.u64()?;
    let scatter = r.u64()?;
    let n = r.u32()? as usize;
    if r.remaining() < n.saturating_mul(BACKEND_MIN_LEN) {
        return Err(WireDecodeError::Truncated {
            needed: n.saturating_mul(BACKEND_MIN_LEN),
            remaining: r.remaining(),
        });
    }
    let mut backends = Vec::with_capacity(n);
    for _ in 0..n {
        backends.push(GatewayBackendStats {
            addr: r.str()?,
            healthy: r.bool()?,
            consecutive_failures: r.u32()?,
            forwarded: r.u64()?,
            errors: r.u64()?,
            busy: r.u64()?,
            health_checks: r.u64()?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
            jobs_completed: r.u64()?,
        });
    }
    Ok(GatewayStats {
        routed,
        fanout,
        rerouted,
        scatter,
        backends,
    })
}

/// A server → client message.
pub enum Response {
    /// Answer to `Ping`.
    Pong {
        /// The server's protocol version.
        version: u16,
    },
    /// Answer to `RegisterModel`: the id to cite in `Explain` requests.
    ModelRegistered {
        /// Server-assigned model id.
        model: u32,
    },
    /// A served explanation.
    Explained(ServedExplanation),
    /// Load shed: the request was *not* queued; retry with backoff.
    Busy {
        /// Jobs in flight when the request was refused.
        in_flight: u32,
        /// The admission limit.
        limit: u32,
    },
    /// The request was understood but refused or failed.
    Error {
        /// Machine-readable category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to `Stats`: the unified wire + runtime report, plus a
    /// gateway tail when the answering process is a `revelio-gateway`
    /// (plain `revelio-serve` always answers `None`).
    Stats(Box<ServerStats>, Option<Box<GatewayStats>>),
    /// Answer to `Shutdown`; the connection closes after this frame.
    ShutdownAck,
    /// Answer to `Trace`: the retained trace, or `None` if the id is
    /// unknown, the request was untraced, or the trace was evicted.
    Trace(Option<Box<WireTrace>>),
    /// Answer to `AssembledTrace`: the stitched cross-process trace. A
    /// miss is a typed `Error { kind: UnknownTrace, .. }`, never an empty
    /// trace.
    Assembled(Box<AssembledTrace>),
    /// Answer to `FetchExplanation`: the stored record, or `None` if the
    /// store holds no explanation under that job id.
    Explanation(Option<Box<WireStoredExplanation>>),
    /// Answer to `ListExplanations`: every stored explanation, ascending
    /// by job id.
    ExplanationList(Vec<WireExplanationSummary>),
}

// ---------------------------------------------------------------------------
// Graph codec.
// ---------------------------------------------------------------------------

fn encode_graph(out: &mut Vec<u8>, g: &Graph) {
    put_u32(out, g.num_nodes() as u32);
    put_u32(out, g.feat_dim() as u32);
    put_u32(out, g.num_edges() as u32);
    for &(s, d) in g.edges() {
        put_u32(out, s);
        put_u32(out, d);
    }
    put_f32s(out, g.features());
    match g.node_labels() {
        Some(labels) => {
            put_u8(out, 1);
            put_u32(out, labels.len() as u32);
            for &l in labels {
                put_u32(out, l as u32);
            }
        }
        None => put_u8(out, 0),
    }
    put_opt_u64(out, g.graph_label().map(|l| l as u64));
}

fn decode_graph(r: &mut WireReader<'_>) -> Result<Graph, WireDecodeError> {
    let num_nodes = r.u32()? as usize;
    let feat_dim = r.u32()? as usize;
    let num_edges = r.u32()? as usize;
    if num_nodes > MAX_WIRE_NODES {
        return Err(WireDecodeError::Invalid("node count exceeds wire limit"));
    }
    // Every declared quantity must still be present in the payload: each
    // edge costs 8 bytes and the `num_nodes x feat_dim` feature matrix
    // follows the edge list. Checking both *before* `Graph::builder` keeps
    // a ~30-byte frame from declaring dimensions that force a
    // multi-gigabyte zero-fill inside the builder.
    let edge_bytes = num_edges
        .checked_mul(8)
        .ok_or(WireDecodeError::Invalid("edge count overflows usize"))?;
    let feat_bytes = num_nodes
        .checked_mul(feat_dim)
        .and_then(|n| n.checked_mul(4))
        .ok_or(WireDecodeError::Invalid("feature matrix size overflow"))?;
    let needed = edge_bytes
        .checked_add(feat_bytes)
        .ok_or(WireDecodeError::Invalid("graph payload size overflow"))?;
    if r.remaining() < needed {
        return Err(WireDecodeError::Truncated {
            needed,
            remaining: r.remaining(),
        });
    }
    let mut b = Graph::builder(num_nodes, feat_dim);
    for _ in 0..num_edges {
        let s = r.u32()? as usize;
        let d = r.u32()? as usize;
        if s >= num_nodes || d >= num_nodes {
            return Err(WireDecodeError::Invalid("edge endpoint out of range"));
        }
        if s == d {
            return Err(WireDecodeError::Invalid("self-loop edge"));
        }
        if b.has_edge(s, d) {
            return Err(WireDecodeError::Invalid("duplicate edge"));
        }
        b.edge(s, d);
    }
    let features = r.f32s()?;
    let expected = num_nodes
        .checked_mul(feat_dim)
        .ok_or(WireDecodeError::Invalid("feature matrix size overflow"))?;
    if features.len() != expected {
        return Err(WireDecodeError::Invalid("feature matrix length mismatch"));
    }
    if expected > 0 {
        b.all_features(features);
    }
    match r.u8()? {
        0 => {}
        1 => {
            let n = r.u32()? as usize;
            if n != num_nodes {
                return Err(WireDecodeError::Invalid("node label count mismatch"));
            }
            let label_bytes = n
                .checked_mul(4)
                .ok_or(WireDecodeError::Invalid("node label size overflow"))?;
            if r.remaining() < label_bytes {
                return Err(WireDecodeError::Truncated {
                    needed: label_bytes,
                    remaining: r.remaining(),
                });
            }
            let mut labels = Vec::with_capacity(n);
            for _ in 0..n {
                labels.push(r.u32()? as usize);
            }
            b.node_labels(labels);
        }
        _ => return Err(WireDecodeError::Invalid("node label tag")),
    }
    if let Some(l) = r.opt_u64()? {
        b.graph_label(l as usize);
    }
    Ok(b.build())
}

fn encode_target(out: &mut Vec<u8>, t: Target) {
    match t {
        Target::Graph => put_u8(out, 0),
        Target::Node(n) => {
            put_u8(out, 1);
            put_u64(out, n as u64);
        }
    }
}

fn decode_target(r: &mut WireReader<'_>) -> Result<Target, WireDecodeError> {
    match r.u8()? {
        0 => Ok(Target::Graph),
        1 => Ok(Target::Node(r.u64()? as usize)),
        _ => Err(WireDecodeError::Invalid("target tag")),
    }
}

fn encode_gnn_config(out: &mut Vec<u8>, c: &GnnConfig) {
    put_u8(
        out,
        match c.kind {
            GnnKind::Gcn => 0,
            GnnKind::Gin => 1,
            GnnKind::Gat => 2,
        },
    );
    put_u8(
        out,
        match c.task {
            Task::NodeClassification => 0,
            Task::GraphClassification => 1,
        },
    );
    put_u32(out, c.in_dim as u32);
    put_u32(out, c.hidden_dim as u32);
    put_u32(out, c.num_classes as u32);
    put_u32(out, c.num_layers as u32);
    put_u32(out, c.heads as u32);
    put_u64(out, c.seed);
}

fn decode_gnn_config(r: &mut WireReader<'_>) -> Result<GnnConfig, WireDecodeError> {
    let kind = match r.u8()? {
        0 => GnnKind::Gcn,
        1 => GnnKind::Gin,
        2 => GnnKind::Gat,
        _ => return Err(WireDecodeError::Invalid("gnn kind tag")),
    };
    let task = match r.u8()? {
        0 => Task::NodeClassification,
        1 => Task::GraphClassification,
        _ => return Err(WireDecodeError::Invalid("task tag")),
    };
    Ok(GnnConfig {
        kind,
        task,
        in_dim: r.u32()? as usize,
        hidden_dim: r.u32()? as usize,
        num_classes: r.u32()? as usize,
        num_layers: r.u32()? as usize,
        heads: r.u32()? as usize,
        seed: r.u64()?,
    })
}

fn encode_histogram(out: &mut Vec<u8>, h: &HistogramSnapshot) {
    for b in h.buckets {
        put_u64(out, b);
    }
    put_u64(out, h.count);
    put_u64(out, h.total_us);
    put_u64(out, h.max_us);
}

fn decode_histogram(r: &mut WireReader<'_>) -> Result<HistogramSnapshot, WireDecodeError> {
    let mut buckets = [0u64; NUM_BUCKETS];
    for b in &mut buckets {
        *b = r.u64()?;
    }
    Ok(HistogramSnapshot {
        buckets,
        count: r.u64()?,
        total_us: r.u64()?,
        max_us: r.u64()?,
    })
}

fn encode_metrics(out: &mut Vec<u8>, m: &MetricsSnapshot) {
    put_u64(out, m.jobs_submitted);
    put_u64(out, m.jobs_started);
    put_u64(out, m.jobs_completed);
    put_u64(out, m.jobs_degraded);
    put_u64(out, m.jobs_failed);
    put_u64(out, m.jobs_rejected);
    put_u64(out, m.queue_depth);
    put_u64(out, m.cache_hits);
    put_u64(out, m.cache_misses);
    put_u64(out, m.epochs_total);
    encode_histogram(out, &m.queue_wait);
    encode_histogram(out, &m.prep_latency);
    encode_histogram(out, &m.explain_latency);
    encode_histogram(out, &m.phase_extraction);
    encode_histogram(out, &m.phase_flow_index);
    encode_histogram(out, &m.phase_optimize);
    encode_histogram(out, &m.phase_readout);
    // v3: store counters ride at the tail so the layout stays append-only.
    put_u64(out, m.store_hits);
    put_u64(out, m.store_misses);
    // v4: batch counters and the batch-size histogram, appended after the
    // v3 tail.
    put_u64(out, m.batches);
    put_u64(out, m.batched_jobs);
    encode_size_histogram(out, &m.batch_size);
}

fn encode_size_histogram(out: &mut Vec<u8>, h: &SizeHistogramSnapshot) {
    for b in h.buckets {
        put_u64(out, b);
    }
    put_u64(out, h.count);
    put_u64(out, h.total);
    put_u64(out, h.max);
}

fn decode_size_histogram(r: &mut WireReader<'_>) -> Result<SizeHistogramSnapshot, WireDecodeError> {
    let mut buckets = [0u64; NUM_SIZE_BUCKETS];
    for b in &mut buckets {
        *b = r.u64()?;
    }
    Ok(SizeHistogramSnapshot {
        buckets,
        count: r.u64()?,
        total: r.u64()?,
        max: r.u64()?,
    })
}

fn decode_metrics(r: &mut WireReader<'_>) -> Result<MetricsSnapshot, WireDecodeError> {
    Ok(MetricsSnapshot {
        jobs_submitted: r.u64()?,
        jobs_started: r.u64()?,
        jobs_completed: r.u64()?,
        jobs_degraded: r.u64()?,
        jobs_failed: r.u64()?,
        jobs_rejected: r.u64()?,
        queue_depth: r.u64()?,
        cache_hits: r.u64()?,
        cache_misses: r.u64()?,
        epochs_total: r.u64()?,
        queue_wait: decode_histogram(r)?,
        prep_latency: decode_histogram(r)?,
        explain_latency: decode_histogram(r)?,
        phase_extraction: decode_histogram(r)?,
        phase_flow_index: decode_histogram(r)?,
        phase_optimize: decode_histogram(r)?,
        phase_readout: decode_histogram(r)?,
        store_hits: r.u64()?,
        store_misses: r.u64()?,
        batches: r.u64()?,
        batched_jobs: r.u64()?,
        batch_size: decode_size_histogram(r)?,
    })
}

// ---------------------------------------------------------------------------
// Trace codec.
// ---------------------------------------------------------------------------

/// One trace event as it crosses the wire; mirrors
/// [`revelio_trace::EventKind`] with `Note`'s static string owned.
#[derive(Debug, Clone, PartialEq)]
pub enum WireEventKind {
    /// A phase began.
    SpanStart {
        /// Which phase.
        phase: Phase,
    },
    /// A phase ended.
    SpanEnd {
        /// Which phase.
        phase: Phase,
        /// Phase duration in nanoseconds.
        dur_ns: u64,
    },
    /// One optimisation epoch.
    Epoch {
        /// Epoch index.
        index: u32,
        /// Loss before the step.
        loss: f32,
        /// L2 norm of the mask gradient.
        grad_norm: f32,
    },
    /// An artifact-cache probe.
    CacheProbe {
        /// Whether the artifact was resident.
        hit: bool,
    },
    /// The deadline tripped before this epoch ran.
    DeadlineHit {
        /// Epoch at which the deadline was observed.
        epoch: u32,
    },
    /// A free-form annotation.
    Note(String),
}

/// One trace event: when (ns since the handle's epoch) and what.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEvent {
    /// Nanoseconds since the trace handle was created.
    pub at_ns: u64,
    /// What happened.
    pub kind: WireEventKind,
}

/// A finished request trace as it crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTrace {
    /// The trace id (== the runtime job id).
    pub id: u64,
    /// Events lost to the journal's drop-oldest ring (0 = complete).
    pub dropped: u64,
    /// Resident events, oldest first.
    pub events: Vec<WireEvent>,
}

impl From<&Trace> for WireTrace {
    fn from(t: &Trace) -> WireTrace {
        WireTrace {
            id: t.id.0,
            dropped: t.dropped,
            events: t.events.iter().map(WireEvent::from).collect(),
        }
    }
}

impl From<&Event> for WireEvent {
    fn from(e: &Event) -> WireEvent {
        WireEvent {
            at_ns: e.at_ns,
            kind: match e.kind {
                EventKind::SpanStart { phase } => WireEventKind::SpanStart { phase },
                EventKind::SpanEnd { phase, dur_ns } => WireEventKind::SpanEnd { phase, dur_ns },
                EventKind::Epoch {
                    index,
                    loss,
                    grad_norm,
                } => WireEventKind::Epoch {
                    index,
                    loss,
                    grad_norm,
                },
                EventKind::CacheProbe { hit } => WireEventKind::CacheProbe { hit },
                EventKind::DeadlineHit { epoch } => WireEventKind::DeadlineHit { epoch },
                EventKind::Note(s) => WireEventKind::Note(s.to_owned()),
            },
        }
    }
}

impl WireTrace {
    /// Span-end durations summed per phase, in nanoseconds.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                WireEventKind::SpanEnd { phase: p, dur_ns } if *p == phase => Some(*dur_ns),
                _ => None,
            })
            .sum()
    }

    /// Number of per-epoch events in the journal.
    pub fn epoch_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, WireEventKind::Epoch { .. }))
            .count()
    }

    /// Per-epoch losses, in journal order.
    pub fn losses(&self) -> Vec<f32> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                WireEventKind::Epoch { loss, .. } => Some(loss),
                _ => None,
            })
            .collect()
    }
}

const EV_SPAN_START: u8 = 0;
const EV_SPAN_END: u8 = 1;
const EV_EPOCH: u8 = 2;
const EV_CACHE_PROBE: u8 = 3;
const EV_DEADLINE_HIT: u8 = 4;
const EV_NOTE: u8 = 5;

fn encode_trace(out: &mut Vec<u8>, t: &WireTrace) {
    put_u64(out, t.id);
    put_u64(out, t.dropped);
    put_u32(out, t.events.len() as u32);
    for e in &t.events {
        put_u64(out, e.at_ns);
        match &e.kind {
            WireEventKind::SpanStart { phase } => {
                put_u8(out, EV_SPAN_START);
                put_u8(out, phase.to_u8());
            }
            WireEventKind::SpanEnd { phase, dur_ns } => {
                put_u8(out, EV_SPAN_END);
                put_u8(out, phase.to_u8());
                put_u64(out, *dur_ns);
            }
            WireEventKind::Epoch {
                index,
                loss,
                grad_norm,
            } => {
                put_u8(out, EV_EPOCH);
                put_u32(out, *index);
                put_f32(out, *loss);
                put_f32(out, *grad_norm);
            }
            WireEventKind::CacheProbe { hit } => {
                put_u8(out, EV_CACHE_PROBE);
                put_bool(out, *hit);
            }
            WireEventKind::DeadlineHit { epoch } => {
                put_u8(out, EV_DEADLINE_HIT);
                put_u32(out, *epoch);
            }
            WireEventKind::Note(s) => {
                put_u8(out, EV_NOTE);
                // Notes are static strings in the tracer; bound them anyway.
                let s: String = s.chars().take(256).collect();
                put_str(out, &s);
            }
        }
    }
}

fn decode_phase(r: &mut WireReader<'_>) -> Result<Phase, WireDecodeError> {
    Phase::from_u8(r.u8()?).ok_or(WireDecodeError::Invalid("phase tag"))
}

fn decode_trace(r: &mut WireReader<'_>) -> Result<WireTrace, WireDecodeError> {
    let id = r.u64()?;
    let dropped = r.u64()?;
    let n = r.u32()? as usize;
    // Every event costs at least 9 bytes (timestamp + kind tag); a hostile
    // count is rejected before the Vec is allocated.
    if r.remaining() < n.saturating_mul(9) {
        return Err(WireDecodeError::Truncated {
            needed: n.saturating_mul(9),
            remaining: r.remaining(),
        });
    }
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let at_ns = r.u64()?;
        let kind = match r.u8()? {
            EV_SPAN_START => WireEventKind::SpanStart {
                phase: decode_phase(r)?,
            },
            EV_SPAN_END => WireEventKind::SpanEnd {
                phase: decode_phase(r)?,
                dur_ns: r.u64()?,
            },
            EV_EPOCH => WireEventKind::Epoch {
                index: r.u32()?,
                loss: r.f32()?,
                grad_norm: r.f32()?,
            },
            EV_CACHE_PROBE => WireEventKind::CacheProbe { hit: r.bool()? },
            EV_DEADLINE_HIT => WireEventKind::DeadlineHit { epoch: r.u32()? },
            EV_NOTE => WireEventKind::Note(r.str()?),
            _ => return Err(WireDecodeError::Invalid("trace event tag")),
        };
        events.push(WireEvent { at_ns, kind });
    }
    Ok(WireTrace {
        id,
        dropped,
        events,
    })
}

// ---------------------------------------------------------------------------
// Trace-context and assembled-trace codecs (protocol v6).
// ---------------------------------------------------------------------------

fn encode_opt_context(out: &mut Vec<u8>, c: &Option<TraceContext>) {
    match c {
        Some(c) => {
            put_u8(out, 1);
            put_u64(out, c.trace_hi);
            put_u64(out, c.trace_lo);
            put_u64(out, c.parent_span);
            put_bool(out, c.sampled);
        }
        None => put_u8(out, 0),
    }
}

fn decode_opt_context(r: &mut WireReader<'_>) -> Result<Option<TraceContext>, WireDecodeError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(TraceContext {
            trace_hi: r.u64()?,
            trace_lo: r.u64()?,
            parent_span: r.u64()?,
            sampled: r.bool()?,
        })),
        _ => Err(WireDecodeError::Invalid("trace context tag")),
    }
}

/// Cheapest possible [`AssembledSpan`] encoding: lane index, empty name
/// (4-byte length prefix), start, duration. Bounds a hostile span count
/// before allocation.
const ASSEMBLED_SPAN_MIN_LEN: usize = 4 + 4 + 8 + 8;

fn encode_assembled(out: &mut Vec<u8>, t: &AssembledTrace) {
    put_u64(out, t.trace_hi);
    put_u64(out, t.trace_lo);
    put_u64(out, t.dropped);
    put_u32(out, t.lanes.len() as u32);
    for lane in &t.lanes {
        put_str(out, lane);
    }
    put_u32(out, t.spans.len() as u32);
    for s in &t.spans {
        put_u32(out, s.lane);
        put_str(out, &s.name);
        put_u64(out, s.start_us);
        put_u64(out, s.dur_us);
    }
}

fn decode_assembled(r: &mut WireReader<'_>) -> Result<AssembledTrace, WireDecodeError> {
    let trace_hi = r.u64()?;
    let trace_lo = r.u64()?;
    let dropped = r.u64()?;
    let n_lanes = r.u32()? as usize;
    // Each lane costs at least its own 4-byte length prefix.
    if r.remaining() < n_lanes.saturating_mul(4) {
        return Err(WireDecodeError::Truncated {
            needed: n_lanes.saturating_mul(4),
            remaining: r.remaining(),
        });
    }
    let mut lanes = Vec::with_capacity(n_lanes);
    for _ in 0..n_lanes {
        lanes.push(r.str()?);
    }
    let n_spans = r.u32()? as usize;
    if r.remaining() < n_spans.saturating_mul(ASSEMBLED_SPAN_MIN_LEN) {
        return Err(WireDecodeError::Truncated {
            needed: n_spans.saturating_mul(ASSEMBLED_SPAN_MIN_LEN),
            remaining: r.remaining(),
        });
    }
    let mut spans = Vec::with_capacity(n_spans);
    for _ in 0..n_spans {
        let lane = r.u32()?;
        if lane as usize >= n_lanes {
            return Err(WireDecodeError::Invalid("span lane index out of range"));
        }
        spans.push(AssembledSpan {
            lane,
            name: r.str()?,
            start_us: r.u64()?,
            dur_us: r.u64()?,
        });
    }
    Ok(AssembledTrace {
        trace_hi,
        trace_lo,
        lanes,
        spans,
        dropped,
    })
}

// ---------------------------------------------------------------------------
// Stored-explanation codecs.
// ---------------------------------------------------------------------------

fn encode_stored_explanation(out: &mut Vec<u8>, e: &WireStoredExplanation) {
    put_u64(out, e.job_id);
    put_u32(out, e.model);
    put_u64(out, e.graph_id);
    encode_target(out, e.target);
    put_u32(out, e.layers);
    put_f32s(out, &e.edge_scores);
    match &e.layer_edge_scores {
        Some(layers) => {
            put_u8(out, 1);
            put_u32(out, layers.len() as u32);
            for l in layers {
                put_f32s(out, l);
            }
        }
        None => put_u8(out, 0),
    }
    match &e.flow_scores {
        Some(scores) => {
            put_u8(out, 1);
            put_f32s(out, scores);
        }
        None => put_u8(out, 0),
    }
    e.degradation.encode(out);
    put_u64(out, e.queue_us);
    put_u64(out, e.prep_us);
    put_u64(out, e.explain_us);
    put_bool(out, e.has_mask);
}

fn decode_stored_explanation(
    r: &mut WireReader<'_>,
) -> Result<WireStoredExplanation, WireDecodeError> {
    let job_id = r.u64()?;
    let model = r.u32()?;
    let graph_id = r.u64()?;
    let target = decode_target(r)?;
    let layers = r.u32()?;
    let edge_scores = r.f32s()?;
    let layer_edge_scores = match r.u8()? {
        0 => None,
        1 => {
            let n = r.u32()? as usize;
            // Each layer costs at least its own 4-byte length prefix.
            if r.remaining() < n.saturating_mul(4) {
                return Err(WireDecodeError::Truncated {
                    needed: n.saturating_mul(4),
                    remaining: r.remaining(),
                });
            }
            let mut lists = Vec::with_capacity(n);
            for _ in 0..n {
                lists.push(r.f32s()?);
            }
            Some(lists)
        }
        _ => return Err(WireDecodeError::Invalid("layer scores tag")),
    };
    let flow_scores = match r.u8()? {
        0 => None,
        1 => Some(r.f32s()?),
        _ => return Err(WireDecodeError::Invalid("flow scores tag")),
    };
    Ok(WireStoredExplanation {
        job_id,
        model,
        graph_id,
        target,
        layers,
        edge_scores,
        layer_edge_scores,
        flow_scores,
        degradation: Degradation::decode(r)?,
        queue_us: r.u64()?,
        prep_us: r.u64()?,
        explain_us: r.u64()?,
        has_mask: r.bool()?,
    })
}

/// Cheapest possible [`WireExplanationSummary`] encoding: job id + model +
/// graph id + target tag + layers + two flags. Used to bound a hostile
/// list count before allocation.
const SUMMARY_MIN_LEN: usize = 8 + 4 + 8 + 1 + 4 + 1 + 1;

fn encode_summary(out: &mut Vec<u8>, s: &WireExplanationSummary) {
    put_u64(out, s.job_id);
    put_u32(out, s.model);
    put_u64(out, s.graph_id);
    encode_target(out, s.target);
    put_u32(out, s.layers);
    put_bool(out, s.degraded);
    put_bool(out, s.has_mask);
}

fn decode_summary(r: &mut WireReader<'_>) -> Result<WireExplanationSummary, WireDecodeError> {
    Ok(WireExplanationSummary {
        job_id: r.u64()?,
        model: r.u32()?,
        graph_id: r.u64()?,
        target: decode_target(r)?,
        layers: r.u32()?,
        degraded: r.bool()?,
        has_mask: r.bool()?,
    })
}

// ---------------------------------------------------------------------------
// Request / Response codecs.
// ---------------------------------------------------------------------------

const REQ_PING: u8 = 0;
const REQ_REGISTER_MODEL: u8 = 1;
const REQ_EXPLAIN: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;
const REQ_TRACE: u8 = 5;
const REQ_FETCH_EXPLANATION: u8 = 6;
const REQ_LIST_EXPLANATIONS: u8 = 7;
const REQ_ASSEMBLED_TRACE: u8 = 8;

impl Request {
    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => put_u8(&mut out, REQ_PING),
            Request::RegisterModel { config, state } => {
                put_u8(&mut out, REQ_REGISTER_MODEL);
                encode_gnn_config(&mut out, config);
                put_u32(&mut out, state.len() as u32);
                for param in state {
                    put_f32s(&mut out, param);
                }
            }
            Request::Explain(e) => {
                put_u8(&mut out, REQ_EXPLAIN);
                put_u32(&mut out, e.model);
                put_u64(&mut out, e.graph_id);
                put_str(&mut out, &e.method);
                put_u8(
                    &mut out,
                    match e.objective {
                        Objective::Factual => 0,
                        Objective::Counterfactual => 1,
                    },
                );
                put_u8(
                    &mut out,
                    match e.effort {
                        Effort::Quick => 0,
                        Effort::Paper => 1,
                    },
                );
                encode_target(&mut out, e.target);
                e.control.encode(&mut out);
                encode_graph(&mut out, &e.graph);
                // v6: the trace context rides after the graph so the
                // layout stays append-only.
                encode_opt_context(&mut out, &e.context);
            }
            Request::Stats => put_u8(&mut out, REQ_STATS),
            Request::Shutdown => put_u8(&mut out, REQ_SHUTDOWN),
            Request::Trace(id, ctx) => {
                put_u8(&mut out, REQ_TRACE);
                put_u64(&mut out, *id);
                encode_opt_context(&mut out, ctx);
            }
            Request::FetchExplanation(id, ctx) => {
                put_u8(&mut out, REQ_FETCH_EXPLANATION);
                put_u64(&mut out, *id);
                encode_opt_context(&mut out, ctx);
            }
            Request::ListExplanations => put_u8(&mut out, REQ_LIST_EXPLANATIONS),
            Request::AssembledTrace { hi, lo } => {
                put_u8(&mut out, REQ_ASSEMBLED_TRACE);
                put_u64(&mut out, *hi);
                put_u64(&mut out, *lo);
            }
        }
        out
    }

    /// Decodes a frame payload into a request, requiring full consumption.
    pub fn decode(payload: &[u8]) -> Result<Request, WireDecodeError> {
        let mut r = WireReader::new(payload);
        let req = match r.u8()? {
            REQ_PING => Request::Ping,
            REQ_REGISTER_MODEL => {
                let config = decode_gnn_config(&mut r)?;
                let n = r.u32()? as usize;
                // Each parameter is at least a 4-byte length prefix.
                if r.remaining() < n.saturating_mul(4) {
                    return Err(WireDecodeError::Truncated {
                        needed: n.saturating_mul(4),
                        remaining: r.remaining(),
                    });
                }
                let mut state = Vec::with_capacity(n);
                for _ in 0..n {
                    state.push(r.f32s()?);
                }
                Request::RegisterModel { config, state }
            }
            REQ_EXPLAIN => {
                let model = r.u32()?;
                let graph_id = r.u64()?;
                let method = r.str()?;
                let objective = match r.u8()? {
                    0 => Objective::Factual,
                    1 => Objective::Counterfactual,
                    _ => return Err(WireDecodeError::Invalid("objective tag")),
                };
                let effort = match r.u8()? {
                    0 => Effort::Quick,
                    1 => Effort::Paper,
                    _ => return Err(WireDecodeError::Invalid("effort tag")),
                };
                let target = decode_target(&mut r)?;
                let control = ControlSpec::decode(&mut r)?;
                let graph = decode_graph(&mut r)?;
                let context = decode_opt_context(&mut r)?;
                Request::Explain(ExplainRequest {
                    model,
                    graph_id,
                    method,
                    objective,
                    effort,
                    target,
                    control,
                    graph,
                    context,
                })
            }
            REQ_STATS => Request::Stats,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_TRACE => Request::Trace(r.u64()?, decode_opt_context(&mut r)?),
            REQ_FETCH_EXPLANATION => {
                Request::FetchExplanation(r.u64()?, decode_opt_context(&mut r)?)
            }
            REQ_LIST_EXPLANATIONS => Request::ListExplanations,
            REQ_ASSEMBLED_TRACE => Request::AssembledTrace {
                hi: r.u64()?,
                lo: r.u64()?,
            },
            _ => return Err(WireDecodeError::Invalid("request tag")),
        };
        r.expect_end()?;
        Ok(req)
    }
}

const RESP_PONG: u8 = 0;
const RESP_MODEL_REGISTERED: u8 = 1;
const RESP_EXPLAINED: u8 = 2;
const RESP_BUSY: u8 = 3;
const RESP_ERROR: u8 = 4;
const RESP_STATS: u8 = 5;
const RESP_SHUTDOWN_ACK: u8 = 6;
const RESP_TRACE: u8 = 7;
const RESP_EXPLANATION: u8 = 8;
const RESP_EXPLANATION_LIST: u8 = 9;
const RESP_ASSEMBLED: u8 = 10;

impl Response {
    /// Encodes the response as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong { version } => {
                put_u8(&mut out, RESP_PONG);
                put_u16(&mut out, *version);
            }
            Response::ModelRegistered { model } => {
                put_u8(&mut out, RESP_MODEL_REGISTERED);
                put_u32(&mut out, *model);
            }
            Response::Explained(e) => {
                put_u8(&mut out, RESP_EXPLAINED);
                put_f32s(&mut out, &e.edge_scores);
                match &e.layer_edge_scores {
                    Some(layers) => {
                        put_u8(&mut out, 1);
                        put_u32(&mut out, layers.len() as u32);
                        for l in layers {
                            put_f32s(&mut out, l);
                        }
                    }
                    None => put_u8(&mut out, 0),
                }
                match &e.flow_scores {
                    Some(scores) => {
                        put_u8(&mut out, 1);
                        put_f32s(&mut out, scores);
                    }
                    None => put_u8(&mut out, 0),
                }
                e.degradation.encode(&mut out);
                put_u64(&mut out, e.timing.queue_us);
                put_u64(&mut out, e.timing.prep_us);
                put_u64(&mut out, e.timing.explain_us);
                put_u64(&mut out, e.timing.total_us);
                put_opt_u64(&mut out, e.trace_id);
            }
            Response::Busy { in_flight, limit } => {
                put_u8(&mut out, RESP_BUSY);
                put_u32(&mut out, *in_flight);
                put_u32(&mut out, *limit);
            }
            Response::Error { kind, message } => {
                put_u8(&mut out, RESP_ERROR);
                put_u8(&mut out, kind.to_u8());
                // Error detail is bounded so a pathological panic message
                // cannot blow the frame cap.
                let msg: String = message.chars().take(512).collect();
                put_str(&mut out, &msg);
            }
            Response::Stats(s, gateway) => {
                put_u8(&mut out, RESP_STATS);
                put_u64(&mut out, s.connections_accepted);
                put_u64(&mut out, s.connections_active);
                put_u64(&mut out, s.bytes_in);
                put_u64(&mut out, s.bytes_out);
                put_u64(&mut out, s.requests);
                put_u64(&mut out, s.shed);
                put_u64(&mut out, s.protocol_errors);
                encode_histogram(&mut out, &s.request_latency);
                encode_metrics(&mut out, &s.runtime);
                // v5: the optional gateway tail rides after the runtime
                // metrics so the layout stays append-only.
                match gateway {
                    Some(g) => {
                        put_u8(&mut out, 1);
                        encode_gateway_stats(&mut out, g);
                    }
                    None => put_u8(&mut out, 0),
                }
                // v6: trace sampling counters, appended after the gateway
                // tail.
                put_u64(&mut out, s.trace_sampled);
                put_u64(&mut out, s.trace_dropped);
            }
            Response::ShutdownAck => put_u8(&mut out, RESP_SHUTDOWN_ACK),
            Response::Trace(t) => {
                put_u8(&mut out, RESP_TRACE);
                match t {
                    Some(t) => {
                        put_u8(&mut out, 1);
                        encode_trace(&mut out, t);
                    }
                    None => put_u8(&mut out, 0),
                }
            }
            Response::Assembled(t) => {
                put_u8(&mut out, RESP_ASSEMBLED);
                encode_assembled(&mut out, t);
            }
            Response::Explanation(e) => {
                put_u8(&mut out, RESP_EXPLANATION);
                match e {
                    Some(e) => {
                        put_u8(&mut out, 1);
                        encode_stored_explanation(&mut out, e);
                    }
                    None => put_u8(&mut out, 0),
                }
            }
            Response::ExplanationList(list) => {
                put_u8(&mut out, RESP_EXPLANATION_LIST);
                put_u32(&mut out, list.len() as u32);
                for s in list {
                    encode_summary(&mut out, s);
                }
            }
        }
        out
    }

    /// Decodes a frame payload into a response, requiring full consumption.
    pub fn decode(payload: &[u8]) -> Result<Response, WireDecodeError> {
        let mut r = WireReader::new(payload);
        let resp = match r.u8()? {
            RESP_PONG => Response::Pong { version: r.u16()? },
            RESP_MODEL_REGISTERED => Response::ModelRegistered { model: r.u32()? },
            RESP_EXPLAINED => {
                let edge_scores = r.f32s()?;
                let layer_edge_scores = match r.u8()? {
                    0 => None,
                    1 => {
                        let n = r.u32()? as usize;
                        if r.remaining() < n.saturating_mul(4) {
                            return Err(WireDecodeError::Truncated {
                                needed: n.saturating_mul(4),
                                remaining: r.remaining(),
                            });
                        }
                        let mut layers = Vec::with_capacity(n);
                        for _ in 0..n {
                            layers.push(r.f32s()?);
                        }
                        Some(layers)
                    }
                    _ => return Err(WireDecodeError::Invalid("layer scores tag")),
                };
                let flow_scores = match r.u8()? {
                    0 => None,
                    1 => Some(r.f32s()?),
                    _ => return Err(WireDecodeError::Invalid("flow scores tag")),
                };
                let degradation = Degradation::decode(&mut r)?;
                let timing = WireTiming {
                    queue_us: r.u64()?,
                    prep_us: r.u64()?,
                    explain_us: r.u64()?,
                    total_us: r.u64()?,
                };
                let trace_id = r.opt_u64()?;
                Response::Explained(ServedExplanation {
                    edge_scores,
                    layer_edge_scores,
                    flow_scores,
                    degradation,
                    timing,
                    trace_id,
                })
            }
            RESP_BUSY => Response::Busy {
                in_flight: r.u32()?,
                limit: r.u32()?,
            },
            RESP_ERROR => Response::Error {
                kind: ErrorKind::from_u8(r.u8()?)?,
                message: r.str()?,
            },
            RESP_STATS => {
                let s = ServerStats {
                    connections_accepted: r.u64()?,
                    connections_active: r.u64()?,
                    bytes_in: r.u64()?,
                    bytes_out: r.u64()?,
                    requests: r.u64()?,
                    shed: r.u64()?,
                    protocol_errors: r.u64()?,
                    request_latency: decode_histogram(&mut r)?,
                    // The v6 trace counters ride *after* the optional
                    // gateway tail; filled in below.
                    trace_sampled: 0,
                    trace_dropped: 0,
                    runtime: decode_metrics(&mut r)?,
                };
                let gateway = match r.u8()? {
                    0 => None,
                    1 => Some(Box::new(decode_gateway_stats(&mut r)?)),
                    _ => return Err(WireDecodeError::Invalid("gateway stats tag")),
                };
                let s = ServerStats {
                    trace_sampled: r.u64()?,
                    trace_dropped: r.u64()?,
                    ..s
                };
                Response::Stats(Box::new(s), gateway)
            }
            RESP_SHUTDOWN_ACK => Response::ShutdownAck,
            RESP_TRACE => Response::Trace(match r.u8()? {
                0 => None,
                1 => Some(Box::new(decode_trace(&mut r)?)),
                _ => return Err(WireDecodeError::Invalid("trace option tag")),
            }),
            RESP_ASSEMBLED => Response::Assembled(Box::new(decode_assembled(&mut r)?)),
            RESP_EXPLANATION => Response::Explanation(match r.u8()? {
                0 => None,
                1 => Some(Box::new(decode_stored_explanation(&mut r)?)),
                _ => return Err(WireDecodeError::Invalid("explanation option tag")),
            }),
            RESP_EXPLANATION_LIST => {
                let n = r.u32()? as usize;
                // A hostile count is rejected before the Vec is allocated.
                if r.remaining() < n.saturating_mul(SUMMARY_MIN_LEN) {
                    return Err(WireDecodeError::Truncated {
                        needed: n.saturating_mul(SUMMARY_MIN_LEN),
                        remaining: r.remaining(),
                    });
                }
                let mut list = Vec::with_capacity(n);
                for _ in 0..n {
                    list.push(decode_summary(&mut r)?);
                }
                Response::ExplanationList(list)
            }
            _ => return Err(WireDecodeError::Invalid("response tag")),
        };
        r.expect_end()?;
        Ok(resp)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip() {
        let payload = b"hello revelio".to_vec();
        let frame = encode_frame(&payload, 1024).unwrap();
        assert_eq!(frame.len(), HEADER_LEN + payload.len());
        let mut cursor = std::io::Cursor::new(frame);
        let (back, consumed) = read_frame(&mut cursor, 1024).unwrap().unwrap();
        assert_eq!(back, payload);
        assert_eq!(consumed, HEADER_LEN + payload.len());
    }

    #[test]
    fn clean_eof_is_none() {
        let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut cursor, 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_rejected_at_both_ends() {
        let payload = vec![0u8; 100];
        assert!(matches!(
            encode_frame(&payload, 50),
            Err(WireError::FrameTooLarge { len: 100, max: 50 })
        ));
        // A header announcing more than the cap is rejected before the
        // payload is read.
        let frame = encode_frame(&payload, 1024).unwrap();
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor, 50),
            Err(WireError::FrameTooLarge { len: 100, max: 50 })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut frame = encode_frame(b"x", 1024).unwrap();
        frame[4] = 0xFF;
        frame[5] = 0xFF;
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(WireError::UnsupportedVersion {
                got: 0xFFFF,
                expected: PROTOCOL_VERSION
            })
        ));
    }

    #[test]
    fn old_protocol_version_rejected() {
        // Well-formed frames from earlier protocols must be refused: v3
        // extended ControlSpec and the Stats payload, v4 appended the
        // batch counters, v5 appended the gateway tail, and v6 appended
        // the trace context / sampling counters, so decoding an older
        // payload with current codecs would misinterpret bytes.
        for old in [1u16, 2, 3, 4, 5] {
            let mut frame = encode_frame(b"x", 1024).unwrap();
            frame[4..6].copy_from_slice(&old.to_le_bytes());
            let mut cursor = std::io::Cursor::new(frame);
            match read_frame(&mut cursor, 1024) {
                Err(WireError::UnsupportedVersion { got, expected }) => {
                    assert_eq!(got, old);
                    assert_eq!(expected, 6);
                }
                other => panic!("v{old} frame was not refused: {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode_frame(b"x", 1024).unwrap();
        frame[0] = b'X';
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut frame = encode_frame(b"important scores", 1024).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let frame = encode_frame(b"0123456789", 1024).unwrap();
        let mut cursor = std::io::Cursor::new(frame[..frame.len() - 3].to_vec());
        match read_frame(&mut cursor, 1024) {
            Err(WireError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => panic!("expected UnexpectedEof, got {other:?}"),
        }
    }

    #[test]
    fn graph_round_trips_with_labels() {
        let mut b = Graph::builder(4, 2);
        b.edge(0, 1).edge(1, 2).edge(2, 3).edge(3, 0);
        b.node_features(0, &[1.0, -2.0]);
        b.node_features(3, &[0.25, f32::MIN_POSITIVE]);
        b.node_labels(vec![0, 1, 1, 0]);
        b.graph_label(1);
        let g = b.build();
        let mut buf = Vec::new();
        encode_graph(&mut buf, &g);
        let mut r = WireReader::new(&buf);
        let back = decode_graph(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.feat_dim(), g.feat_dim());
        assert_eq!(back.edges(), g.edges());
        assert_eq!(back.features(), g.features());
        assert_eq!(back.node_labels(), g.node_labels());
        assert_eq!(back.graph_label(), g.graph_label());
    }

    #[test]
    fn hostile_graph_payloads_are_typed_errors() {
        // Edge endpoint out of range.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2); // nodes
        put_u32(&mut buf, 1); // feat_dim
        put_u32(&mut buf, 1); // edges
        put_u32(&mut buf, 0);
        put_u32(&mut buf, 7); // dst out of range
        let mut r = WireReader::new(&buf);
        assert!(decode_graph(&mut r).is_err());

        // Self-loop.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        put_u32(&mut buf, 1);
        put_u32(&mut buf, 1);
        put_u32(&mut buf, 1);
        put_u32(&mut buf, 1);
        let mut r = WireReader::new(&buf);
        assert!(decode_graph(&mut r).is_err());

        // Edge count larger than the buffer can hold: fails before
        // allocating.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        put_u32(&mut buf, 1);
        put_u32(&mut buf, u32::MAX);
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            decode_graph(&mut r),
            Err(WireDecodeError::Truncated { .. })
        ));

        // A tiny frame declaring a feature matrix of 2^31 x 4: rejected
        // before the builder zero-fills it (would be a 32 GB allocation).
        let mut buf = Vec::new();
        put_u32(&mut buf, 1 << 20); // nodes (within the node cap)
        put_u32(&mut buf, 1 << 12); // feat_dim
        put_u32(&mut buf, 0); // edges
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            decode_graph(&mut r),
            Err(WireDecodeError::Truncated { .. })
        ));

        // A featureless frame declaring billions of nodes: rejected by the
        // node cap even though zero features and edges would "fit".
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX); // nodes
        put_u32(&mut buf, 0); // feat_dim
        put_u32(&mut buf, 0); // edges
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            decode_graph(&mut r),
            Err(WireDecodeError::Invalid(_))
        ));
    }

    #[test]
    fn explain_request_round_trips() {
        let mut b = Graph::builder(3, 1);
        b.undirected_edge(0, 1).edge(1, 2);
        b.node_features(1, &[0.5]);
        let req = Request::Explain(ExplainRequest {
            model: 3,
            graph_id: 99,
            method: "REVELIO".to_owned(),
            objective: Objective::Counterfactual,
            effort: Effort::Paper,
            target: Target::Node(2),
            control: ControlSpec {
                deadline_ms: Some(750),
                max_flows: 12_345,
                shrink_on_overflow: true,
                trace: true,
                warm_start: true,
            },
            graph: b.build(),
            context: Some(TraceContext {
                trace_hi: 0xdead_beef_0000_0001,
                trace_lo: 0x1234_5678_9abc_def0,
                parent_span: 42,
                sampled: true,
            }),
        });
        let payload = req.encode();
        match Request::decode(&payload).unwrap() {
            Request::Explain(e) => {
                assert_eq!(e.model, 3);
                assert_eq!(e.graph_id, 99);
                assert_eq!(e.method, "REVELIO");
                assert_eq!(e.objective, Objective::Counterfactual);
                assert_eq!(e.effort, Effort::Paper);
                assert_eq!(e.target, Target::Node(2));
                assert_eq!(e.control.deadline_ms, Some(750));
                assert!(e.control.trace);
                assert!(e.control.warm_start);
                assert_eq!(e.graph.num_edges(), 3);
                assert_eq!(e.graph.feature_row(1), &[0.5]);
                let ctx = e.context.expect("context must survive the wire");
                assert_eq!(ctx.trace_hi, 0xdead_beef_0000_0001);
                assert_eq!(ctx.trace_lo, 0x1234_5678_9abc_def0);
                assert_eq!(ctx.parent_span, 42);
                assert!(ctx.sampled);
            }
            _ => panic!("decoded the wrong variant"),
        }
    }

    #[test]
    fn trailing_bytes_after_request_rejected() {
        let mut payload = Request::Ping.encode();
        payload.push(0);
        assert!(matches!(
            Request::decode(&payload),
            Err(WireDecodeError::TrailingBytes(1))
        ));
    }

    #[test]
    fn stats_response_round_trips() {
        let mut s = ServerStats {
            connections_accepted: 4,
            bytes_in: 1000,
            shed: 2,
            trace_sampled: 6,
            trace_dropped: 94,
            ..Default::default()
        };
        s.runtime.jobs_completed = 17;
        s.runtime.jobs_rejected = 2;
        s.runtime.epochs_total = 340;
        s.runtime.phase_optimize.count = 17;
        s.runtime.phase_optimize.buckets[2] = 17;
        s.runtime.phase_optimize.total_us = 85_000;
        s.runtime.phase_optimize.max_us = 9_000;
        s.runtime.store_hits = 5;
        s.runtime.store_misses = 3;
        let payload = Response::Stats(Box::new(s), None).encode();
        match Response::decode(&payload).unwrap() {
            Response::Stats(back, gateway) => {
                assert_eq!(*back, s);
                assert!(gateway.is_none());
                assert!(back.report().contains("shed=2"));
                assert!(back.report().contains("total=340"));
                assert!(back.report().contains("hits=5 misses=3"));
                assert!(back.report().contains("sampled=6 dropped=94"));
            }
            _ => panic!("decoded the wrong variant"),
        }
    }

    #[test]
    fn gateway_stats_tail_round_trips() {
        let g = GatewayStats {
            routed: 120,
            fanout: 3,
            rerouted: 7,
            scatter: 2,
            backends: vec![
                GatewayBackendStats {
                    addr: "127.0.0.1:7141".to_owned(),
                    healthy: true,
                    consecutive_failures: 0,
                    forwarded: 80,
                    errors: 0,
                    busy: 1,
                    health_checks: 12,
                    cache_hits: 60,
                    cache_misses: 20,
                    jobs_completed: 80,
                },
                GatewayBackendStats {
                    addr: "127.0.0.1:7142".to_owned(),
                    healthy: false,
                    consecutive_failures: 4,
                    forwarded: 40,
                    errors: 4,
                    busy: 0,
                    health_checks: 6,
                    cache_hits: 30,
                    cache_misses: 10,
                    jobs_completed: 40,
                },
            ],
        };
        let s = ServerStats {
            requests: 123,
            ..Default::default()
        };
        let payload = Response::Stats(Box::new(s), Some(Box::new(g.clone()))).encode();
        match Response::decode(&payload).unwrap() {
            Response::Stats(back, Some(gw)) => {
                assert_eq!(*back, s);
                assert_eq!(*gw, g);
                assert_eq!(gw.healthy_backends(), 1);
                assert!((gw.fleet_cache_hit_rate() - 0.75).abs() < 1e-9);
                assert!(gw.report().contains("127.0.0.1:7142 DOWN"));
            }
            _ => panic!("decoded the wrong variant"),
        }
    }

    #[test]
    fn gateway_stats_prometheus_exposition_is_valid() {
        let g = GatewayStats {
            routed: 9,
            fanout: 1,
            rerouted: 2,
            scatter: 0,
            backends: vec![GatewayBackendStats {
                addr: "127.0.0.1:7141".to_owned(),
                healthy: true,
                forwarded: 9,
                health_checks: 3,
                cache_hits: 5,
                cache_misses: 5,
                ..Default::default()
            }],
        };
        let text = g.prometheus();
        let exp = revelio_runtime::prometheus::parse_exposition(&text).expect("valid exposition");
        for family in [
            "revelio_gateway_routed_total",
            "revelio_gateway_fanout_total",
            "revelio_gateway_rerouted_total",
            "revelio_gateway_backends_healthy",
            "revelio_gateway_fleet_cache_hit_rate",
            "revelio_gateway_backend_up",
            "revelio_gateway_backend_forwarded_total",
            "revelio_gateway_backend_errors_total",
            "revelio_gateway_backend_busy_total",
        ] {
            assert!(exp.families.contains_key(family), "missing family {family}");
        }
        // Backend samples carry the backend label.
        assert!(text.contains("revelio_gateway_backend_up{backend=\"127.0.0.1:7141\"} 1"));
    }

    #[test]
    fn hostile_gateway_backend_count_fails_before_allocation() {
        let mut payload = Response::Stats(Box::<ServerStats>::default(), None).encode();
        // Strip the v6 trace counters so the gateway-tail tag is the last
        // byte again, flip it to "present", and append a hostile count.
        payload.truncate(payload.len() - 16);
        let last = payload.len() - 1;
        payload[last] = 1;
        put_u64(&mut payload, 0); // routed
        put_u64(&mut payload, 0); // fanout
        put_u64(&mut payload, 0); // rerouted
        put_u64(&mut payload, 0); // scatter
        put_u32(&mut payload, u32::MAX); // backend count with no entries
        assert!(matches!(
            Response::decode(&payload),
            Err(WireDecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn stats_prometheus_exposition_is_valid() {
        let mut s = ServerStats {
            requests: 9,
            shed: 1,
            ..Default::default()
        };
        s.request_latency.count = 9;
        s.request_latency.buckets[1] = 9;
        s.request_latency.total_us = 4_500;
        s.request_latency.max_us = 900;
        s.runtime.epochs_total = 120;
        let text = s.prometheus();
        let exp = revelio_runtime::prometheus::parse_exposition(&text).expect("valid exposition");
        for family in [
            "revelio_jobs_completed_total",
            "revelio_epochs_total",
            "revelio_latency_seconds_optimize",
            "revelio_store_hits_total",
            "revelio_store_misses_total",
            "revelio_server_requests_total",
            "revelio_server_request_latency_seconds",
            "revelio_trace_sampled_total",
            "revelio_trace_dropped_total",
        ] {
            assert!(exp.families.contains_key(family), "missing family {family}");
        }
    }

    #[test]
    fn trace_request_and_response_round_trip() {
        let payload = Request::Trace(42, None).encode();
        match Request::decode(&payload).unwrap() {
            Request::Trace(id, ctx) => {
                assert_eq!(id, 42);
                assert!(ctx.is_none());
            }
            _ => panic!("decoded the wrong variant"),
        }

        let ctx = TraceContext {
            trace_hi: 1,
            trace_lo: 2,
            parent_span: 3,
            sampled: false,
        };
        let payload = Request::Trace(2, Some(ctx)).encode();
        match Request::decode(&payload).unwrap() {
            Request::Trace(id, back) => {
                assert_eq!(id, 2);
                assert_eq!(back, Some(ctx));
            }
            _ => panic!("decoded the wrong variant"),
        }

        let trace = WireTrace {
            id: 42,
            dropped: 3,
            events: vec![
                WireEvent {
                    at_ns: 10,
                    kind: WireEventKind::SpanStart {
                        phase: Phase::FlowIndex,
                    },
                },
                WireEvent {
                    at_ns: 60,
                    kind: WireEventKind::SpanEnd {
                        phase: Phase::FlowIndex,
                        dur_ns: 50,
                    },
                },
                WireEvent {
                    at_ns: 70,
                    kind: WireEventKind::CacheProbe { hit: false },
                },
                WireEvent {
                    at_ns: 100,
                    kind: WireEventKind::Epoch {
                        index: 0,
                        loss: 0.5,
                        grad_norm: 1.25,
                    },
                },
                WireEvent {
                    at_ns: 120,
                    kind: WireEventKind::DeadlineHit { epoch: 1 },
                },
                WireEvent {
                    at_ns: 130,
                    kind: WireEventKind::Note("flow-index-reused".to_owned()),
                },
            ],
        };
        let payload = Response::Trace(Some(Box::new(trace.clone()))).encode();
        match Response::decode(&payload).unwrap() {
            Response::Trace(Some(back)) => {
                assert_eq!(*back, trace);
                assert_eq!(back.epoch_count(), 1);
                assert_eq!(back.losses(), vec![0.5]);
                assert_eq!(back.phase_ns(Phase::FlowIndex), 50);
            }
            _ => panic!("decoded the wrong variant"),
        }

        let payload = Response::Trace(None).encode();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Trace(None)
        ));
    }

    #[test]
    fn stored_explanation_round_trips() {
        let payload = Request::FetchExplanation(77, None).encode();
        match Request::decode(&payload).unwrap() {
            Request::FetchExplanation(id, ctx) => {
                assert_eq!(id, 77);
                assert!(ctx.is_none());
            }
            _ => panic!("decoded the wrong variant"),
        }

        let stored = WireStoredExplanation {
            job_id: 77,
            model: 2,
            graph_id: 9,
            target: Target::Node(4),
            layers: 3,
            edge_scores: vec![0.5, 0.25, -0.1],
            layer_edge_scores: Some(vec![vec![0.1], vec![0.2], vec![0.3]]),
            flow_scores: Some(vec![0.9, 0.8]),
            degradation: Degradation {
                deadline_hit: true,
                epochs_run: 12,
                epochs_planned: 150,
                flows_dropped: 4,
            },
            queue_us: 10,
            prep_us: 20,
            explain_us: 30,
            has_mask: true,
        };
        let payload = Response::Explanation(Some(Box::new(stored.clone()))).encode();
        match Response::decode(&payload).unwrap() {
            Response::Explanation(Some(back)) => assert_eq!(*back, stored),
            _ => panic!("decoded the wrong variant"),
        }

        let payload = Response::Explanation(None).encode();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Explanation(None)
        ));
    }

    #[test]
    fn explanation_list_round_trips() {
        let payload = Request::ListExplanations.encode();
        assert!(matches!(
            Request::decode(&payload).unwrap(),
            Request::ListExplanations
        ));

        let list = vec![
            WireExplanationSummary {
                job_id: 1,
                model: 0,
                graph_id: 7,
                target: Target::Graph,
                layers: 2,
                degraded: false,
                has_mask: true,
            },
            WireExplanationSummary {
                job_id: 9,
                model: 1,
                graph_id: 8,
                target: Target::Node(3),
                layers: 3,
                degraded: true,
                has_mask: false,
            },
        ];
        let payload = Response::ExplanationList(list.clone()).encode();
        match Response::decode(&payload).unwrap() {
            Response::ExplanationList(back) => assert_eq!(back, list),
            _ => panic!("decoded the wrong variant"),
        }
    }

    #[test]
    fn hostile_summary_count_fails_before_allocation() {
        let mut payload = vec![RESP_EXPLANATION_LIST];
        put_u32(&mut payload, u32::MAX); // summary count with no entries
        assert!(matches!(
            Response::decode(&payload),
            Err(WireDecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn hostile_trace_event_count_fails_before_allocation() {
        let mut payload = vec![RESP_TRACE, 1];
        put_u64(&mut payload, 1); // id
        put_u64(&mut payload, 0); // dropped
        put_u32(&mut payload, u32::MAX); // event count with no events
        assert!(matches!(
            Response::decode(&payload),
            Err(WireDecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn assembled_trace_round_trips() {
        let payload = Request::AssembledTrace { hi: 0, lo: 0 }.encode();
        match Request::decode(&payload).unwrap() {
            Request::AssembledTrace { hi, lo } => {
                assert_eq!((hi, lo), (0, 0));
            }
            _ => panic!("decoded the wrong variant"),
        }

        let t = AssembledTrace {
            trace_hi: 0xfeed,
            trace_lo: 0xf00d,
            lanes: vec!["gateway".to_owned(), "shard-1 (127.0.0.1:7152)".to_owned()],
            spans: vec![
                AssembledSpan {
                    lane: 0,
                    name: "route".to_owned(),
                    start_us: 0,
                    dur_us: 3000,
                },
                AssembledSpan {
                    lane: 1,
                    name: "optimize".to_owned(),
                    start_us: 500,
                    dur_us: 2000,
                },
            ],
            dropped: 2,
        };
        let payload = Response::Assembled(Box::new(t.clone())).encode();
        match Response::decode(&payload).unwrap() {
            Response::Assembled(back) => assert_eq!(*back, t),
            _ => panic!("decoded the wrong variant"),
        }
    }

    #[test]
    fn hostile_assembled_counts_fail_before_allocation() {
        // Hostile lane count.
        let mut payload = vec![RESP_ASSEMBLED];
        put_u64(&mut payload, 0); // hi
        put_u64(&mut payload, 0); // lo
        put_u64(&mut payload, 0); // dropped
        put_u32(&mut payload, u32::MAX); // lane count with no lanes
        assert!(matches!(
            Response::decode(&payload),
            Err(WireDecodeError::Truncated { .. })
        ));

        // Hostile span count.
        let mut payload = vec![RESP_ASSEMBLED];
        put_u64(&mut payload, 0);
        put_u64(&mut payload, 0);
        put_u64(&mut payload, 0);
        put_u32(&mut payload, 1);
        put_str(&mut payload, "gateway");
        put_u32(&mut payload, u32::MAX); // span count with no spans
        assert!(matches!(
            Response::decode(&payload),
            Err(WireDecodeError::Truncated { .. })
        ));

        // Span pointing at a lane that does not exist.
        let mut payload = vec![RESP_ASSEMBLED];
        put_u64(&mut payload, 0);
        put_u64(&mut payload, 0);
        put_u64(&mut payload, 0);
        put_u32(&mut payload, 1);
        put_str(&mut payload, "gateway");
        put_u32(&mut payload, 1);
        put_u32(&mut payload, 9); // lane index out of range
        put_str(&mut payload, "route");
        put_u64(&mut payload, 0);
        put_u64(&mut payload, 0);
        assert!(matches!(
            Response::decode(&payload),
            Err(WireDecodeError::Invalid(_))
        ));
    }

    #[test]
    fn unknown_trace_error_kind_round_trips() {
        let payload = Response::Error {
            kind: ErrorKind::UnknownTrace,
            message: "trace 00ab is not retained".to_owned(),
        }
        .encode();
        match Response::decode(&payload).unwrap() {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::UnknownTrace);
                assert!(message.contains("00ab"));
            }
            _ => panic!("decoded the wrong variant"),
        }
    }

    #[test]
    fn wire_trace_converts_from_runtime_trace() {
        let t = Trace {
            id: revelio_trace::TraceId(7),
            dropped: 1,
            events: vec![Event {
                trace: revelio_trace::TraceId(7),
                at_ns: 5,
                kind: EventKind::SpanEnd {
                    phase: Phase::Optimize,
                    dur_ns: 99,
                },
            }],
        };
        let w = WireTrace::from(&t);
        assert_eq!(w.id, 7);
        assert_eq!(w.dropped, 1);
        assert_eq!(w.phase_ns(Phase::Optimize), 99);
    }
}
