//! `revelio-top`: a live stats view over a running `revelio-serve`.
//!
//! ```text
//! revelio-top [--addr HOST:PORT] [--interval-ms MS] [--once] [--prometheus]
//! ```
//!
//! Polls the server's `Stats` request and re-renders the unified wire +
//! runtime report every `--interval-ms` (default 1000). `--once` prints a
//! single snapshot and exits — useful in scripts; `--prometheus` switches
//! the output to the Prometheus text exposition (implies machine
//! consumption, so it never clears the screen).

use std::process::ExitCode;
use std::time::Duration;

use revelio_server::{Client, ClientConfig};

struct Args {
    addr: String,
    interval: Duration,
    once: bool,
    prometheus: bool,
}

const USAGE: &str =
    "usage: revelio-top [--addr HOST:PORT] [--interval-ms MS] [--once] [--prometheus]";

fn value(argv: &[String], i: &mut usize, name: &str) -> Result<String, String> {
    *i += 1;
    argv.get(*i)
        .cloned()
        .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7137".to_owned(),
        interval: Duration::from_millis(1000),
        once: false,
        prometheus: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = value(&argv, &mut i, "--addr")?,
            "--interval-ms" => {
                let ms: u64 = value(&argv, &mut i, "--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?;
                args.interval = Duration::from_millis(ms.max(100));
            }
            "--once" => args.once = true,
            "--prometheus" => args.prometheus = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match Client::connect_with(&args.addr, ClientConfig::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("revelio-top: cannot connect to {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    loop {
        let (stats, gateway) = match client.stats_full() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("revelio-top: stats request failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if args.prometheus {
            println!("{}", stats.prometheus());
            // A gateway answers Stats with a fleet-rollup tail; append its
            // families so one scrape covers routing + backend health too.
            if let Some(g) = &gateway {
                println!("{}", g.prometheus());
            }
        } else {
            if !args.once {
                // ANSI clear + home, like top(1); harmless when redirected.
                print!("\x1b[2J\x1b[H");
            }
            println!("revelio-top — {}", args.addr);
            println!("{}", stats.report());
            if let Some(g) = &gateway {
                println!("{}", g.report());
            }
        }
        if args.once {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(args.interval);
    }
}
