//! `revelio-top`: a live stats view over a running `revelio-serve`.
//!
//! ```text
//! revelio-top [--addr HOST:PORT] [--interval-ms MS] [--once] [--prometheus]
//!             [--trace ID|newest [--chrome PATH]]
//! ```
//!
//! Polls the server's `Stats` request and re-renders the unified wire +
//! runtime report every `--interval-ms` (default 1000). `--once` prints a
//! single snapshot and exits — useful in scripts; `--prometheus` switches
//! the output to the Prometheus text exposition (implies machine
//! consumption, so it never clears the screen).
//!
//! `--trace` fetches one *assembled* distributed trace instead of stats:
//! `ID` is the 32-hex-digit global trace id, the decimal low half echoed
//! as `trace_id` on a traced explain, or `newest` for the most recent
//! assembled trace the peer retains. The tree with per-hop latencies
//! prints to stdout; `--chrome PATH` additionally writes Chrome
//! trace-event JSON loadable in `chrome://tracing` / Perfetto.

use std::process::ExitCode;
use std::time::Duration;

use revelio_server::{Client, ClientConfig};

struct Args {
    addr: String,
    interval: Duration,
    once: bool,
    prometheus: bool,
    /// `(hi, lo)` of the assembled trace to fetch; `(0, 0)` = newest.
    trace: Option<(u64, u64)>,
    chrome: Option<std::path::PathBuf>,
}

const USAGE: &str = "usage: revelio-top [--addr HOST:PORT] [--interval-ms MS] [--once] \
[--prometheus] [--trace ID|newest [--chrome PATH]]";

/// Parses `--trace`'s argument: `newest`, a 32-hex-digit global id, or a
/// decimal low half.
fn parse_trace_id(s: &str) -> Result<(u64, u64), String> {
    if s.eq_ignore_ascii_case("newest") {
        return Ok((0, 0));
    }
    if s.len() == 32 {
        let hi = u64::from_str_radix(&s[..16], 16);
        let lo = u64::from_str_radix(&s[16..], 16);
        if let (Ok(hi), Ok(lo)) = (hi, lo) {
            return Ok((hi, lo));
        }
    }
    s.parse::<u64>()
        .map(|lo| (0, lo))
        .map_err(|_| format!("--trace: {s:?} is neither `newest`, 32 hex digits, nor decimal"))
}

fn value(argv: &[String], i: &mut usize, name: &str) -> Result<String, String> {
    *i += 1;
    argv.get(*i)
        .cloned()
        .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7137".to_owned(),
        interval: Duration::from_millis(1000),
        once: false,
        prometheus: false,
        trace: None,
        chrome: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = value(&argv, &mut i, "--addr")?,
            "--interval-ms" => {
                let ms: u64 = value(&argv, &mut i, "--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?;
                args.interval = Duration::from_millis(ms.max(100));
            }
            "--once" => args.once = true,
            "--prometheus" => args.prometheus = true,
            "--trace" => {
                args.trace = Some(parse_trace_id(&value(&argv, &mut i, "--trace")?)?);
            }
            "--chrome" => {
                args.chrome = Some(value(&argv, &mut i, "--chrome")?.into());
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.chrome.is_some() && args.trace.is_none() {
        eprintln!("--chrome only applies with --trace\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let mut client = match Client::connect_with(&args.addr, ClientConfig::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("revelio-top: cannot connect to {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    if let Some((hi, lo)) = args.trace {
        let assembled = match client.assembled_trace(hi, lo) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("revelio-top: trace fetch failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", assembled.render_tree());
        if let Some(path) = &args.chrome {
            if let Err(e) = std::fs::write(path, assembled.chrome_trace_json()) {
                eprintln!("revelio-top: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("chrome trace written to {}", path.display());
        }
        return ExitCode::SUCCESS;
    }
    loop {
        let (stats, gateway) = match client.stats_full() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("revelio-top: stats request failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if args.prometheus {
            println!("{}", stats.prometheus());
            // A gateway answers Stats with a fleet-rollup tail; append its
            // families so one scrape covers routing + backend health too.
            if let Some(g) = &gateway {
                println!("{}", g.prometheus());
            }
        } else {
            if !args.once {
                // ANSI clear + home, like top(1); harmless when redirected.
                print!("\x1b[2J\x1b[H");
            }
            println!("revelio-top — {}", args.addr);
            println!("{}", stats.report());
            if let Some(g) = &gateway {
                println!("{}", g.report());
            }
        }
        if args.once {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(args.interval);
    }
}
