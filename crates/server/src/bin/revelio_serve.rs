//! `revelio-serve`: the explanation server as a process.
//!
//! ```text
//! revelio-serve [--addr HOST:PORT] [--workers N] [--max-in-flight N]
//!               [--cache-capacity N] [--seed S] [--default-deadline-ms MS]
//!               [--store PATH] [--max-batch N] [--trace-sample-rate R]
//! ```
//!
//! The process prints the bound address on stdout (`listening on ...`
//! followed by a machine-readable `READY addr=<bound-addr>` line) so
//! scripts binding port 0 can discover the port and orchestrators can
//! wait on readiness deterministically, serves until a client sends
//! `Shutdown` (or the process receives SIGTERM/ctrl-C, which the OS
//! turns into process exit), and prints the final unified metrics report
//! on the way out.

use std::process::ExitCode;
use std::time::Duration;

use revelio_runtime::RuntimeConfig;
use revelio_server::{Server, ServerConfig};

struct Args {
    cfg: ServerConfig,
}

const USAGE: &str = "usage: revelio-serve [--addr HOST:PORT] [--workers N] \
[--max-in-flight N] [--cache-capacity N] [--seed S] [--default-deadline-ms MS] \
[--store PATH] [--max-batch N] [--trace-sample-rate R]";

fn value(argv: &[String], i: &mut usize, name: &str) -> Result<String, String> {
    *i += 1;
    argv.get(*i)
        .cloned()
        .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = ServerConfig {
        runtime: RuntimeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            ..RuntimeConfig::default()
        },
        ..ServerConfig::default()
    };
    cfg.addr = "127.0.0.1:7137".to_owned();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => cfg.addr = value(&argv, &mut i, "--addr")?,
            "--workers" => {
                cfg.runtime.workers = value(&argv, &mut i, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--max-in-flight" => {
                cfg.max_in_flight = value(&argv, &mut i, "--max-in-flight")?
                    .parse()
                    .map_err(|e| format!("--max-in-flight: {e}"))?;
            }
            "--cache-capacity" => {
                cfg.runtime.cache_capacity = value(&argv, &mut i, "--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?;
            }
            "--seed" => {
                cfg.runtime.seed = value(&argv, &mut i, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--store" => {
                cfg.store = Some(value(&argv, &mut i, "--store")?.into());
            }
            "--max-batch" => {
                cfg.runtime.max_batch = value(&argv, &mut i, "--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?;
            }
            "--trace-sample-rate" => {
                let rate: f64 = value(&argv, &mut i, "--trace-sample-rate")?
                    .parse()
                    .map_err(|e| format!("--trace-sample-rate: {e}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err("--trace-sample-rate must be in 0..=1".to_owned());
                }
                cfg.trace_sample_rate = rate;
            }
            "--default-deadline-ms" => {
                let ms: u64 = value(&argv, &mut i, "--default-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--default-deadline-ms: {e}"))?;
                cfg.runtime.default_deadline = Some(Duration::from_millis(ms));
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    Ok(Args { cfg })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(args.cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("revelio-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.local_addr());
    // Machine-readable readiness line: the socket is bound and accepting
    // by the time `Server::start` returns, so orchestration (gateway smoke
    // tests, CI scripts) can block on this exact line instead of sleeping.
    println!("READY addr={}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    let stats = server.wait();
    println!("{}", stats.report());
    ExitCode::SUCCESS
}
