//! The blocking TCP server: acceptor + per-connection handler threads over
//! the explanation runtime.
//!
//! Concurrency model: one acceptor thread polls a non-blocking listener;
//! each accepted connection gets its own handler thread that decodes
//! frames, submits jobs to the shared [`Runtime`] worker pool, and writes
//! responses. Parallelism of the *explanations* is bounded by the pool's
//! worker count, not the connection count, and admission control bounds
//! the number of jobs in flight: an `Explain` arriving past
//! [`ServerConfig::max_in_flight`] is answered with [`Response::Busy`]
//! instead of queued (the connection stays usable).
//!
//! Shutdown is graceful: the stop flag halts the acceptor and the
//! handlers *between frames*, in-flight jobs run to completion (handlers
//! block on their tickets), and [`Server::shutdown`] joins every thread
//! before returning the final stats.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use revelio_eval::{
    is_flow_based, is_group_level, method_factory, revelio_batch_config, ALL_METHODS,
};
use revelio_gnn::{Gnn, GnnConfig};
use revelio_graph::Target;
use revelio_runtime::{
    ExplainJob, Histogram, JobError, ModelHandle, Runtime, RuntimeBootError, RuntimeConfig,
    RuntimeConfigError, TraceMiss,
};
use revelio_store::{ExplanationRecord, ExplanationSummary, LogStore, Store, StoreError};
use revelio_trace::{hex_trace_id, AssembledTrace, Sampler};

use crate::wire::{
    parse_header, write_frame, ErrorKind, ExplainRequest, Request, Response, ServedExplanation,
    ServerStats, WireError, WireExplanationSummary, WireStoredExplanation, WireTiming, WireTrace,
    DEFAULT_MAX_FRAME_LEN, HEADER_LEN, PROTOCOL_VERSION,
};

/// How the server binds, times out, and sheds load.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker pool configuration (validated at startup).
    pub runtime: RuntimeConfig,
    /// Admission limit: `Explain` requests arriving while this many jobs
    /// are queued or running are answered with `Busy` instead of queued.
    pub max_in_flight: usize,
    /// Per-frame payload cap; larger frames are rejected before allocation.
    pub max_frame_len: usize,
    /// Once a frame has *begun* arriving, the rest of it must arrive
    /// within this budget or the connection is dropped. Idle connections
    /// (no frame in progress) are never timed out.
    pub read_timeout: Duration,
    /// Budget for writing one response frame.
    pub write_timeout: Duration,
    /// Path of the persistent store log. `Some` attaches a [`LogStore`]:
    /// registrations and finished explanations are persisted write-behind,
    /// an existing file is recovered at startup (models keep their wire
    /// ids, pre-restart explanations stay fetchable), and `Explain`
    /// requests may ask for store-seeded warm starts.
    pub store: Option<std::path::PathBuf>,
    /// Head-based sampling rate in `[0, 1]` for `Explain` requests that
    /// carry no explicit trace request: each such request is traced with
    /// this probability (deterministically, from a counter). Requests
    /// arriving with a propagated trace context honour the upstream
    /// decision instead; `0.0` (the default) never samples locally.
    pub trace_sample_rate: f64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            runtime: RuntimeConfig::default(),
            max_in_flight: 64,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            store: None,
            trace_sample_rate: 0.0,
        }
    }
}

/// Interval at which blocked reads wake up to poll the stop flag. Public
/// so the gateway's connection loop can match the backend's cadence.
pub const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Wire-level counters, updated by handler threads.
#[derive(Default)]
struct WireCounters {
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    requests: AtomicU64,
    shed: AtomicU64,
    protocol_errors: AtomicU64,
    request_latency: Histogram,
    trace_sampled: AtomicU64,
    trace_dropped: AtomicU64,
}

struct Shared {
    runtime: Runtime,
    stop: AtomicBool,
    counters: WireCounters,
    /// Wire model id → runtime handle.
    models: Mutex<Vec<ModelHandle>>,
    /// The same store the runtime writes behind, for serving
    /// `FetchExplanation` / `ListExplanations` reads.
    store: Option<Arc<dyn Store>>,
    cfg: ServerConfig,
    /// Head-based sampler for `Explain` requests without an upstream
    /// trace-context; off (`rate 0`) it is one branch per request.
    sampler: Sampler,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let c = &self.counters;
        ServerStats {
            connections_accepted: c.connections_accepted.load(Ordering::Relaxed),
            connections_active: c.connections_active.load(Ordering::Relaxed),
            bytes_in: c.bytes_in.load(Ordering::Relaxed),
            bytes_out: c.bytes_out.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            request_latency: c.request_latency.snapshot(),
            runtime: self.runtime.metrics(),
            trace_sampled: c.trace_sampled.load(Ordering::Relaxed),
            trace_dropped: c.trace_dropped.load(Ordering::Relaxed),
        }
    }
}

/// A running server; dropping it without calling [`Server::shutdown`]
/// still stops and joins every thread.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds, spawns the worker pool and the acceptor, and returns
    /// immediately; the server is accepting once this returns.
    ///
    /// # Errors
    ///
    /// I/O errors from binding, an invalid [`RuntimeConfig`], or an
    /// unrecoverable store file.
    pub fn start(cfg: ServerConfig) -> Result<Server, ServerStartError> {
        let (runtime, store) = match &cfg.store {
            Some(path) => {
                let store: Arc<dyn Store> = Arc::new(LogStore::open(path)?);
                let runtime =
                    Runtime::try_with_config_and_store(cfg.runtime.clone(), Arc::clone(&store))
                        .map_err(|e| match e {
                            RuntimeBootError::Config(e) => ServerStartError::Runtime(e),
                            RuntimeBootError::Store(e) => ServerStartError::Store(e),
                        })?;
                (runtime, Some(store))
            }
            None => (Runtime::try_with_config(cfg.runtime.clone())?, None),
        };
        // Recovery re-registers stored models in ascending wire-id order
        // and the runtime assigns handles sequentially, so handle index ==
        // wire id; an empty or absent store yields an empty map.
        let models = runtime.model_handles();
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let sampler = Sampler::new(cfg.trace_sample_rate, 0x7265_7665_6c69_6f21);
        let shared = Arc::new(Shared {
            runtime,
            stop: AtomicBool::new(false),
            counters: WireCounters::default(),
            models: Mutex::new(models),
            store,
            cfg,
            sampler,
        });
        let handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            thread::Builder::new()
                .name("revelio-acceptor".to_owned())
                .spawn(move || accept_loop(&listener, &shared, &handlers))?
        };
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether a shutdown has been requested (by [`Server::stop`] or a
    /// `Shutdown` request over the wire).
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Requests shutdown without blocking: stops accepting and tells
    /// handlers to exit at the next frame boundary.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
    }

    /// Current unified wire + runtime stats.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Graceful shutdown: stop accepting, let every in-flight job finish,
    /// join all threads, and return the final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.join_threads();
        self.shared.stats()
    }

    /// Blocks until the server stops on its own (a `Shutdown` request over
    /// the wire) and all threads are joined; returns the final stats.
    pub fn wait(mut self) -> ServerStats {
        while !self.stopping() {
            thread::sleep(POLL_INTERVAL);
        }
        self.join_threads();
        self.shared.stats()
    }

    fn join_threads(&mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // The acceptor has exited, so no new handlers can appear.
        let drained: Vec<_> = match self.handlers.lock() {
            Ok(mut hs) => hs.drain(..).collect(),
            Err(poisoned) => poisoned.into_inner().drain(..).collect(),
        };
        for h in drained {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
        self.join_threads();
    }
}

/// Why [`Server::start`] failed.
#[derive(Debug)]
pub enum ServerStartError {
    /// Binding or configuring the listener failed.
    Io(std::io::Error),
    /// The embedded [`RuntimeConfig`] was rejected.
    Runtime(RuntimeConfigError),
    /// The store file could not be opened or recovered.
    Store(StoreError),
}

impl std::fmt::Display for ServerStartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerStartError::Io(e) => write!(f, "bind failed: {e}"),
            ServerStartError::Runtime(e) => write!(f, "runtime config: {e}"),
            ServerStartError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for ServerStartError {}

impl From<std::io::Error> for ServerStartError {
    fn from(e: std::io::Error) -> Self {
        ServerStartError::Io(e)
    }
}

impl From<RuntimeConfigError> for ServerStartError {
    fn from(e: RuntimeConfigError) -> Self {
        ServerStartError::Runtime(e)
    }
}

impl From<StoreError> for ServerStartError {
    fn from(e: StoreError) -> Self {
        ServerStartError::Store(e)
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared
                    .counters
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .connections_active
                    .fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(shared);
                let spawn = thread::Builder::new()
                    .name("revelio-conn".to_owned())
                    .spawn(move || {
                        handle_connection(stream, &conn_shared);
                        conn_shared
                            .counters
                            .connections_active
                            .fetch_sub(1, Ordering::Relaxed);
                    });
                match spawn {
                    Ok(h) => {
                        if let Ok(mut hs) = handlers.lock() {
                            // Reap finished handlers so a long-lived server
                            // with many short connections does not hoard
                            // JoinHandles; dropping a finished handle just
                            // detaches an already-dead thread.
                            hs.retain(|h| !h.is_finished());
                            hs.push(h);
                        }
                    }
                    Err(_) => {
                        // Thread spawn failed (resource exhaustion); the
                        // stream drops and the peer sees a reset.
                        shared
                            .counters
                            .connections_active
                            .fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Reads one frame, waking every [`POLL_INTERVAL`] to poll the stop flag.
///
/// Returns `Ok(None)` on a clean end of the connection: peer EOF between
/// frames, or a stop request while no frame is in progress. A frame that
/// *started* is given [`ServerConfig::read_timeout`] to finish even during
/// shutdown (the peer paid for the bytes; cutting mid-frame would just
/// produce a protocol error on their side).
fn read_frame_polling(
    stream: &mut TcpStream,
    shared: &Shared,
) -> Result<Option<Vec<u8>>, WireError> {
    let got = read_frame_cancellable(
        stream,
        shared.cfg.max_frame_len,
        shared.cfg.read_timeout,
        &shared.stop,
    )?;
    if let Some((payload, frame_len)) = got {
        shared
            .counters
            .bytes_in
            .fetch_add(frame_len as u64, Ordering::Relaxed);
        Ok(Some(payload))
    } else {
        Ok(None)
    }
}

/// Reads one frame from a stream whose read timeout is set to a short poll
/// interval, waking between reads to check `stop`.
///
/// Returns `Ok(None)` on a clean end (peer EOF between frames, or `stop`
/// raised while no frame is in progress) and `Ok(Some((payload,
/// frame_len)))` on success, where `frame_len` counts header + payload
/// bytes for accounting. A frame that *started* is given `read_timeout` to
/// finish even after `stop` is raised. This is the building block behind
/// both the backend server's connection loop and the gateway's; callers
/// must have set a short socket read timeout (else `stop` is only polled
/// at that cadence).
pub fn read_frame_cancellable(
    stream: &mut TcpStream,
    max_len: usize,
    read_timeout: Duration,
    stop: &AtomicBool,
) -> Result<Option<(Vec<u8>, usize)>, WireError> {
    let mut buf: Vec<u8> = Vec::with_capacity(HEADER_LEN);
    let mut chunk = [0u8; 64 * 1024];
    let mut started_at: Option<Instant> = None;
    let mut need = HEADER_LEN;
    let mut expected_crc = 0u32;
    let mut header_parsed = false;

    loop {
        if let Some(t0) = started_at {
            if t0.elapsed() > read_timeout {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "frame did not complete within the read timeout",
                )));
            }
        } else if stop.load(Ordering::Acquire) {
            return Ok(None);
        }
        let want = (need - buf.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(None)
                } else {
                    Err(WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    )))
                };
            }
            Ok(n) => {
                if started_at.is_none() {
                    started_at = Some(Instant::now());
                }
                buf.extend_from_slice(&chunk[..n]);
                if !header_parsed && buf.len() == HEADER_LEN {
                    let mut header = [0u8; HEADER_LEN];
                    header.copy_from_slice(&buf);
                    let (len, crc) = parse_header(&header, max_len)?;
                    header_parsed = true;
                    expected_crc = crc;
                    need = HEADER_LEN + len;
                    if len == 0 {
                        // Fall through to the completion check below.
                    }
                }
                if header_parsed && buf.len() == need {
                    let payload = buf.split_off(HEADER_LEN);
                    let got = crate::wire::crc32(&payload);
                    if got != expected_crc {
                        return Err(WireError::ChecksumMismatch {
                            expected: expected_crc,
                            got,
                        });
                    }
                    return Ok(Some((payload, need)));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    // Short socket timeouts turn blocking reads into a stop-flag poll loop;
    // `read_frame_polling` enforces the real per-frame budget itself.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.set_nodelay(true);

    loop {
        let payload = match read_frame_polling(&mut stream, shared) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(e) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                // Best-effort diagnostic, then drop the connection: framing
                // is lost, so nothing later on this stream can be trusted.
                let resp = Response::Error {
                    kind: ErrorKind::Malformed,
                    message: e.to_string(),
                };
                let _ = send_response(&mut stream, shared, &resp);
                return;
            }
        };
        let t0 = Instant::now();
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    kind: ErrorKind::Malformed,
                    message: e.to_string(),
                };
                let _ = send_response(&mut stream, shared, &resp);
                return;
            }
        };
        let (response, close_after) = serve_request(request, shared, t0);
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        shared.counters.request_latency.observe(t0.elapsed());
        if send_response(&mut stream, shared, &response).is_err() || close_after {
            return;
        }
    }
}

fn send_response(
    stream: &mut TcpStream,
    shared: &Shared,
    resp: &Response,
) -> Result<(), WireError> {
    let n = write_frame(stream, &resp.encode(), shared.cfg.max_frame_len)?;
    shared
        .counters
        .bytes_out
        .fetch_add(n as u64, Ordering::Relaxed);
    Ok(())
}

/// Serves one decoded request; the second return value asks the handler to
/// close the connection after writing the response.
fn serve_request(request: Request, shared: &Shared, t0: Instant) -> (Response, bool) {
    if shared.stop.load(Ordering::Acquire)
        && !matches!(
            request,
            // Read-only requests stay answerable during shutdown.
            Request::Stats
                | Request::Trace(..)
                | Request::FetchExplanation(..)
                | Request::AssembledTrace { .. }
                | Request::ListExplanations
        )
    {
        return (
            Response::Error {
                kind: ErrorKind::ShuttingDown,
                message: "server is shutting down".to_owned(),
            },
            true,
        );
    }
    match request {
        Request::Ping => (
            Response::Pong {
                version: PROTOCOL_VERSION,
            },
            false,
        ),
        Request::RegisterModel { config, state } => (register_model(shared, config, &state), false),
        Request::Explain(req) => (serve_explain(shared, req, t0), false),
        Request::Stats => (Response::Stats(Box::new(shared.stats()), None), false),
        Request::Trace(id, _context) => {
            // Read-only, like `Stats`: still answered during shutdown so a
            // client can fetch the trace of a job that just completed.
            let trace = shared
                .runtime
                .trace(id)
                .map(|t| Box::new(WireTrace::from(&t)));
            (Response::Trace(trace), false)
        }
        Request::AssembledTrace { hi, lo } => (serve_assembled(shared, hi, lo), false),
        Request::Shutdown => {
            shared.stop.store(true, Ordering::Release);
            (Response::ShutdownAck, true)
        }
        Request::FetchExplanation(job_id, _context) => (fetch_explanation(shared, job_id), false),
        Request::ListExplanations => (list_explanations(shared), false),
    }
}

/// Serves `AssembledTrace` on a backend: a single-lane assembly of the
/// retained fragment (the gateway stitches multi-lane traces; asking a
/// backend directly still yields a loadable chrome trace).
fn serve_assembled(shared: &Shared, hi: u64, lo: u64) -> Response {
    let fetched = if hi == 0 && lo == 0 {
        // (0, 0) is the "newest" probe, mirroring `revelio-top --trace
        // newest` against a single backend.
        shared.runtime.newest_trace().ok_or(TraceMiss::Unknown)
    } else {
        shared.runtime.fetch_trace(lo)
    };
    match fetched {
        Ok(t) => Response::Assembled(Box::new(AssembledTrace::from_fragment(
            hi, t.id.0, "backend", 0, &t,
        ))),
        Err(miss) => Response::Error {
            kind: ErrorKind::UnknownTrace,
            message: format!("trace {}: {miss}", hex_trace_id(hi, lo)),
        },
    }
}

fn no_store_response() -> Response {
    Response::Error {
        kind: ErrorKind::NoStore,
        message: "this server runs without a persistent store".to_owned(),
    }
}

fn store_read_error(e: &StoreError) -> Response {
    Response::Error {
        kind: ErrorKind::Internal,
        message: format!("store read failed: {e}"),
    }
}

fn fetch_explanation(shared: &Shared, job_id: u64) -> Response {
    let Some(store) = shared.store.as_ref() else {
        return no_store_response();
    };
    match store.explanation(job_id) {
        Ok(rec) => Response::Explanation(rec.map(|r| Box::new(wire_stored(r)))),
        Err(e) => store_read_error(&e),
    }
}

fn list_explanations(shared: &Shared) -> Response {
    let Some(store) = shared.store.as_ref() else {
        return no_store_response();
    };
    match store.list_explanations() {
        Ok(list) => Response::ExplanationList(list.iter().map(wire_summary).collect()),
        Err(e) => store_read_error(&e),
    }
}

fn wire_stored(r: ExplanationRecord) -> WireStoredExplanation {
    WireStoredExplanation {
        job_id: r.job_id,
        model: r.key.model_id,
        graph_id: r.key.graph_id,
        target: r.key.target,
        layers: r.key.layers,
        edge_scores: r.edge_scores,
        layer_edge_scores: r.layer_edge_scores,
        flow_scores: r.flow_scores,
        degradation: r.degradation,
        queue_us: r.phases.queue_us,
        prep_us: r.phases.prep_us,
        explain_us: r.phases.explain_us,
        has_mask: r.mask.is_some(),
    }
}

fn wire_summary(s: &ExplanationSummary) -> WireExplanationSummary {
    WireExplanationSummary {
        job_id: s.job_id,
        model: s.key.model_id,
        graph_id: s.key.graph_id,
        target: s.key.target,
        layers: s.key.layers,
        degraded: s.degraded,
        has_mask: s.has_mask,
    }
}

fn register_model(shared: &Shared, config: GnnConfig, state: &[Vec<f32>]) -> Response {
    if let Err(msg) = validate_gnn_config(&config, shared.cfg.max_frame_len) {
        return Response::Error {
            kind: ErrorKind::Malformed,
            message: msg.to_owned(),
        };
    }
    // `Gnn::load_state` panics on shape mismatch, so the shapes are checked
    // against a freshly initialised model first.
    let model = Gnn::new(config);
    let reference = model.state_dict();
    if reference.len() != state.len() {
        return Response::Error {
            kind: ErrorKind::Malformed,
            message: format!(
                "state dict has {} parameter buffers, the architecture needs {}",
                state.len(),
                reference.len()
            ),
        };
    }
    for (i, (r, s)) in reference.iter().zip(state).enumerate() {
        if r.len() != s.len() {
            return Response::Error {
                kind: ErrorKind::Malformed,
                message: format!(
                    "parameter {i} has {} values, the architecture needs {}",
                    s.len(),
                    r.len()
                ),
            };
        }
        if let Some(bad) = s.iter().find(|v| !v.is_finite()) {
            return Response::Error {
                kind: ErrorKind::Malformed,
                message: format!("parameter {i} contains a non-finite weight {bad}"),
            };
        }
    }
    model.load_state(state);
    let handle = shared.runtime.register_model(&model);
    let mut models = match shared.models.lock() {
        Ok(m) => m,
        Err(p) => p.into_inner(),
    };
    models.push(handle);
    Response::ModelRegistered {
        model: (models.len() - 1) as u32,
    }
}

fn validate_gnn_config(c: &GnnConfig, max_frame_len: usize) -> Result<(), &'static str> {
    if c.in_dim == 0 || c.hidden_dim == 0 || c.num_classes == 0 {
        return Err("model dimensions must be at least 1");
    }
    if c.num_layers == 0 || c.num_layers > 16 {
        return Err("num_layers must be in 1..=16");
    }
    if c.heads == 0 || c.heads > 64 {
        return Err("heads must be in 1..=64");
    }
    // `Gnn::new` materialises every weight matrix, so the parameter
    // footprint must be bounded *before* construction — a small frame
    // declaring `in_dim`/`hidden_dim` near `u32::MAX` would otherwise
    // force an exabyte-scale allocation. The estimate below over-counts
    // the real parameter total by at most ~2x (it prices every layer at
    // the widest fan-in/fan-out), so any architecture it rejects could
    // never have shipped its weights inside one `max_frame_len` frame —
    // the state-length check after `Gnn::new` would refuse it anyway.
    let fan_out = c
        .hidden_dim
        .max(c.num_classes)
        .saturating_mul(c.heads.max(1));
    let first = c.in_dim.saturating_mul(fan_out);
    let rest = c
        .hidden_dim
        .saturating_mul(fan_out)
        .saturating_mul(c.num_layers.saturating_sub(1));
    let readout = c.hidden_dim.saturating_mul(c.num_classes);
    let elems = first.saturating_add(rest).saturating_add(readout);
    // `elems` f32s at 4 bytes each, allowing the 2x over-count slack.
    if elems.saturating_mul(2) > max_frame_len {
        return Err("model dimensions exceed the serving parameter limit");
    }
    Ok(())
}

fn serve_explain(shared: &Shared, req: ExplainRequest, t0: Instant) -> Response {
    let handle = {
        let models = match shared.models.lock() {
            Ok(m) => m,
            Err(p) => p.into_inner(),
        };
        match models.get(req.model as usize) {
            Some(&h) => h,
            None => {
                return Response::Error {
                    kind: ErrorKind::UnknownModel,
                    message: format!("model id {} was never registered", req.model),
                }
            }
        }
    };
    // The registry hands factories a `&'static str`, so the wire string is
    // mapped back onto the canonical method table.
    let method: &'static str = match ALL_METHODS.iter().find(|m| **m == req.method) {
        Some(m) => m,
        None => {
            return Response::Error {
                kind: ErrorKind::UnknownMethod,
                message: format!("unknown method {:?}", req.method),
            }
        }
    };
    if is_group_level(method) {
        return Response::Error {
            kind: ErrorKind::GroupLevelMethod,
            message: format!(
                "{method} trains over instance groups and cannot be served per-request"
            ),
        };
    }
    if let Target::Node(n) = req.target {
        if n >= req.graph.num_nodes() {
            return Response::Error {
                kind: ErrorKind::Malformed,
                message: format!(
                    "target node {n} out of range for a {}-node graph",
                    req.graph.num_nodes()
                ),
            };
        }
    }
    // Head-based sampling: a propagated context carries the upstream
    // decision (the gateway already sampled); a context-free request asks
    // the local sampler, so direct clients can opt whole deployments into
    // `--trace-sample-rate` without touching call sites. An explicit
    // `control.trace` always wins.
    let traced = req.control.trace
        || req
            .context
            .map_or_else(|| shared.sampler.sample(), |c| c.sampled);
    if traced {
        shared
            .counters
            .trace_sampled
            .fetch_add(1, Ordering::Relaxed);
    } else {
        shared
            .counters
            .trace_dropped
            .fetch_add(1, Ordering::Relaxed);
    }
    let job = ExplainJob {
        graph: req.graph,
        target: req.target,
        graph_id: req.graph_id,
        make_explainer: method_factory(method, req.objective, req.effort),
        needs_flows: is_flow_based(method),
        max_flows: usize::try_from(req.control.max_flows).unwrap_or(usize::MAX),
        shrink_on_overflow: req.control.shrink_on_overflow,
        deadline: req.control.deadline_ms.map(Duration::from_millis),
        trace: traced,
        // Journal the fragment under the global trace id's low half so the
        // gateway (or any peer) can fetch it fleet-wide.
        trace_key: if traced {
            req.context.map(|c| c.trace_lo)
        } else {
            None
        },
        warm_start: req.control.warm_start,
        // REVELIO requests advertise their config so the runtime can fuse
        // compatible queued jobs into one optimize pass.
        batch_spec: (method == "REVELIO").then(|| revelio_batch_config(req.objective, req.effort)),
    };
    let ticket = match shared
        .runtime
        .try_submit(handle, job, shared.cfg.max_in_flight)
    {
        Ok(t) => t,
        Err(_rejected) => {
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Response::Busy {
                in_flight: shared.runtime.in_flight() as u32,
                limit: shared.cfg.max_in_flight as u32,
            };
        }
    };
    match ticket.wait() {
        Ok(out) => {
            let timing = WireTiming {
                queue_us: as_us(out.timing.queue_wait),
                prep_us: as_us(out.timing.prep),
                explain_us: as_us(out.timing.explain),
                total_us: as_us(t0.elapsed()),
            };
            Response::Explained(ServedExplanation {
                edge_scores: out.explanation.edge_scores,
                layer_edge_scores: out.explanation.layer_edge_scores,
                flow_scores: out.explanation.flows.map(|f| f.scores),
                degradation: out.degradation,
                timing,
                trace_id: out.trace.as_ref().map(|t| t.id.0),
            })
        }
        Err(e) => {
            let kind = match &e {
                JobError::UnknownModel => ErrorKind::UnknownModel,
                JobError::Cancelled => ErrorKind::ShuttingDown,
                JobError::TooManyFlows { .. } => ErrorKind::Malformed,
                JobError::Panicked(_) | JobError::Lost => ErrorKind::Internal,
            };
            Response::Error {
                kind,
                message: e.to_string(),
            }
        }
    }
}

fn as_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::DEFAULT_MAX_FRAME_LEN;
    use revelio_gnn::{GnnKind, Task};

    #[test]
    fn validate_gnn_config_accepts_paper_scale_models() {
        // Cora-sized input with the paper's standard widths must pass.
        let c = GnnConfig::standard(GnnKind::Gat, Task::NodeClassification, 1433, 7, 0);
        assert!(validate_gnn_config(&c, DEFAULT_MAX_FRAME_LEN).is_ok());
    }

    #[test]
    fn validate_gnn_config_rejects_hostile_dimensions() {
        // A ~40-byte RegisterModel frame can declare dimensions whose
        // weight matrices would be exabytes; the bound must fire before
        // `Gnn::new` ever sees them.
        let base = GnnConfig::standard(GnnKind::Gcn, Task::NodeClassification, 4, 2, 0);
        for hostile in [
            GnnConfig {
                in_dim: u32::MAX as usize,
                hidden_dim: u32::MAX as usize,
                ..base.clone()
            },
            GnnConfig {
                hidden_dim: u32::MAX as usize,
                ..base.clone()
            },
            GnnConfig {
                in_dim: u32::MAX as usize,
                num_classes: u32::MAX as usize,
                ..base.clone()
            },
        ] {
            assert!(
                validate_gnn_config(&hostile, DEFAULT_MAX_FRAME_LEN).is_err(),
                "accepted in={} hidden={} classes={}",
                hostile.in_dim,
                hostile.hidden_dim,
                hostile.num_classes
            );
        }
    }
}
