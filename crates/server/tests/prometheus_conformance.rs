//! Prometheus exposition conformance for both scrape surfaces: the
//! backend's `ServerStats::prometheus()` and the gateway tail's
//! `GatewayStats::prometheus()` (the two blocks `revelio-top
//! --prometheus` concatenates).
//!
//! [`parse_exposition`] already enforces the structural invariants —
//! every sample belongs to a `# TYPE`-declared family, histogram
//! families carry `_sum`, `_count`, and a cumulative bucket ladder
//! ending in `le="+Inf"` equal to `_count`. This test adds the ordering
//! rule the parser skips (`# HELP` *and* `# TYPE` must precede every
//! family's first sample) and pins the family inventory both surfaces
//! promise.

#![allow(clippy::unwrap_used)]

use std::collections::BTreeSet;

use revelio_core::wire::ControlSpec;
use revelio_core::Objective;
use revelio_eval::Effort;
use revelio_gnn::{Gnn, GnnConfig, GnnKind, Task, TrainConfig};
use revelio_graph::{Graph, Target};
use revelio_runtime::prometheus::{parse_exposition, FamilyType};
use revelio_runtime::RuntimeConfig;
use revelio_server::wire::{GatewayBackendStats, GatewayStats};
use revelio_server::{Client, ExplainRequest, Server, ServerConfig};

/// Walks the exposition line by line and fails if any sample appears
/// before its family's `# HELP` or `# TYPE` declaration.
fn assert_help_and_type_precede_samples(text: &str) {
    let mut helped = BTreeSet::new();
    let mut typed = BTreeSet::new();
    let mut histograms = BTreeSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            helped.insert(rest.split_whitespace().next().unwrap().to_owned());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().unwrap().to_owned();
            if it.next() == Some("histogram") {
                histograms.insert(name.clone());
            }
            typed.insert(name);
        } else if !line.trim().is_empty() && !line.starts_with('#') {
            let name = line.split(['{', ' ']).next().unwrap();
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suf| {
                    name.strip_suffix(suf)
                        .filter(|base| histograms.contains(*base))
                })
                .unwrap_or(name);
            assert!(
                typed.contains(family),
                "sample {name} rendered before its # TYPE"
            );
            assert!(
                helped.contains(family),
                "sample {name} rendered before its # HELP"
            );
        }
    }
}

/// A tiny trained model so the server surface carries live histogram
/// observations, not just zeroed families.
fn trained_model() -> (Gnn, Graph) {
    let mut b = Graph::builder(5, 2);
    b.undirected_edge(0, 1)
        .undirected_edge(1, 2)
        .undirected_edge(2, 3)
        .undirected_edge(3, 4);
    for v in 0..5 {
        b.node_features(v, &[1.0, v as f32 * 0.3]);
    }
    b.node_labels((0..5).map(|v| v % 2).collect());
    let graph = b.build();
    let model = Gnn::new(GnnConfig {
        kind: GnnKind::Gcn,
        task: Task::NodeClassification,
        in_dim: 2,
        hidden_dim: 8,
        num_classes: 2,
        num_layers: 2,
        heads: 1,
        seed: 7,
    });
    revelio_gnn::train_node_classifier(
        &model,
        &graph,
        &[0, 1, 2, 3, 4],
        &TrainConfig {
            epochs: 10,
            ..Default::default()
        },
    );
    (model, graph)
}

#[test]
fn backend_exposition_conforms_with_live_observations() {
    let (model, graph) = trained_model();
    let server = Server::start(ServerConfig {
        runtime: RuntimeConfig {
            workers: 1,
            seed: 42,
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let id = client.register_model(&model).unwrap();
    for gid in 0..2 {
        client
            .explain(&ExplainRequest {
                model: id,
                graph_id: gid,
                method: "REVELIO".to_owned(),
                objective: Objective::Factual,
                effort: Effort::Quick,
                target: Target::Node(2),
                control: ControlSpec::default(),
                graph: graph.clone(),
                context: None,
            })
            .unwrap();
    }
    let stats = client.stats().unwrap();
    server.shutdown();

    let text = stats.prometheus();
    let exp = parse_exposition(&text).expect("backend exposition parses");
    assert_help_and_type_precede_samples(&text);

    // The wire surface promises these families — including the tracing
    // counters every deployment exports even with sampling off.
    for counter in [
        "revelio_server_requests_total",
        "revelio_server_bytes_in_total",
        "revelio_server_bytes_out_total",
        "revelio_trace_sampled_total",
        "revelio_trace_dropped_total",
    ] {
        assert_eq!(
            exp.families.get(counter),
            Some(&FamilyType::Counter),
            "{counter} missing or mistyped"
        );
    }
    assert_eq!(
        exp.families.get("revelio_server_request_latency_seconds"),
        Some(&FamilyType::Histogram)
    );
    // Live traffic landed in the request-latency histogram: _count > 0
    // (the parser already proved +Inf == _count and _sum exists).
    let count = exp
        .samples
        .iter()
        .find(|(n, _, _)| n == "revelio_server_request_latency_seconds_count")
        .expect("request latency _count")
        .2;
    assert!(count > 0.0, "live requests should be observed");
    // Every histogram family survived the parser's _sum/_count/+Inf
    // checks; make the inventory explicit so removals fail loudly.
    let histograms: Vec<&String> = exp
        .families
        .iter()
        .filter(|(_, t)| **t == FamilyType::Histogram)
        .map(|(n, _)| n)
        .collect();
    assert!(
        histograms.len() >= 5,
        "expected the runtime stage histograms plus request latency, got {histograms:?}"
    );
}

#[test]
fn gateway_exposition_conforms() {
    let g = GatewayStats {
        routed: 7,
        fanout: 2,
        rerouted: 1,
        scatter: 3,
        backends: vec![
            GatewayBackendStats {
                addr: "127.0.0.1:7201".to_owned(),
                healthy: true,
                forwarded: 5,
                ..Default::default()
            },
            GatewayBackendStats {
                addr: "127.0.0.1:7202".to_owned(),
                healthy: false,
                errors: 2,
                ..Default::default()
            },
        ],
    };
    let text = g.prometheus();
    let exp = parse_exposition(&text).expect("gateway exposition parses");
    assert_help_and_type_precede_samples(&text);

    for counter in [
        "revelio_gateway_routed_total",
        "revelio_gateway_rerouted_total",
        "revelio_gateway_scatter_total",
        "revelio_gateway_backend_forwarded_total",
    ] {
        assert_eq!(
            exp.families.get(counter),
            Some(&FamilyType::Counter),
            "{counter} missing or mistyped"
        );
    }
    assert_eq!(
        exp.families.get("revelio_gateway_backends_healthy"),
        Some(&FamilyType::Gauge)
    );
    // Per-backend families carry one labelled sample per shard.
    assert_eq!(exp.samples_of("revelio_gateway_backend_up").len(), 2);

    // The combined scrape `revelio-top --prometheus` emits (backend
    // families then the gateway tail) must also parse as one document.
    let combined = format!(
        "{}\n{text}",
        revelio_server::ServerStats::default().prometheus()
    );
    parse_exposition(&combined).expect("combined scrape parses");
    assert_help_and_type_precede_samples(&combined);
}
