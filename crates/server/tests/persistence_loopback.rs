//! End-to-end persistence tests: a real TCP server over a real store file.
//!
//! The acceptance property from the store design: restarting the server
//! against an existing store restores the model registry (wire ids keep
//! working without re-registration) and keeps pre-restart explanations
//! fetchable by job id over the v3 `FetchExplanation` frame.

#![allow(clippy::unwrap_used)]

use std::sync::atomic::{AtomicU64, Ordering};

use revelio_core::wire::ControlSpec;
use revelio_core::Objective;
use revelio_eval::Effort;
use revelio_gnn::{Gnn, GnnConfig, GnnKind, Task, TrainConfig};
use revelio_graph::{Graph, Target};
use revelio_runtime::RuntimeConfig;
use revelio_server::{Client, ClientError, ErrorKind, ExplainRequest, Server, ServerConfig};

/// A fresh store path per call: unique within the process run and across
/// concurrently running test binaries.
fn temp_store() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "revelio-server-persist-{}-{}.log",
        std::process::id(),
        n
    ))
}

fn trained_model() -> (Gnn, Graph) {
    let mut b = Graph::builder(5, 2);
    b.undirected_edge(0, 1)
        .undirected_edge(1, 2)
        .undirected_edge(2, 3)
        .undirected_edge(3, 4);
    for v in 0..5 {
        b.node_features(v, &[1.0, v as f32 * 0.3]);
    }
    b.node_labels((0..5).map(|v| v % 2).collect());
    let g = b.build();
    let model = Gnn::new(GnnConfig {
        kind: GnnKind::Gcn,
        task: Task::NodeClassification,
        in_dim: 2,
        hidden_dim: 8,
        num_classes: 2,
        num_layers: 2,
        heads: 1,
        seed: 7,
    });
    revelio_gnn::train_node_classifier(
        &model,
        &g,
        &[0, 1, 2, 3, 4],
        &TrainConfig {
            epochs: 20,
            ..Default::default()
        },
    );
    (model, g)
}

fn start_server(store: &std::path::Path) -> Server {
    Server::start(ServerConfig {
        runtime: RuntimeConfig {
            workers: 1,
            seed: 42,
            ..Default::default()
        },
        store: Some(store.to_path_buf()),
        ..Default::default()
    })
    .expect("server starts")
}

fn explain_request(graph: &Graph, warm_start: bool) -> ExplainRequest {
    ExplainRequest {
        model: 0,
        graph_id: 1,
        method: "REVELIO".to_owned(),
        objective: Objective::Factual,
        effort: Effort::Quick,
        target: Target::Node(2),
        control: ControlSpec {
            deadline_ms: Some(60_000),
            warm_start,
            ..Default::default()
        },
        graph: graph.clone(),
        context: None,
    }
}

#[test]
fn restart_restores_models_and_serves_pre_restart_explanations() {
    let path = temp_store();
    let (model, g) = trained_model();

    // First life: register, explain, discover the job id via the listing.
    let (job_id, served_scores) = {
        let server = start_server(&path);
        let mut client = Client::connect(server.local_addr()).expect("connect");
        assert_eq!(client.register_model(&model).expect("register"), 0);
        let served = client
            .explain(&explain_request(&g, false))
            .expect("explain");
        let list = client.list_explanations().expect("list");
        assert_eq!(list.len(), 1, "one stored explanation: {list:?}");
        assert_eq!(list[0].model, 0);
        assert_eq!(list[0].graph_id, 1);
        assert_eq!(list[0].target, Target::Node(2));
        assert!(list[0].has_mask, "REVELIO records a converged mask");
        let fetched = client
            .fetch_explanation(list[0].job_id)
            .expect("fetch")
            .expect("stored record");
        assert_eq!(fetched.edge_scores, served.edge_scores);
        server.shutdown();
        (list[0].job_id, served.edge_scores)
    };

    // Second life against the same file: the model registry is restored,
    // so model id 0 serves without re-registration, and the pre-restart
    // explanation is still addressable by its job id.
    let server = start_server(&path);
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    let fetched = client
        .fetch_explanation(job_id)
        .expect("fetch after restart")
        .expect("record survived the restart");
    assert_eq!(fetched.edge_scores, served_scores);
    assert_eq!(fetched.job_id, job_id);

    // A warm-started request against the recovered registry hits the
    // stored mask (the store counters cross the wire in `Stats`).
    let warm = client
        .explain(&explain_request(&g, true))
        .expect("warm explain");
    assert_eq!(warm.edge_scores.len(), served_scores.len());
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.runtime.store_hits, 1,
        "warm lookup should hit the recovered store: {stats:?}"
    );
    assert_eq!(stats.runtime.store_misses, 0);

    // The new job's id resumed past the stored one.
    let list = client.list_explanations().expect("list after restart");
    assert_eq!(list.len(), 2);
    assert!(list.iter().any(|s| s.job_id > job_id));

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn storeless_server_answers_store_requests_with_a_typed_error() {
    let server = Server::start(ServerConfig {
        runtime: RuntimeConfig {
            workers: 1,
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    match client.fetch_explanation(1) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::NoStore),
        other => panic!("expected a NoStore error, got {other:?}"),
    }
    match client.list_explanations() {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::NoStore),
        other => panic!("expected a NoStore error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn store_reads_stay_answerable_during_shutdown() {
    use std::io::Write;

    let path = temp_store();
    let (model, g) = trained_model();
    let server = start_server(&path);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.register_model(&model).expect("register");
    client
        .explain(&explain_request(&g, false))
        .expect("explain");
    let list = client.list_explanations().expect("list");

    // A handler closes its connection at the next frame *boundary* after
    // stop, but a frame that has begun arriving is always read to
    // completion — so splitting the fetch around the stop guarantees
    // serve_request sees the stop flag with a store read in hand, which is
    // exactly the gate under test (read-only frames answer like
    // Stats/Trace instead of `ShuttingDown`).
    let mut sock = std::net::TcpStream::connect(server.local_addr()).expect("raw connect");
    let frame = revelio_server::wire::encode_frame(
        &revelio_server::Request::FetchExplanation(list[0].job_id, None).encode(),
        revelio_server::DEFAULT_MAX_FRAME_LEN,
    )
    .expect("encode");
    sock.write_all(&frame[..7]).expect("first half");
    sock.flush().expect("flush");
    // Let the handler consume the half-frame so it is committed to it.
    std::thread::sleep(std::time::Duration::from_millis(300));
    server.stop();
    sock.write_all(&frame[7..]).expect("second half");
    sock.flush().expect("flush");
    let (payload, _) =
        revelio_server::wire::read_frame(&mut sock, revelio_server::DEFAULT_MAX_FRAME_LEN)
            .expect("response frame")
            .expect("response before close");
    match revelio_server::Response::decode(&payload).expect("decode") {
        revelio_server::Response::Explanation(Some(rec)) => {
            assert_eq!(rec.job_id, list[0].job_id);
        }
        other => panic!(
            "expected the stored explanation during shutdown, got {:?}",
            std::mem::discriminant(&other)
        ),
    }
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_job_id_fetches_none() {
    let path = temp_store();
    let server = start_server(&path);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert!(client.fetch_explanation(10_000).expect("fetch").is_none());
    assert!(client.list_explanations().expect("list").is_empty());
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn protocol_version_is_v6() {
    let path = temp_store();
    let server = start_server(&path);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(client.ping().expect("ping"), 6);
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}
