//! Property tests for the wire codec: round-trips on arbitrary messages,
//! and rejection (never a panic, never silent corruption) for truncated,
//! corrupted, oversized, and wrong-version frames.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;

use revelio_core::wire::ControlSpec;
use revelio_core::{Degradation, Objective};
use revelio_eval::Effort;
use revelio_graph::{Graph, Target};
use revelio_server::wire::{
    crc32, encode_frame, read_frame, ExplainRequest, Request, Response, ServedExplanation,
    ServerStats, WireError, WireTiming, HEADER_LEN, PROTOCOL_VERSION,
};
use revelio_trace::TraceContext;

const METHODS: [&str; 4] = ["REVELIO", "FlowX", "GNNExplainer", "GradCAM"];

/// Builds a valid graph from raw generated material, skipping edges that
/// would violate the builder's invariants.
fn graph_from(num_nodes: usize, feat_dim: usize, raw_edges: &[(usize, usize)]) -> Graph {
    let mut b = Graph::builder(num_nodes, feat_dim);
    for &(s, d) in raw_edges {
        let (s, d) = (s % num_nodes, d % num_nodes);
        if s != d && !b.has_edge(s, d) {
            b.edge(s, d);
        }
    }
    let feats: Vec<f32> = (0..num_nodes * feat_dim)
        .map(|i| (i as f32 * 0.37).sin())
        .collect();
    if !feats.is_empty() {
        b.all_features(feats);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn explain_request_round_trips(
        shape in (2usize..9, 1usize..4, 0u64..u64::MAX),
        raw_edges in prop::collection::vec((0usize..9, 0usize..9), 0..14),
        knobs in (0usize..4, 0u64..5_000, 1u64..200_000, 0usize..8),
    ) {
        let (num_nodes, feat_dim, graph_id) = shape;
        let (method_ix, deadline_ms, max_flows, variant) = knobs;
        let graph = graph_from(num_nodes, feat_dim, &raw_edges);
        let req = ExplainRequest {
            model: (graph_id % u32::MAX as u64) as u32,
            graph_id,
            method: METHODS[method_ix].to_owned(),
            objective: if variant & 1 == 0 { Objective::Factual } else { Objective::Counterfactual },
            effort: if variant & 2 == 0 { Effort::Quick } else { Effort::Paper },
            target: if variant & 4 == 0 {
                Target::Graph
            } else {
                Target::Node(graph_id as usize % num_nodes)
            },
            control: ControlSpec {
                deadline_ms: if deadline_ms == 0 { None } else { Some(deadline_ms) },
                max_flows,
                shrink_on_overflow: variant & 1 == 1,
                trace: variant & 2 == 2,
                warm_start: variant & 4 == 4,
            },
            graph,
            // Half the cases propagate a context so the optional tail's
            // both shapes round-trip under the same property.
            context: (graph_id % 2 == 0).then_some(TraceContext {
                trace_hi: graph_id ^ 0x9e37_79b9_7f4a_7c15,
                trace_lo: graph_id | 1,
                parent_span: variant as u64,
                sampled: variant & 1 == 1,
            }),
        };
        let payload = Request::Explain(req.clone()).encode();
        let back = match Request::decode(&payload).unwrap() {
            Request::Explain(e) => e,
            _ => panic!("wrong variant"),
        };
        prop_assert_eq!(back.model, req.model);
        prop_assert_eq!(back.graph_id, req.graph_id);
        prop_assert_eq!(back.method, req.method);
        prop_assert_eq!(back.objective, req.objective);
        prop_assert_eq!(back.effort, req.effort);
        prop_assert_eq!(back.target, req.target);
        prop_assert_eq!(back.control.deadline_ms, req.control.deadline_ms);
        prop_assert_eq!(back.control.max_flows, req.control.max_flows);
        prop_assert_eq!(back.control.shrink_on_overflow, req.control.shrink_on_overflow);
        prop_assert_eq!(back.control.trace, req.control.trace);
        prop_assert_eq!(back.control.warm_start, req.control.warm_start);
        prop_assert_eq!(back.graph.edges(), req.graph.edges());
        prop_assert_eq!(back.graph.features(), req.graph.features());
        prop_assert_eq!(back.context, req.context);
    }

    #[test]
    fn explained_response_round_trips_bit_exact(
        edge_scores in prop::collection::vec(-1.0e20f32..1.0e20, 0..40),
        flow_scores in prop::collection::vec(-1.0f32..1.0, 0..40),
        degr in (0u64..3, 0usize..600, 0usize..600, 0u64..1_000_000),
        times in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
    ) {
        let (flags, epochs_run, epochs_planned, flows_dropped) = degr;
        let resp = Response::Explained(ServedExplanation {
            edge_scores: edge_scores.clone(),
            layer_edge_scores: if flags & 1 == 0 {
                None
            } else {
                Some(vec![edge_scores.clone(), flow_scores.clone()])
            },
            flow_scores: if flags & 2 == 0 { None } else { Some(flow_scores) },
            degradation: Degradation {
                deadline_hit: flags == 2,
                epochs_run,
                epochs_planned,
                flows_dropped,
            },
            timing: WireTiming {
                queue_us: times.0,
                prep_us: times.1,
                explain_us: times.2,
                total_us: times.3,
            },
            trace_id: if flags & 1 == 1 { Some(flows_dropped) } else { None },
        });
        let payload = resp.encode();
        let back = match Response::decode(&payload).unwrap() {
            Response::Explained(e) => e,
            _ => panic!("wrong variant"),
        };
        match resp {
            // Compare bit patterns so a NaN score would also round-trip.
            Response::Explained(orig) => {
                let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
                prop_assert_eq!(bits(&back.edge_scores), bits(&orig.edge_scores));
                prop_assert_eq!(back.flow_scores.is_some(), orig.flow_scores.is_some());
                prop_assert_eq!(back.degradation, orig.degradation);
                prop_assert_eq!(back.timing, orig.timing);
                prop_assert_eq!(back.trace_id, orig.trace_id);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn stats_round_trips(
        counters in prop::collection::vec(0u64..u64::MAX, 7),
        jobs in prop::collection::vec(0u64..u64::MAX, 4),
    ) {
        let mut s = ServerStats {
            connections_accepted: counters[0],
            connections_active: counters[1],
            bytes_in: counters[2],
            bytes_out: counters[3],
            requests: counters[4],
            shed: counters[5],
            protocol_errors: counters[6],
            ..ServerStats::default()
        };
        s.runtime.jobs_submitted = jobs[0];
        s.runtime.jobs_completed = jobs[1];
        s.runtime.jobs_rejected = jobs[2];
        s.runtime.cache_hits = jobs[3];
        let payload = Response::Stats(Box::new(s), None).encode();
        match Response::decode(&payload).unwrap() {
            Response::Stats(back, gateway) => {
                prop_assert_eq!(*back, s);
                prop_assert!(gateway.is_none());
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn every_proper_prefix_of_a_frame_is_rejected(
        payload in prop::collection::vec(0u8..=255, 0..64),
        cut in 0usize..1000,
    ) {
        let frame = encode_frame(&payload, 1024).unwrap();
        let cut = cut % frame.len();
        if cut == 0 {
            // Zero bytes is the one legal prefix: a clean EOF.
            let mut c = std::io::Cursor::new(Vec::<u8>::new());
            prop_assert!(read_frame(&mut c, 1024).unwrap().is_none());
        } else {
            let mut c = std::io::Cursor::new(frame[..cut].to_vec());
            prop_assert!(read_frame(&mut c, 1024).is_err());
        }
    }

    #[test]
    fn any_single_byte_corruption_is_detected(
        payload in prop::collection::vec(0u8..=255, 1..64),
        pos in 0usize..1000,
        xor in 1u8..=255,
    ) {
        let mut frame = encode_frame(&payload, 1024).unwrap();
        let pos = pos % frame.len();
        frame[pos] ^= xor;
        let mut c = std::io::Cursor::new(frame);
        // A flip in the header breaks magic/version/length/checksum; a flip
        // in the payload breaks the checksum. Either way: a typed error,
        // never silently-wrong bytes.
        match read_frame(&mut c, 1024) {
            Err(_) => {}
            Ok(got) => {
                // The only undetectable flip would be inside the length
                // field making the frame *longer* (reads past the buffer →
                // error, handled above). Same-length decode must match.
                prop_assert_eq!(got.map(|(p, _)| p), Some(payload));
                // ... and matching is impossible after an xor: fail loudly.
                prop_assert!(false, "corrupted frame decoded successfully");
            }
        }
    }

    #[test]
    fn random_payload_bytes_never_panic_the_decoders(
        bytes in prop::collection::vec(0u8..=255, 0..200),
    ) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }
}

#[test]
fn oversized_frame_rejected_without_allocation() {
    // A header announcing a 3 GiB payload on a 16-byte connection budget
    // must be refused from the header alone.
    let mut frame = Vec::new();
    frame.extend_from_slice(b"RVLO");
    frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    frame.extend_from_slice(&(3u32 << 30).to_le_bytes());
    frame.extend_from_slice(&0u32.to_le_bytes());
    let mut c = std::io::Cursor::new(frame);
    assert!(matches!(
        read_frame(&mut c, 16),
        Err(WireError::FrameTooLarge { .. })
    ));
}

#[test]
fn wrong_version_is_a_typed_error() {
    let mut frame = encode_frame(b"payload", 1024).unwrap();
    let future = PROTOCOL_VERSION + 1;
    frame[4] = (future & 0xff) as u8;
    frame[5] = (future >> 8) as u8;
    let mut c = std::io::Cursor::new(frame);
    match read_frame(&mut c, 1024) {
        Err(WireError::UnsupportedVersion { got, expected }) => {
            assert_eq!(got, future);
            assert_eq!(expected, PROTOCOL_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn header_length_is_stable() {
    // The layout is a protocol commitment; catching accidental drift.
    let frame = encode_frame(b"", 1024).unwrap();
    assert_eq!(frame.len(), HEADER_LEN);
    assert_eq!(&frame[0..4], b"RVLO");
    assert_eq!(
        crc32(b""),
        u32::from_le_bytes([frame[10], frame[11], frame[12], frame[13]])
    );
}
