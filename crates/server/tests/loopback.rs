//! End-to-end loopback tests: a real TCP server over the real runtime.
//!
//! The acceptance properties from the serving design:
//!
//! * scores served over the wire are bit-identical to an in-process
//!   runtime fed the same job stream with the same seed;
//! * a request past the admission limit is answered `Busy`, not queued;
//! * deadline-degraded answers carry their [`Degradation`] flags across
//!   the wire;
//! * graceful shutdown drains in-flight jobs (the blocked client still
//!   gets its complete answer) and joins every thread.

#![allow(clippy::unwrap_used)]

use std::io::{Read, Write};
use std::time::Duration;

use revelio_core::wire::ControlSpec;
use revelio_core::Objective;
use revelio_eval::{method_factory, Effort};
use revelio_gnn::{Gnn, GnnConfig, GnnKind, Task, TrainConfig};
use revelio_graph::{Graph, Target};
use revelio_runtime::prometheus::parse_exposition;
use revelio_runtime::{ExplainJob, Runtime, RuntimeConfig};
use revelio_server::{
    Client, ClientConfig, ClientError, ErrorKind, ExplainRequest, Server, ServerConfig,
};
use revelio_trace::Phase;

/// A small trained model and a family of path graphs to explain.
fn trained_model() -> (Gnn, Vec<Graph>) {
    let graphs: Vec<Graph> = (0..4)
        .map(|variant| {
            let mut b = Graph::builder(5, 2);
            b.undirected_edge(0, 1)
                .undirected_edge(1, 2)
                .undirected_edge(2, 3)
                .undirected_edge(3, 4);
            if variant % 2 == 1 {
                b.undirected_edge(0, 2);
            }
            for v in 0..5 {
                b.node_features(v, &[1.0, (v + variant) as f32 * 0.3]);
            }
            b.node_labels((0..5).map(|v| (v + variant) % 2).collect());
            b.build()
        })
        .collect();
    let model = Gnn::new(GnnConfig {
        kind: GnnKind::Gcn,
        task: Task::NodeClassification,
        in_dim: 2,
        hidden_dim: 8,
        num_classes: 2,
        num_layers: 2,
        heads: 1,
        seed: 7,
    });
    revelio_gnn::train_node_classifier(
        &model,
        &graphs[0],
        &[0, 1, 2, 3, 4],
        &TrainConfig {
            epochs: 20,
            ..Default::default()
        },
    );
    (model, graphs)
}

fn start_server(workers: usize, seed: u64, max_in_flight: usize) -> Server {
    Server::start(ServerConfig {
        runtime: RuntimeConfig {
            workers,
            seed,
            ..Default::default()
        },
        max_in_flight,
        ..Default::default()
    })
    .expect("server starts")
}

fn explain_request(
    model: u32,
    graph: &Graph,
    graph_id: u64,
    control: ControlSpec,
) -> ExplainRequest {
    ExplainRequest {
        model,
        graph_id,
        method: "REVELIO".to_owned(),
        objective: Objective::Factual,
        effort: Effort::Quick,
        target: Target::Node(2),
        control,
        graph: graph.clone(),
        context: None,
    }
}

/// Scores served over loopback TCP are bit-identical to an in-process
/// runtime fed the same submission stream with the same base seed.
#[test]
fn wire_scores_match_in_process_bit_for_bit() {
    let (model, graphs) = trained_model();

    // In-process reference: same seed, same submission order.
    let local = Runtime::with_config(RuntimeConfig {
        workers: 1,
        seed: 42,
        ..Default::default()
    });
    let handle = local.register_model(&model);
    let jobs: Vec<ExplainJob> = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            ExplainJob::flow_based(
                g.clone(),
                Target::Node(2),
                i as u64,
                100_000,
                method_factory("REVELIO", Objective::Factual, Effort::Quick),
            )
        })
        .collect();
    let reference: Vec<(Vec<f32>, Option<Vec<f32>>)> = local
        .explain_batch(handle, jobs)
        .into_iter()
        .map(|r| {
            let out = r.expect("local job served");
            (
                out.explanation.edge_scores,
                out.explanation.flows.map(|f| f.scores),
            )
        })
        .collect();

    // Served over the wire: model shipped by RegisterModel, jobs submitted
    // sequentially on one connection (submission ids 0..n, like the local
    // batch).
    let server = start_server(2, 42, 64);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(
        client.ping().expect("ping"),
        revelio_server::PROTOCOL_VERSION
    );
    let model_id = client.register_model(&model).expect("register");
    for (i, g) in graphs.iter().enumerate() {
        let served = client
            .explain(&explain_request(
                model_id,
                g,
                i as u64,
                ControlSpec::default(),
            ))
            .expect("explain over wire");
        let (ref_edges, ref_flows) = &reference[i];
        let served_bits: Vec<u32> = served.edge_scores.iter().map(|v| v.to_bits()).collect();
        let ref_bits: Vec<u32> = ref_edges.iter().map(|v| v.to_bits()).collect();
        assert_eq!(served_bits, ref_bits, "edge scores diverged on graph {i}");
        let served_flow_bits: Option<Vec<u32>> = served
            .flow_scores
            .map(|s| s.iter().map(|v| v.to_bits()).collect());
        let ref_flow_bits: Option<Vec<u32>> = ref_flows
            .as_ref()
            .map(|s| s.iter().map(|v| v.to_bits()).collect());
        assert_eq!(
            served_flow_bits, ref_flow_bits,
            "flow scores diverged on graph {i}"
        );
        assert!(!served.degradation.is_degraded(), "unexpected degradation");
    }

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.runtime.jobs_completed, graphs.len() as u64);
}

/// A degenerate admission limit of zero sheds every explanation —
/// deterministic proof of the `Busy` path and the shed counters.
#[test]
fn zero_admission_limit_sheds_everything() {
    let (model, graphs) = trained_model();
    let server = start_server(1, 1, 0);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Registration is not an explanation; it is admitted regardless.
    let model_id = client.register_model(&model).expect("register");
    match client.explain(&explain_request(
        model_id,
        &graphs[0],
        0,
        ControlSpec::default(),
    )) {
        Err(ClientError::Busy { limit, .. }) => assert_eq!(limit, 0),
        other => panic!("expected Busy, got {other:?}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.runtime.jobs_rejected, 1);
    assert_eq!(
        stats.runtime.jobs_submitted, 0,
        "a shed job must never queue"
    );
}

/// A request arriving while the only slot is held is answered `Busy`
/// without queueing, and the retrying helper eventually gets through.
#[test]
fn admission_limit_answers_busy() {
    let (model, graphs) = trained_model();
    let server = start_server(1, 1, 1);
    let addr = server.local_addr();

    let mut slow_client = Client::connect(addr).expect("connect");
    let model_id = slow_client.register_model(&model).expect("register");

    // Occupy the single worker with a stream of back-to-back Paper-effort
    // jobs: the worker stays busy for the whole stream (minus loopback
    // round-trip gaps), giving the probe a wide overlap window. The
    // occupier itself retries, because the probe can win a gap and make
    // *it* see Busy.
    let slow_graph = graphs[0].clone();
    let slow = std::thread::spawn(move || {
        for i in 0..20u64 {
            let mut req = explain_request(
                model_id,
                &slow_graph,
                i,
                ControlSpec {
                    deadline_ms: Some(1_000),
                    ..Default::default()
                },
            );
            req.effort = Effort::Paper;
            slow_client.explain_with_retry(&req)?;
        }
        Ok::<(), ClientError>(())
    });

    // Hammer from a second connection: with max_in_flight == 1, any
    // overlap with the occupier's stream is a Busy.
    let mut probe = Client::connect(addr).expect("connect probe");
    let mut saw_busy = false;
    for _ in 0..2_000 {
        if slow.is_finished() {
            break;
        }
        match probe.explain(&explain_request(
            model_id,
            &graphs[1],
            100,
            ControlSpec::default(),
        )) {
            Err(ClientError::Busy { limit, .. }) => {
                assert_eq!(limit, 1);
                saw_busy = true;
                break;
            }
            Ok(_) => {}
            Err(other) => panic!("probe hit a non-Busy failure: {other}"),
        }
    }
    slow.join()
        .expect("slow thread")
        .expect("occupier stream served");
    assert!(saw_busy, "no Busy observed while jobs held the only slot");

    // The retry helper rides out transient Busy answers.
    let served = probe
        .explain_with_retry(&explain_request(
            model_id,
            &graphs[2],
            2,
            ControlSpec::default(),
        ))
        .expect("retry eventually succeeds");
    assert_eq!(served.edge_scores.len(), graphs[2].num_edges());

    let stats = server.shutdown();
    assert!(stats.shed >= 1, "shed counter did not move: {}", stats.shed);
    assert!(stats.runtime.jobs_rejected >= 1);
}

/// A deadline that trips mid-optimisation yields a degraded answer whose
/// flags survive the trip across the wire.
#[test]
fn deadline_degradation_crosses_the_wire() {
    let (model, graphs) = trained_model();
    let server = start_server(1, 5, 8);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let model_id = client.register_model(&model).expect("register");

    let mut req = explain_request(
        model_id,
        &graphs[0],
        0,
        ControlSpec {
            deadline_ms: Some(1),
            ..Default::default()
        },
    );
    // Paper effort plans 500 epochs; a 1 ms budget cannot finish them.
    req.effort = Effort::Paper;
    let served = client.explain(&req).expect("explain");
    assert!(served.degradation.deadline_hit, "deadline flag lost");
    assert!(
        served.degradation.epochs_run < served.degradation.epochs_planned,
        "ran {} of {} epochs yet claims a deadline hit",
        served.degradation.epochs_run,
        served.degradation.epochs_planned
    );
    assert_eq!(served.degradation.epochs_planned, 500);
    assert_eq!(served.edge_scores.len(), graphs[0].num_edges());

    let stats = server.shutdown();
    assert_eq!(stats.runtime.jobs_degraded, 1);
}

/// Shutdown requested while a job is running: the blocked client still
/// receives its complete answer (drain), then every thread joins.
#[test]
fn graceful_shutdown_drains_in_flight_jobs() {
    let (model, graphs) = trained_model();
    let server = start_server(1, 3, 8);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    let model_id = client.register_model(&model).expect("register");

    let graph = graphs[0].clone();
    let in_flight = std::thread::spawn(move || {
        client.explain(&explain_request(
            model_id,
            &graph,
            0,
            ControlSpec {
                deadline_ms: Some(1_000),
                ..Default::default()
            },
        ))
    });

    // Wait until the job is actually on a worker, then ask for shutdown
    // from a second connection.
    for _ in 0..200 {
        if server.stats().runtime.jobs_started >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        server.stats().runtime.jobs_started >= 1,
        "job never started"
    );
    let mut admin = Client::connect(addr).expect("connect admin");
    admin.shutdown().expect("shutdown ack");

    let served = in_flight
        .join()
        .expect("client thread")
        .expect("in-flight job drained to completion");
    assert_eq!(served.edge_scores.len(), graphs[0].num_edges());

    // `shutdown` on the handle joins acceptor + handlers; afterwards the
    // port no longer accepts.
    let stats = server.shutdown();
    assert_eq!(stats.runtime.jobs_completed, 1);
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
            || std::net::TcpStream::connect(addr)
                .and_then(|mut s| {
                    // A listener backlog can still accept; but nothing
                    // serves it: the read must see EOF, not a response.
                    s.write_all(
                        &revelio_server::wire::encode_frame(
                            &revelio_server::Request::Ping.encode(),
                            1024,
                        )
                        .unwrap(),
                    )?;
                    let mut buf = [0u8; 1];
                    let n = s.read(&mut buf)?;
                    Ok(n == 0)
                })
                .unwrap_or(true)
    );
}

/// Requests after the stop flag is set are refused with `ShuttingDown`.
#[test]
fn requests_after_stop_are_refused() {
    let (model, _graphs) = trained_model();
    let server = start_server(1, 11, 8);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let model_id = client.register_model(&model).expect("register");
    server.stop();
    match client.register_model(&model) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::ShuttingDown),
        // The handler may already have exited between frames, surfacing as
        // EOF instead of a refusal — also a correct way to stop serving.
        Err(ClientError::Wire(_)) => {}
        Err(other) => panic!("unexpected failure mode: {other}"),
        Ok(_) => panic!("request served after stop"),
    }
    let _ = model_id;
    server.shutdown();
}

/// Garbage on the socket is counted, answered with a typed error, and the
/// connection is closed — the server survives.
#[test]
fn protocol_garbage_is_survivable() {
    let (model, graphs) = trained_model();
    let server = start_server(1, 13, 8);
    let addr = server.local_addr();

    let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n")
        .expect("write garbage");
    let mut buf = Vec::new();
    let _ = raw.read_to_end(&mut buf); // server answers an error frame and closes
    drop(raw);

    // The server still serves real clients afterwards.
    let mut client = Client::connect(addr).expect("connect");
    let model_id = client.register_model(&model).expect("register");
    let served = client
        .explain(&explain_request(
            model_id,
            &graphs[0],
            0,
            ControlSpec::default(),
        ))
        .expect("explain after garbage");
    assert_eq!(served.edge_scores.len(), graphs[0].num_edges());

    let stats = server.shutdown();
    assert!(stats.protocol_errors >= 1);
}

/// Typed refusals: unknown model, unknown method, group-level method,
/// malformed target.
#[test]
fn typed_refusals() {
    let (model, graphs) = trained_model();
    let server = start_server(1, 17, 8);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let model_id = client.register_model(&model).expect("register");

    let kind_of = |r: Result<revelio_server::ServedExplanation, ClientError>| match r {
        Err(ClientError::Server { kind, .. }) => kind,
        other => panic!("expected a server error, got {other:?}"),
    };

    let bad_model = explain_request(model_id + 99, &graphs[0], 0, ControlSpec::default());
    assert_eq!(kind_of(client.explain(&bad_model)), ErrorKind::UnknownModel);

    let mut bad_method = explain_request(model_id, &graphs[0], 0, ControlSpec::default());
    bad_method.method = "Oracle".to_owned();
    assert_eq!(
        kind_of(client.explain(&bad_method)),
        ErrorKind::UnknownMethod
    );

    let mut group = explain_request(model_id, &graphs[0], 0, ControlSpec::default());
    group.method = "PGExplainer".to_owned();
    assert_eq!(kind_of(client.explain(&group)), ErrorKind::GroupLevelMethod);

    let mut bad_target = explain_request(model_id, &graphs[0], 0, ControlSpec::default());
    bad_target.target = Target::Node(999);
    assert_eq!(kind_of(client.explain(&bad_target)), ErrorKind::Malformed);

    // The connection is still healthy after four refusals.
    let served = client
        .explain(&explain_request(
            model_id,
            &graphs[0],
            0,
            ControlSpec::default(),
        ))
        .expect("explain after refusals");
    assert_eq!(served.edge_scores.len(), graphs[0].num_edges());
    server.shutdown();
}

/// `Stats` over the wire reflects the work done and folds wire counters
/// together with the runtime registry.
#[test]
fn wire_stats_are_unified() {
    let (model, graphs) = trained_model();
    let server = start_server(2, 23, 8);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let model_id = client.register_model(&model).expect("register");
    for (i, g) in graphs.iter().enumerate().take(2) {
        client
            .explain(&explain_request(
                model_id,
                g,
                i as u64,
                ControlSpec::default(),
            ))
            .expect("explain");
    }
    let stats = client.stats().expect("stats over wire");
    assert_eq!(stats.runtime.jobs_completed, 2);
    assert!(stats.requests >= 3); // register + 2 explains
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    assert_eq!(stats.connections_active, 1);
    let report = stats.report();
    assert!(report.contains("server metrics"));
    assert!(report.contains("runtime metrics"));
    server.shutdown();
}

/// A traced explain over loopback TCP returns a retrievable trace whose
/// per-phase spans are all present and whose epoch events agree with both
/// the degradation report and the runtime's epoch counter delta.
#[test]
fn traced_explain_returns_per_phase_spans() {
    let (model, graphs) = trained_model();
    let server = start_server(1, 29, 8);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let model_id = client.register_model(&model).expect("register");

    let before = client.stats().expect("stats before");
    let served = client
        .explain(&explain_request(
            model_id,
            &graphs[0],
            0,
            ControlSpec {
                trace: true,
                ..Default::default()
            },
        ))
        .expect("traced explain");
    let trace_id = served.trace_id.expect("traced request echoes a trace id");
    let after = client.stats().expect("stats after");

    let trace = client
        .trace(trace_id)
        .expect("trace request")
        .expect("trace retained on the server");
    assert_eq!(trace.id, trace_id);
    for phase in [
        Phase::Extraction,
        Phase::FlowIndex,
        Phase::Optimize,
        Phase::Readout,
    ] {
        assert!(
            trace.phase_ns(phase) > 0,
            "phase {} has no completed span",
            phase.name()
        );
    }
    assert_eq!(
        trace.epoch_count(),
        served.degradation.epochs_run,
        "trace epoch events disagree with the degradation report"
    );
    assert_eq!(
        trace.epoch_count() as u64,
        after.runtime.epochs_total - before.runtime.epochs_total,
        "trace epoch events disagree with the runtime counter delta"
    );
    assert!(
        trace.losses().iter().all(|l| l.is_finite()),
        "non-finite loss in trace"
    );

    // Untraced requests pay nothing and echo no id.
    let untraced = client
        .explain(&explain_request(
            model_id,
            &graphs[1],
            1,
            ControlSpec::default(),
        ))
        .expect("untraced explain");
    assert!(untraced.trace_id.is_none());

    // An unknown id answers None, not an error.
    assert!(client
        .trace(trace_id + 999)
        .expect("unknown-trace request")
        .is_none());
    server.shutdown();
}

/// `Stats` fetched over the wire renders a Prometheus exposition that the
/// crate's own parser accepts, with the required metric families present.
#[test]
fn wire_stats_render_valid_prometheus() {
    let (model, graphs) = trained_model();
    let server = start_server(1, 31, 8);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let model_id = client.register_model(&model).expect("register");
    client
        .explain(&explain_request(
            model_id,
            &graphs[0],
            0,
            ControlSpec::default(),
        ))
        .expect("explain");

    let stats = client.stats().expect("stats over wire");
    let text = stats.prometheus();
    let exposition = parse_exposition(&text).expect("exposition parses");
    for family in [
        "revelio_jobs_completed_total",
        "revelio_epochs_total",
        "revelio_latency_seconds_explain",
        "revelio_latency_seconds_optimize",
        "revelio_server_requests_total",
        "revelio_server_request_latency_seconds",
    ] {
        assert!(
            exposition.families.contains_key(family),
            "family {family} missing from exposition"
        );
    }
    let completed = exposition.samples_of("revelio_jobs_completed_total");
    assert_eq!(completed.len(), 1);
    assert!(completed[0].2 >= 1.0, "no completed job in exposition");
    server.shutdown();
}

/// The client's connect retry covers the racy "server still binding" window
/// in scripts that start both halves back to back.
#[test]
fn connect_with_retry_reaches_a_late_server() {
    let addr = {
        // Reserve a port, then free it so the server can bind it shortly.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().expect("probe addr")
    };
    let server_thread = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(120));
        Server::start(ServerConfig {
            addr: addr.to_string(),
            runtime: RuntimeConfig {
                workers: 1,
                ..Default::default()
            },
            ..Default::default()
        })
        .expect("late server starts")
    });
    let mut client = Client::connect_with_retry(
        addr,
        ClientConfig {
            max_attempts: 10,
            backoff_base: Duration::from_millis(30),
            ..Default::default()
        },
    )
    .expect("retrying connect reaches the late server");
    client.ping().expect("ping");
    server_thread.join().expect("server thread").shutdown();
}
