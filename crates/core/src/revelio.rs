//! The REVELIO algorithm (§IV of the paper).

use std::fmt;
use std::sync::Arc;

use revelio_gnn::{Gnn, Instance};
use revelio_graph::{FlowIndex, TooManyFlows};
use revelio_tensor::{uniform, Adam, BinCsr, Optimizer, Tensor};
use revelio_trace::{EventKind, Phase, TraceHandle};

use crate::control::{ControlledExplanation, ConvergedMask, Degradation, ExplainControl};
use crate::explanation::{Explainer, Explanation, FlowScores, Objective};

/// How flow-mask parameters are squashed into flow scores (Eq. 4).
///
/// The paper chooses `tanh` so that scores can be negative, preventing
/// "excessive accumulation" on layer edges that carry many unimportant flows;
/// `Sigmoid` is provided for the ablation of that choice (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaskSquash {
    #[default]
    Tanh,
    Sigmoid,
}

/// Activation applied to the per-layer weight `w_l` (Eq. 5).
///
/// The paper selects `exp` after comparing candidates with positive outputs,
/// low gradient on `(0, 1)` and high gradient on `(1, ∞)`; `Softplus` is the
/// runner-up candidate it names, and `None` drops the per-layer weighting
/// entirely — both provided for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayerWeight {
    #[default]
    Exp,
    Softplus,
    None,
}

/// REVELIO hyperparameters. Defaults follow §V-A: learning rate `1e-2`,
/// 500 learning epochs, dataset-tuned sparsity strength `α`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevelioConfig {
    /// Learning epochs per instance (the paper uses 500).
    pub epochs: usize,
    /// Adam learning rate (the paper uses 1e-2).
    pub lr: f32,
    /// Sparsity-constraint strength `α` of Eqs. 8–9.
    pub alpha: f32,
    /// Factual (Eq. 1) or counterfactual (Eq. 2) objective.
    pub objective: Objective,
    /// Flow-enumeration cap; exceeding it panics with a clear message
    /// rather than silently truncating.
    pub max_flows: usize,
    /// Mask-initialisation seed.
    pub seed: u64,
    /// Flow-score squashing (Eq. 4); `Tanh` is the paper's choice.
    pub squash: MaskSquash,
    /// Per-layer weight activation (Eq. 5); `Exp` is the paper's choice.
    pub layer_weight: LayerWeight,
    /// The paper's future-work optimisation (§VI): when `Some(k)` and the
    /// instance has more than `k` flows, a one-shot gradient-saliency pass
    /// preselects the `k` most promising flows and only their masks are
    /// learned (unselected flows keep a neutral zero score). Cuts memory
    /// and per-epoch time on flow-heavy instances.
    pub preselect: Option<usize>,
}

impl Default for RevelioConfig {
    fn default() -> Self {
        RevelioConfig {
            epochs: 500,
            lr: 1e-2,
            alpha: 0.05,
            objective: Objective::Factual,
            max_flows: 2_000_000,
            seed: 0,
            squash: MaskSquash::Tanh,
            layer_weight: LayerWeight::Exp,
            preselect: None,
        }
    }
}

/// The REVELIO explainer.
pub struct Revelio {
    cfg: RevelioConfig,
}

/// The per-instance learning state: parameters plus the (possibly
/// flow-restricted) incidence matrices.
struct MaskModel {
    /// `[k, 1]` learnable flow-mask parameters (k = selected flows).
    mask_params: Tensor,
    /// One `[1, 1]` weight per layer (empty when `LayerWeight::None`).
    layer_weights: Vec<Tensor>,
    /// Per layer, `|E| × k` incidence over the selected flows.
    incidence: Vec<Arc<BinCsr>>,
    /// Selected flow ids (identity when no preselection ran).
    selected: Vec<u32>,
    squash: MaskSquash,
    layer_weight: LayerWeight,
}

impl MaskModel {
    fn params(&self) -> Vec<Tensor> {
        let mut p = vec![self.mask_params.clone()];
        p.extend(self.layer_weights.iter().cloned());
        p
    }

    fn flow_scores(&self) -> Tensor {
        match self.squash {
            MaskSquash::Tanh => self.mask_params.tanh_t(),
            MaskSquash::Sigmoid => self.mask_params.sigmoid(),
        }
    }

    /// `ω[E] = σ(I · squash(M) ⊙ act(w))` (Eqs. 4, 5, 7).
    fn layer_masks(&self) -> Vec<Tensor> {
        let omega_f = self.flow_scores();
        (0..self.incidence.len())
            .map(|l| {
                let s = omega_f.sp_matvec(&self.incidence[l]);
                // Fused scale + sigmoid: bit-identical to the unfused
                // `s.mul(&w.gather_rows(..)).sigmoid()` chain but a single
                // pass over the edge column per epoch.
                match self.layer_weight {
                    LayerWeight::Exp => s.sigmoid_scale(&self.layer_weights[l].exp()),
                    LayerWeight::Softplus => s.sigmoid_scale(&self.layer_weights[l].softplus()),
                    LayerWeight::None => s.sigmoid(),
                }
            })
            .collect()
    }
}

impl Revelio {
    /// Creates an explainer with the given configuration.
    pub fn new(cfg: RevelioConfig) -> Revelio {
        Revelio { cfg }
    }

    /// Paper-default factual explainer.
    pub fn factual() -> Revelio {
        Revelio::new(RevelioConfig::default())
    }

    /// Paper-default counterfactual explainer.
    pub fn counterfactual() -> Revelio {
        Revelio::new(RevelioConfig {
            objective: Objective::Counterfactual,
            ..Default::default()
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &RevelioConfig {
        &self.cfg
    }

    fn fresh_layer_weights(&self, layers: usize) -> Vec<Tensor> {
        match self.cfg.layer_weight {
            LayerWeight::None => Vec::new(),
            // Softplus(0.54) ≈ 1, exp(0) = 1: start as identity weighting.
            LayerWeight::Exp => (0..layers)
                .map(|_| Tensor::zeros(1, 1).requires_grad())
                .collect(),
            LayerWeight::Softplus => (0..layers)
                .map(|_| Tensor::full(0.5413, 1, 1).requires_grad())
                .collect(),
        }
    }

    /// Builds the mask model, optionally preselecting top-k flows via a
    /// one-shot gradient-saliency pass (§VI future work).
    fn build_mask_model(&self, model: &Gnn, instance: &Instance, index: &FlowIndex) -> MaskModel {
        let cfg = &self.cfg;
        let layers = index.num_layers();
        let ne = instance.mp.layer_edge_count();
        let nf = index.num_flows();

        let selected: Vec<u32> = match cfg.preselect {
            Some(k) if nf > k => {
                // Saliency pass: gradient of the factual objective w.r.t.
                // the flow masks at the neutral point.
                let probe = MaskModel {
                    mask_params: Tensor::zeros(nf, 1).requires_grad(),
                    layer_weights: self.fresh_layer_weights(layers),
                    incidence: (0..layers)
                        .map(|l| Arc::clone(index.incidence(l)))
                        .collect(),
                    selected: (0..nf as u32).collect(),
                    squash: cfg.squash,
                    layer_weight: cfg.layer_weight,
                };
                let masks = probe.layer_masks();
                let lp_c = model
                    .target_logits(&instance.mp, &instance.x, Some(&masks), instance.target)
                    .log_softmax_rows()
                    .slice_cols(instance.class, instance.class + 1);
                lp_c.neg().backward();
                let grad = probe.mask_params.grad_vec();
                let mut order: Vec<u32> = (0..nf as u32).collect();
                order.sort_by(|&a, &b| grad[b as usize].abs().total_cmp(&grad[a as usize].abs()));
                let mut sel: Vec<u32> = order.into_iter().take(k).collect();
                sel.sort_unstable();
                sel
            }
            _ => (0..nf as u32).collect(),
        };

        // Incidence restricted to the selected flows (columns renumbered).
        let incidence: Vec<Arc<BinCsr>> = if selected.len() == nf {
            (0..layers)
                .map(|l| Arc::clone(index.incidence(l)))
                .collect()
        } else {
            (0..layers)
                .map(|l| {
                    let mut rows: Vec<Vec<u32>> = vec![Vec::new(); ne];
                    for (new_id, &f) in selected.iter().enumerate() {
                        let e = index.flow(f as usize)[l] as usize;
                        rows[e].push(new_id as u32);
                    }
                    Arc::new(BinCsr::from_rows(ne, selected.len(), &rows))
                })
                .collect()
        };

        MaskModel {
            mask_params: uniform(selected.len(), 1, 0.1, cfg.seed).requires_grad(),
            layer_weights: self.fresh_layer_weights(layers),
            incidence,
            selected,
            squash: cfg.squash,
            layer_weight: cfg.layer_weight,
        }
    }
}

/// Why [`Revelio::try_explain`] could not produce an explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplainError {
    /// Flow enumeration exceeded [`RevelioConfig::max_flows`].
    TooManyFlows(TooManyFlows),
}

impl fmt::Display for ExplainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplainError::TooManyFlows(e) => {
                write!(
                    f,
                    "{e}; extract a smaller computation subgraph or raise max_flows"
                )
            }
        }
    }
}

impl std::error::Error for ExplainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExplainError::TooManyFlows(e) => Some(e),
        }
    }
}

impl Revelio {
    /// Learns flow masks for `instance` and returns flow, layer-edge, and
    /// edge scores.
    ///
    /// # Errors
    ///
    /// Returns [`ExplainError::TooManyFlows`] when the instance has more
    /// than [`RevelioConfig::max_flows`] message flows.
    pub fn try_explain(
        &self,
        model: &Gnn,
        instance: &Instance,
    ) -> Result<Explanation, ExplainError> {
        self.try_explain_controlled(model, instance, &ExplainControl::default())
            .map(|c| c.explanation)
    }

    /// Deadline- and budget-aware variant of [`Revelio::try_explain`]
    /// (the serving runtime's entry point).
    ///
    /// * Reuses `ctl.flow_index` when its layer count matches the model,
    ///   skipping flow enumeration entirely.
    /// * When `ctl.shrink_on_overflow` is set, an instance over
    ///   [`RevelioConfig::max_flows`] is explained over the deterministic
    ///   enumeration prefix of `max_flows` flows instead of failing
    ///   (`flows_dropped` records the cut).
    /// * Polls `ctl.deadline` each learning epoch; on expiry the best
    ///   (lowest-loss) mask seen so far is returned with
    ///   `deadline_hit = true`.
    /// * When `ctl.warm_start` carries a converged mask whose flow
    ///   selection exactly matches this run's, the optimisation starts
    ///   from it instead of the cold random init and may stop once the
    ///   loss plateaus (relative change below `1e-3` for 8 consecutive
    ///   epochs). The warm answer is the seed *refined*, not replayed —
    ///   scores drift from a cold run as optimisation continues — but a
    ///   mismatched selection or parameter shape rejects the seed,
    ///   leaving the run bit-identical to a cold one.
    ///
    /// # Errors
    ///
    /// Returns [`ExplainError::TooManyFlows`] only when the cap trips and
    /// `ctl.shrink_on_overflow` is off.
    pub fn try_explain_controlled(
        &self,
        model: &Gnn,
        instance: &Instance,
        ctl: &ExplainControl,
    ) -> Result<ControlledExplanation, ExplainError> {
        let cfg = &self.cfg;
        let layers = model.num_layers();
        let flow_target = instance.target;
        let mut degradation = Degradation {
            epochs_planned: cfg.epochs,
            ..Default::default()
        };
        // Tracing: emit through the request's handle, or the shared noop
        // handle (disabled collector — every emit below is one branch).
        let noop = TraceHandle::noop();
        let tr = ctl.trace.as_ref().unwrap_or(&noop);
        let index: Arc<FlowIndex> = match &ctl.flow_index {
            Some(idx) if idx.num_layers() == layers => {
                tr.event(EventKind::Note("flow-index-reused"));
                Arc::clone(idx)
            }
            _ if ctl.shrink_on_overflow => {
                let _span = tr.span(Phase::FlowIndex);
                let capped =
                    FlowIndex::build_capped(&instance.mp, layers, flow_target, cfg.max_flows);
                degradation.flows_dropped = capped.dropped;
                Arc::new(capped.index)
            }
            _ => {
                let _span = tr.span(Phase::FlowIndex);
                Arc::new(
                    FlowIndex::build(&instance.mp, layers, flow_target, cfg.max_flows)
                        .map_err(ExplainError::TooManyFlows)?,
                )
            }
        };
        let ne = instance.mp.layer_edge_count();

        let mask_model = self.build_mask_model(model, instance, &index);

        // Warm start: seed the parameters from a previously converged mask,
        // but only when it is aligned with this run's exact flow selection
        // and parameter shapes — anything else is silently stale (a changed
        // cap, a different preselection, another layer-weight mode) and is
        // rejected so the run stays bit-identical to a cold one.
        let mut warm_applied = false;
        if let Some(ws) = &ctl.warm_start {
            let weights_match = ws.layer_weights.len() == mask_model.layer_weights.len()
                && ws
                    .layer_weights
                    .iter()
                    .zip(&mask_model.layer_weights)
                    .all(|(stored, w)| stored.len() == w.to_vec().len());
            if ws.selected == mask_model.selected
                && ws.mask_params.len() == mask_model.selected.len()
                && weights_match
            {
                mask_model.mask_params.set_data(&ws.mask_params);
                for (w, data) in mask_model.layer_weights.iter().zip(&ws.layer_weights) {
                    w.set_data(data);
                }
                warm_applied = true;
                tr.event(EventKind::Note("warm-start"));
            } else {
                tr.event(EventKind::Note("warm-start-rejected"));
            }
        }

        let mut opt = Adam::new(mask_model.params(), cfg.lr);

        // "Skip layer edges unused by GNN layers" (Eq. 8): only layer edges
        // that carry at least one (selected) flow enter the sparsity penalty.
        let used: Vec<Vec<usize>> = (0..layers)
            .map(|l| {
                (0..ne)
                    .filter(|&e| !mask_model.incidence[l].row(e).is_empty())
                    .collect()
            })
            .collect();

        let build_loss = || {
            let masks = mask_model.layer_masks();

            let logits =
                model.target_logits(&instance.mp, &instance.x, Some(&masks), instance.target);
            let logp = logits.log_softmax_rows();
            let lp_c = logp.slice_cols(instance.class, instance.class + 1);
            let objective = match cfg.objective {
                // Eq. 1: -log P(Y = c | G, F̂).
                Objective::Factual => lp_c.neg(),
                // Eq. 2: -log(1 - P(Y = c | G, F̂)).
                Objective::Counterfactual => {
                    lp_c.exp().neg().add_scalar(1.0).clamp_min(1e-6).ln().neg()
                }
            };

            // Eqs. 8–9: mean mask value over used layer edges.
            let mut reg: Option<Tensor> = None;
            let mut used_count = 0usize;
            for (l, mask) in masks.iter().enumerate() {
                if used[l].is_empty() {
                    continue;
                }
                let vals = mask.gather_rows(&used[l]);
                let term = match cfg.objective {
                    Objective::Factual => vals.sum_all(),
                    Objective::Counterfactual => vals.neg().add_scalar(1.0).sum_all(),
                };
                used_count += used[l].len();
                reg = Some(match reg {
                    None => term,
                    Some(r) => r.add(&term),
                });
            }
            match reg {
                Some(r) if used_count > 0 => {
                    objective.add(&r.mul_scalar(cfg.alpha / used_count as f32))
                }
                _ => objective,
            }
        };

        // Debug builds statically audit the first recorded loss tape before
        // any training step: shape consistency, numeric-stability patterns,
        // and that every mask parameter is reachable from the loss.
        #[cfg(debug_assertions)]
        {
            let diags =
                revelio_analysis::audit_tape_with_params(&build_loss(), &mask_model.params());
            assert!(
                diags.is_empty(),
                "REVELIO: static tape audit found {} defect(s):\n{}",
                diags.len(),
                diags
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }

        // Deadline-bounded runs track the best (lowest-loss) parameters so
        // an early stop returns the best mask seen, not the latest one.
        let track_best = ctl.deadline.is_set();
        // Per-epoch loss/grad-norm emission reads tensors the untraced loop
        // never materialises, so it is gated on `verbose` (a ring collector),
        // not merely `enabled` (which an always-on metrics bridge sets).
        let trace_epochs = tr.verbose();
        let mut best: Option<(f32, Vec<f32>, Vec<Vec<f32>>)> = None;
        // Warm-started runs stop once the loss plateaus: a relative change
        // below `WARM_PLATEAU_TOL` for `WARM_PLATEAU_EPOCHS` consecutive
        // epochs. Cold runs never evaluate this (extra `loss.item()` reads
        // included), keeping them bit-identical to a warm-start-free build.
        const WARM_PLATEAU_TOL: f32 = 1e-3;
        const WARM_PLATEAU_EPOCHS: usize = 8;
        let mut prev_loss: Option<f32> = None;
        let mut plateau = 0usize;
        let optimize_span = tr.span(Phase::Optimize);
        for epoch in 0..cfg.epochs {
            if ctl.deadline.expired() {
                degradation.deadline_hit = true;
                tr.event(EventKind::DeadlineHit {
                    epoch: epoch as u32,
                });
                break;
            }
            opt.zero_grad();
            let loss = build_loss();
            loss.backward();
            // The loss corresponds to the parameters *before* the step.
            let loss_val = if track_best || trace_epochs || warm_applied {
                Some(loss.item())
            } else {
                None
            };
            if track_best {
                if let Some(l) = loss_val {
                    if l.is_finite() && best.as_ref().is_none_or(|(b, _, _)| l < *b) {
                        best = Some((
                            l,
                            mask_model.mask_params.to_vec(),
                            mask_model
                                .layer_weights
                                .iter()
                                .map(Tensor::to_vec)
                                .collect(),
                        ));
                    }
                }
            }
            if trace_epochs {
                if let Some(l) = loss_val {
                    let g = mask_model.mask_params.grad_vec();
                    let grad_norm = g.iter().map(|v| v * v).sum::<f32>().sqrt();
                    tr.event(EventKind::Epoch {
                        index: epoch as u32,
                        loss: l,
                        grad_norm,
                    });
                }
            }
            if warm_applied {
                if let Some(l) = loss_val {
                    if let Some(p) = prev_loss {
                        let rel = (p - l).abs() / p.abs().max(1e-8);
                        plateau = if rel < WARM_PLATEAU_TOL {
                            plateau + 1
                        } else {
                            0
                        };
                    }
                    prev_loss = Some(l);
                    if l.is_finite() && plateau >= WARM_PLATEAU_EPOCHS {
                        // The parameters already match this loss (the step
                        // below would move past it), so stop here.
                        degradation.epochs_run = epoch + 1;
                        tr.event(EventKind::Note("warm-start-early-stop"));
                        break;
                    }
                }
            }
            opt.step();
            degradation.epochs_run = epoch + 1;
        }
        drop(optimize_span);
        if degradation.deadline_hit {
            if let Some((_, mask, weights)) = best {
                mask_model.mask_params.set_data(&mask);
                for (w, data) in mask_model.layer_weights.iter().zip(&weights) {
                    w.set_data(data);
                }
            }
        }

        // Final scores. Counterfactual: ω'[F] = -ω[F] and
        // ω'[e] = 1 - ω[e], so higher always means more important.
        let readout_span = tr.span(Phase::Readout);
        let masks = mask_model.layer_masks();
        let learned: Vec<f32> = mask_model.flow_scores().to_vec();
        // Scatter learned scores back over the full flow set (unselected
        // flows keep the neutral score 0).
        let mut flow_scores = vec![0.0f32; index.num_flows()];
        for (new_id, &f) in mask_model.selected.iter().enumerate() {
            flow_scores[f as usize] = learned[new_id];
        }
        let mut layer_edge_scores: Vec<Vec<f32>> = masks.iter().map(Tensor::to_vec).collect();
        if cfg.objective == Objective::Counterfactual {
            for s in &mut flow_scores {
                *s = -*s;
            }
            for ls in &mut layer_edge_scores {
                for v in ls.iter_mut() {
                    *v = 1.0 - *v;
                }
            }
        }

        // Edge scores: Eq. 3 with `f = max` — an edge is as important as the
        // strongest flow it carries. Sum/mask aggregation suffers the
        // "excessive accumulation" problem of §IV-B (an edge crossed by many
        // weakly-negative flows outranks a motif edge), which empirically
        // inverts motif rankings; max does not. Edges carrying no flow
        // cannot influence the target at all and rank strictly lowest.
        let m = instance.mp.num_orig_edges();
        let mut edge_scores = vec![f32::NEG_INFINITY; m];
        for l in 0..layers {
            for (e, es) in edge_scores.iter_mut().enumerate() {
                for &f in index.flows_through(l, e) {
                    *es = es.max(flow_scores[f as usize]);
                }
            }
        }
        // Map from the squash range (-1, 1) into (0, 1), flowless edges to 0.
        for es in &mut edge_scores {
            *es = if es.is_finite() {
                (1.0 + *es) / 2.0
            } else {
                0.0
            };
        }
        drop(readout_span);

        // Export the converged state so a persistence layer can seed the
        // next run on the same instance through `ctl.warm_start`.
        let converged_mask = Some(ConvergedMask {
            mask_params: mask_model.mask_params.to_vec(),
            layer_weights: mask_model
                .layer_weights
                .iter()
                .map(Tensor::to_vec)
                .collect(),
            selected: mask_model.selected.clone(),
        });

        Ok(ControlledExplanation {
            explanation: Explanation {
                edge_scores,
                layer_edge_scores: Some(layer_edge_scores),
                flows: Some(FlowScores {
                    index,
                    scores: flow_scores,
                }),
            },
            degradation,
            converged_mask,
        })
    }
}

impl Explainer for Revelio {
    fn name(&self) -> &'static str {
        "REVELIO"
    }

    /// Infallible trait entry point, delegating to [`Revelio::try_explain`].
    ///
    /// # Panics
    ///
    /// Panics if the instance has more than `max_flows` message flows; call
    /// [`Revelio::try_explain`] to handle that case as a value.
    fn explain(&self, model: &Gnn, instance: &Instance) -> Explanation {
        self.try_explain(model, instance)
            .unwrap_or_else(|e| panic!("REVELIO: {e}"))
    }

    /// Budget-aware entry point (see [`Revelio::try_explain_controlled`]).
    ///
    /// # Panics
    ///
    /// Panics on [`ExplainError::TooManyFlows`], which can only occur when
    /// `ctl.shrink_on_overflow` is off.
    fn explain_controlled(
        &self,
        model: &Gnn,
        instance: &Instance,
        ctl: &ExplainControl,
    ) -> ControlledExplanation {
        self.try_explain_controlled(model, instance, ctl)
            .unwrap_or_else(|e| panic!("REVELIO: {e}"))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use revelio_gnn::{GnnConfig, GnnKind, Task, TrainConfig};
    use revelio_graph::{Graph, Target};

    /// Builds a node-classification toy where node 0's class is decided by
    /// its neighbour 1's feature (and node 2 is noise), then checks REVELIO
    /// scores the informative edge above the noise edge.
    fn informative_neighbour_setup() -> (Gnn, Graph) {
        // Star: 1 -> 0, 2 -> 0 (directed toward the target).
        // Training set: many stars where the label of the centre equals the
        // feature of node of type A; realised as one graph with several
        // disjoint stars.
        let stars = 30;
        let mut b = Graph::builder(3 * stars, 3);
        let mut labels = vec![0usize; 3 * stars];
        for s in 0..stars {
            let (c, a, n) = (3 * s, 3 * s + 1, 3 * s + 2);
            b.edge(a, c).edge(n, c);
            let class = s % 2;
            // Node a's feature encodes the class; node n is random-ish noise.
            b.node_features(a, &[1.0 - class as f32, class as f32, 0.0]);
            b.node_features(n, &[0.3, 0.3, (s % 3) as f32 * 0.2]);
            b.node_features(c, &[0.0, 0.0, 1.0]);
            labels[c] = class;
            labels[a] = class;
            labels[n] = class;
        }
        b.node_labels(labels);
        let g = b.build();
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            3,
            2,
            21,
        ));
        let centres: Vec<usize> = (0..stars).map(|s| 3 * s).collect();
        revelio_gnn::train_node_classifier(
            &model,
            &g,
            &centres,
            &TrainConfig {
                epochs: 150,
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        (model, g)
    }

    fn instance_for(model: &Gnn, g: &Graph) -> (Instance, revelio_graph::KhopSubgraph) {
        let sub = revelio_graph::khop_subgraph(g, 0, 3);
        let inst = Instance::for_prediction(model, sub.graph.clone(), Target::Node(sub.target));
        (inst, sub)
    }

    #[test]
    fn factual_scores_informative_edge_higher() {
        let (model, g) = informative_neighbour_setup();
        let acc = revelio_gnn::evaluate_node_accuracy(
            &model,
            &g,
            &(0..10).map(|s| 3 * s).collect::<Vec<_>>(),
        );
        assert!(acc > 0.9, "model failed to learn the toy task: {acc}");

        let (inst, sub) = instance_for(&model, &g);
        let r = Revelio::new(RevelioConfig {
            epochs: 150,
            alpha: 0.01,
            ..Default::default()
        });
        let exp = r.explain(&model, &inst);

        // Edge from node a (old id 1) should outrank edge from noise node
        // (old id 2).
        let mut score_a = f32::NAN;
        let mut score_n = f32::NAN;
        for (eid, &(s, _)) in inst.graph.edges().iter().enumerate() {
            match sub.original_node(s as usize) {
                1 => score_a = exp.edge_scores[eid],
                2 => score_n = exp.edge_scores[eid],
                _ => {}
            }
        }
        assert!(
            score_a > score_n,
            "informative edge ({score_a}) should beat noise edge ({score_n})"
        );

        // Structure invariants.
        let flows = exp.flows.as_ref().unwrap();
        assert!(flows.scores.iter().all(|s| (-1.0..=1.0).contains(s)));
        let ls = exp.layer_edge_scores.as_ref().unwrap();
        assert_eq!(ls.len(), 3);
        assert!(ls.iter().all(|l| l.iter().all(|v| (0.0..=1.0).contains(v))));
    }

    #[test]
    fn counterfactual_scores_are_negated_flows() {
        let (model, g) = informative_neighbour_setup();
        let (inst, _) = instance_for(&model, &g);
        let r = Revelio::new(RevelioConfig {
            epochs: 30,
            objective: Objective::Counterfactual,
            ..Default::default()
        });
        let exp = r.explain(&model, &inst);
        let ls = exp.layer_edge_scores.as_ref().unwrap();
        // ω'[e] = 1 − σ(...) stays in (0, 1).
        assert!(ls.iter().all(|l| l.iter().all(|v| (0.0..=1.0).contains(v))));
    }

    #[test]
    #[should_panic(expected = "REVELIO:")]
    fn flow_cap_panics_with_context() {
        let (model, g) = informative_neighbour_setup();
        let (inst, _) = instance_for(&model, &g);
        let r = Revelio::new(RevelioConfig {
            max_flows: 1,
            ..Default::default()
        });
        let _ = r.explain(&model, &inst);
    }

    #[test]
    fn flow_cap_surfaces_typed_error() {
        let (model, g) = informative_neighbour_setup();
        let (inst, _) = instance_for(&model, &g);
        let r = Revelio::new(RevelioConfig {
            max_flows: 1,
            ..Default::default()
        });
        let err = r.try_explain(&model, &inst).err().expect("cap must trip");
        let ExplainError::TooManyFlows(inner) = &err;
        assert_eq!(inner.max, 1);
        assert!(err.to_string().contains("smaller computation subgraph"));
    }

    #[test]
    fn higher_alpha_yields_sparser_masks() {
        let (model, g) = informative_neighbour_setup();
        let (inst, _) = instance_for(&model, &g);
        let mean_mask = |alpha: f32| {
            let r = Revelio::new(RevelioConfig {
                epochs: 120,
                alpha,
                ..Default::default()
            });
            let exp = r.explain(&model, &inst);
            let ls = exp.layer_edge_scores.unwrap();
            let total: f32 = ls.iter().flatten().sum();
            total / ls.iter().map(|l| l.len()).sum::<usize>() as f32
        };
        let loose = mean_mask(0.0);
        let tight = mean_mask(2.0);
        assert!(
            tight < loose,
            "alpha=2 mean mask {tight} should be below alpha=0 mean mask {loose}"
        );
    }

    #[test]
    fn ablation_variants_run_and_score_all_flows() {
        let (model, g) = informative_neighbour_setup();
        let (inst, _) = instance_for(&model, &g);
        for squash in [MaskSquash::Tanh, MaskSquash::Sigmoid] {
            for lw in [LayerWeight::Exp, LayerWeight::Softplus, LayerWeight::None] {
                let r = Revelio::new(RevelioConfig {
                    epochs: 20,
                    squash,
                    layer_weight: lw,
                    ..Default::default()
                });
                let exp = r.explain(&model, &inst);
                let flows = exp.flows.expect("flow scores");
                assert_eq!(flows.scores.len(), flows.index.num_flows());
                if squash == MaskSquash::Sigmoid {
                    assert!(flows.scores.iter().all(|s| (0.0..=1.0).contains(s)));
                }
            }
        }
    }

    #[test]
    fn expired_deadline_degrades_but_masks_stay_valid() {
        use crate::control::Deadline;
        let (model, g) = informative_neighbour_setup();
        let (inst, _) = instance_for(&model, &g);
        let r = Revelio::new(RevelioConfig {
            epochs: 200,
            ..Default::default()
        });
        let ctl = ExplainControl::with_deadline(Deadline::within(std::time::Duration::ZERO));
        let out = r.try_explain_controlled(&model, &inst, &ctl).unwrap();
        assert!(out.degraded());
        assert!(out.degradation.deadline_hit);
        assert!(out.degradation.epochs_run < 200);
        assert_eq!(out.degradation.epochs_planned, 200);
        // Degraded results are still structurally valid explanations.
        let exp = &out.explanation;
        let flows = exp.flows.as_ref().unwrap();
        assert_eq!(flows.scores.len(), flows.index.num_flows());
        assert!(flows.scores.iter().all(|s| (-1.0..=1.0).contains(s)));
        assert!(exp.edge_scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn shrink_on_overflow_degrades_instead_of_failing() {
        let (model, g) = informative_neighbour_setup();
        let (inst, _) = instance_for(&model, &g);
        let r = Revelio::new(RevelioConfig {
            epochs: 10,
            max_flows: 2,
            ..Default::default()
        });
        // Without shrink the cap trips...
        assert!(r.try_explain(&model, &inst).is_err());
        // ...with shrink the job degrades to the 2-flow prefix instead.
        let ctl = ExplainControl {
            shrink_on_overflow: true,
            ..Default::default()
        };
        let out = r.try_explain_controlled(&model, &inst, &ctl).unwrap();
        assert!(out.degraded());
        assert!(out.degradation.flows_dropped > 0);
        let flows = out.explanation.flows.as_ref().unwrap();
        assert_eq!(flows.index.num_flows(), 2);
    }

    #[test]
    fn prebuilt_flow_index_is_reused_and_matches_fresh_run() {
        let (model, g) = informative_neighbour_setup();
        let (inst, _) = instance_for(&model, &g);
        let cfg = RevelioConfig {
            epochs: 25,
            ..Default::default()
        };
        let r = Revelio::new(cfg);
        let index = Arc::new(
            FlowIndex::build(&inst.mp, model.num_layers(), inst.target, cfg.max_flows).unwrap(),
        );
        let ctl = ExplainControl {
            flow_index: Some(Arc::clone(&index)),
            ..Default::default()
        };
        let cached = r.try_explain_controlled(&model, &inst, &ctl).unwrap();
        assert!(!cached.degraded());
        // The explanation references the caller's index, not a rebuild.
        let flows = cached.explanation.flows.as_ref().unwrap();
        assert!(Arc::ptr_eq(&flows.index, &index));
        // Scores are bit-identical to a from-scratch run (same seed).
        let fresh = r.try_explain(&model, &inst).unwrap();
        assert_eq!(
            cached.explanation.edge_scores, fresh.edge_scores,
            "cache-shared index must not change results"
        );
    }

    #[test]
    fn warm_start_seeds_and_early_stops_while_rejection_stays_cold() {
        use crate::control::ConvergedMask;
        let (model, g) = informative_neighbour_setup();
        let (inst, _) = instance_for(&model, &g);
        let r = Revelio::new(RevelioConfig {
            epochs: 500,
            ..Default::default()
        });
        let cold = r
            .try_explain_controlled(&model, &inst, &ExplainControl::default())
            .unwrap();
        assert_eq!(cold.degradation.epochs_run, 500);
        let mask = cold.converged_mask.clone().expect("REVELIO exports a mask");

        // Seeding from the converged state plateaus well before the budget,
        // without being reported as degraded.
        let warm = r
            .try_explain_controlled(
                &model,
                &inst,
                &ExplainControl {
                    warm_start: Some(Arc::new(mask.clone())),
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(
            warm.degradation.epochs_run < 500,
            "warm start ran all {} epochs",
            warm.degradation.epochs_run
        );
        assert!(!warm.degraded(), "early stop is not a degradation");
        // The warm answer is the seed refined, not replayed: scores stay
        // within the documented drift tolerance and preserve the ranking
        // the cold run found.
        for (w, c) in warm
            .explanation
            .edge_scores
            .iter()
            .zip(&cold.explanation.edge_scores)
        {
            assert!((w - c).abs() < 0.35, "warm score drifted: {w} vs {c}");
        }
        let top = |scores: &[f32]| {
            scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
        };
        assert_eq!(
            top(&warm.explanation.edge_scores),
            top(&cold.explanation.edge_scores),
            "warm start changed the top-ranked edge"
        );

        // A stale selection is rejected: the run is bit-identical to cold.
        let stale = ConvergedMask {
            mask_params: vec![3.0],
            layer_weights: mask.layer_weights.clone(),
            selected: vec![0],
        };
        let rejected = r
            .try_explain_controlled(
                &model,
                &inst,
                &ExplainControl {
                    warm_start: Some(Arc::new(stale)),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(
            rejected.explanation.edge_scores, cold.explanation.edge_scores,
            "rejected warm start must not perturb the cold path"
        );
        assert_eq!(rejected.degradation.epochs_run, 500);
    }

    #[test]
    fn preselection_limits_learned_flows_and_still_ranks_informative_edge() {
        let (model, g) = informative_neighbour_setup();
        let (inst, sub) = instance_for(&model, &g);
        let full_flows = {
            let r = Revelio::new(RevelioConfig {
                epochs: 1,
                ..Default::default()
            });
            r.explain(&model, &inst)
                .flows
                .expect("flows")
                .index
                .num_flows()
        };
        assert!(full_flows > 4, "toy instance should have several flows");

        let r = Revelio::new(RevelioConfig {
            epochs: 150,
            alpha: 0.01,
            preselect: Some(4),
            ..Default::default()
        });
        let exp = r.explain(&model, &inst);
        let flows = exp.flows.as_ref().expect("flows");
        // Exactly 4 flows carry non-zero learned scores.
        let nonzero = flows.scores.iter().filter(|s| **s != 0.0).count();
        assert!(
            nonzero <= 4,
            "preselection must cap learned flows: {nonzero}"
        );

        // The informative edge still wins.
        let mut score_a = f32::NAN;
        let mut score_n = f32::NAN;
        for (eid, &(s, _)) in inst.graph.edges().iter().enumerate() {
            match sub.original_node(s as usize) {
                1 => score_a = exp.edge_scores[eid],
                2 => score_n = exp.edge_scores[eid],
                _ => {}
            }
        }
        assert!(score_a > score_n, "preselected REVELIO lost the signal");
    }
}
