//! Batched multi-job mask optimization: several explain jobs that share one
//! model are fused into a single wider optimize pass.
//!
//! The serving runtime frequently receives bursts of explain requests
//! against the same registered model. Optimising their flow masks one job
//! at a time runs the model forward/backward over one small graph per
//! epoch — matrices too narrow to amortise loop and dispatch overhead.
//! [`BatchedOptimizer`] instead builds the **disjoint union** of the batch's
//! instance graphs (block-diagonal incidence, node/edge/flow offsets) and
//! learns every job's masks in one stacked parameter set driven by a single
//! summed loss. Each epoch then runs one forward/backward over a matrix
//! with `Σ nodes` rows instead of `B` separate passes.
//!
//! # Equivalence
//!
//! The union graph is disjoint, the stacked losses are summed (so each
//! job's sub-tape receives the same upstream gradient `1.0` it gets when
//! optimised alone), and Adam is elementwise — the batched trajectory is
//! designed to match per-job serial runs exactly, and on every test shape
//! it does bitwise. The *documented contract* is weaker: batched scores
//! match serial scores within [`BATCH_TOLERANCE`] (`1e-6` absolute), which
//! the equivalence suite enforces. Rely on the tolerance, not on bitwise
//! equality.
//!
//! Jobs are fused only when they are plain cold-start node-classification
//! runs (no preselection). Anything else falls back to per-job serial
//! optimisation and still returns correct results.

use std::sync::Arc;

use revelio_gnn::{Gnn, Instance, Task};
use revelio_graph::{FlowIndex, Graph, MpGraph, Target};
use revelio_tensor::{uniform, Adam, BinCsr, Optimizer, Tensor};

use crate::control::ExplainControl;
use crate::explanation::{Explanation, FlowScores, Objective};
use crate::revelio::{ExplainError, LayerWeight, Revelio, RevelioConfig};

/// Maximum absolute divergence of batched from serial scores (see the
/// module docs: empirically bitwise, contractually `1e-6`).
pub const BATCH_TOLERANCE: f32 = 1e-6;

/// One job of a batch: the instance plus its mask-initialisation seed
/// (which overrides [`RevelioConfig::seed`] for that job).
pub struct BatchItem<'a> {
    /// The instance to explain.
    pub instance: &'a Instance,
    /// Per-job mask-initialisation seed.
    pub seed: u64,
    /// A pre-built flow index for this instance (e.g. from the serving
    /// runtime's artifact cache). Used when its layer count matches the
    /// model; otherwise the optimizer enumerates flows itself.
    pub flow_index: Option<Arc<FlowIndex>>,
}

/// Fuses the mask optimisation of several explain jobs against one model
/// into a single wider forward/backward pass per epoch.
pub struct BatchedOptimizer {
    cfg: RevelioConfig,
}

impl BatchedOptimizer {
    /// Creates a batched optimizer; all jobs of a batch share `cfg` (their
    /// seeds come from the [`BatchItem`]s).
    pub fn new(cfg: RevelioConfig) -> BatchedOptimizer {
        BatchedOptimizer { cfg }
    }

    /// The shared configuration.
    pub fn config(&self) -> &RevelioConfig {
        &self.cfg
    }

    /// Whether a batch of jobs with this configuration would take the fused
    /// path (as opposed to the serial fallback).
    pub fn fusable(&self, model: &Gnn, items: &[BatchItem<'_>]) -> bool {
        items.len() >= 2
            && self.cfg.preselect.is_none()
            && model.config().task == Task::NodeClassification
            && items.iter().all(|it| {
                matches!(it.instance.target, Target::Node(_))
                    && it.instance.graph.feat_dim() == items[0].instance.graph.feat_dim()
            })
    }

    /// Explains every item, fusing the optimisation into one pass when the
    /// batch is eligible ([`BatchedOptimizer::fusable`]) and falling back
    /// to per-job serial runs otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`ExplainError::TooManyFlows`] when any item exceeds
    /// [`RevelioConfig::max_flows`]; no partial results are returned.
    pub fn explain_batch(
        &self,
        model: &Gnn,
        items: &[BatchItem<'_>],
    ) -> Result<Vec<Explanation>, ExplainError> {
        if !self.fusable(model, items) {
            return self.explain_serial(model, items);
        }
        self.explain_fused(model, items)
    }

    /// Per-job fallback: plain [`Revelio::try_explain`] runs.
    fn explain_serial(
        &self,
        model: &Gnn,
        items: &[BatchItem<'_>],
    ) -> Result<Vec<Explanation>, ExplainError> {
        items
            .iter()
            .map(|it| {
                let cfg = RevelioConfig {
                    seed: it.seed,
                    ..self.cfg
                };
                let ctl = ExplainControl {
                    flow_index: it.flow_index.clone(),
                    ..Default::default()
                };
                Revelio::new(cfg)
                    .try_explain_controlled(model, it.instance, &ctl)
                    .map(|c| c.explanation)
            })
            .collect()
    }

    fn explain_fused(
        &self,
        model: &Gnn,
        items: &[BatchItem<'_>],
    ) -> Result<Vec<Explanation>, ExplainError> {
        let cfg = &self.cfg;
        let layers = model.num_layers();
        let b = items.len();

        // Flow enumeration stays per-job (indexes are also part of the
        // returned explanations); cache-shared indexes are reused.
        let mut indexes: Vec<Arc<FlowIndex>> = Vec::with_capacity(b);
        for it in items {
            let idx = match &it.flow_index {
                Some(idx) if idx.num_layers() == layers => Arc::clone(idx),
                _ => Arc::new(
                    FlowIndex::build(&it.instance.mp, layers, it.instance.target, cfg.max_flows)
                        .map_err(ExplainError::TooManyFlows)?,
                ),
            };
            indexes.push(idx);
        }

        // Disjoint-union offsets. A layer edge of the union MpGraph is the
        // stored edges of every job in job order, then the self-loops of
        // every node in job order (MpGraph's stored-then-self-loop layout
        // applied to the union graph).
        let node_off = prefix_sums(items.iter().map(|it| it.instance.mp.num_nodes()));
        let edge_off = prefix_sums(items.iter().map(|it| it.instance.mp.num_orig_edges()));
        let flow_off = prefix_sums(indexes.iter().map(|idx| idx.num_flows()));
        let n_total = node_off[b];
        let m_total = edge_off[b];
        let k_total = flow_off[b];
        let union_edge = |j: usize, e: usize| {
            let m_j = items[j].instance.mp.num_orig_edges();
            if e < m_j {
                edge_off[j] + e
            } else {
                m_total + node_off[j] + (e - m_j)
            }
        };

        // Union graph + features. Per-job node/edge ids shift by their
        // offsets; degrees (hence the GCN normalisation) are unchanged.
        let feat_dim = items[0].instance.graph.feat_dim();
        let mut gb = Graph::builder(n_total, feat_dim);
        let mut feats = Vec::with_capacity(n_total * feat_dim);
        for (j, it) in items.iter().enumerate() {
            for &(s, d) in it.instance.graph.edges() {
                gb.edge(node_off[j] + s as usize, node_off[j] + d as usize);
            }
            feats.extend_from_slice(it.instance.graph.features());
        }
        gb.all_features(feats);
        let union_g = gb.build();
        let mp = MpGraph::new(&union_g);
        let x = Gnn::features_tensor(&union_g);
        let e_total = mp.layer_edge_count();

        // Which job each union layer edge belongs to (for expanding the
        // per-job layer weights onto edges).
        let mut edge_job = vec![0usize; e_total];
        for (j, it) in items.iter().enumerate() {
            let mpj = &it.instance.mp;
            for e in 0..mpj.layer_edge_count() {
                edge_job[union_edge(j, e)] = j;
            }
        }

        // Block-diagonal incidence: union row `union_edge(j, e)` is job
        // `j`'s row `e` with flow columns shifted by `flow_off[j]`.
        let union_incidence: Vec<Arc<BinCsr>> = (0..layers)
            .map(|l| {
                let mut rows: Vec<Vec<u32>> = vec![Vec::new(); e_total];
                for (j, idx) in indexes.iter().enumerate() {
                    let mpj = &items[j].instance.mp;
                    for e in 0..mpj.layer_edge_count() {
                        let cols = idx.incidence(l).row(e);
                        if !cols.is_empty() {
                            rows[union_edge(j, e)] = cols
                                .iter()
                                .map(|&c| (flow_off[j] + c as usize) as u32)
                                .collect();
                        }
                    }
                }
                Arc::new(BinCsr::from_rows(e_total, k_total, &rows))
            })
            .collect();

        // Stacked parameters: one mask leaf holding every job's segment
        // (each initialised from its own seed, so segments match the cold
        // per-job init exactly), and one `[B, 1]` weight leaf per layer.
        let mut init = Vec::with_capacity(k_total);
        for (j, idx) in indexes.iter().enumerate() {
            init.extend(uniform(idx.num_flows(), 1, 0.1, items[j].seed).to_vec());
        }
        let mask_params = Tensor::from_vec(init, k_total, 1).requires_grad();
        let layer_weights: Vec<Tensor> = match cfg.layer_weight {
            LayerWeight::None => Vec::new(),
            LayerWeight::Exp => (0..layers)
                .map(|_| Tensor::zeros(b, 1).requires_grad())
                .collect(),
            LayerWeight::Softplus => (0..layers)
                .map(|_| Tensor::full(0.5413, b, 1).requires_grad())
                .collect(),
        };
        let mut params = vec![mask_params.clone()];
        params.extend(layer_weights.iter().cloned());

        let flow_scores = || match cfg.squash {
            crate::revelio::MaskSquash::Tanh => mask_params.tanh_t(),
            crate::revelio::MaskSquash::Sigmoid => mask_params.sigmoid(),
        };
        let layer_masks = || {
            let omega_f = flow_scores();
            (0..layers)
                .map(|l| {
                    let s = omega_f.sp_matvec(&union_incidence[l]);
                    match cfg.layer_weight {
                        LayerWeight::Exp => {
                            s.sigmoid_scale(&layer_weights[l].exp().gather_rows(&edge_job))
                        }
                        LayerWeight::Softplus => {
                            s.sigmoid_scale(&layer_weights[l].softplus().gather_rows(&edge_job))
                        }
                        LayerWeight::None => s.sigmoid(),
                    }
                })
                .collect::<Vec<Tensor>>()
        };

        // Per-job sparsity supports (union layer-edge ids of edges carrying
        // at least one of the job's flows, ascending — the same visit order
        // the serial run uses).
        let used: Vec<Vec<Vec<usize>>> = items
            .iter()
            .enumerate()
            .map(|(j, it)| {
                (0..layers)
                    .map(|l| {
                        (0..it.instance.mp.layer_edge_count())
                            .filter(|&e| !indexes[j].incidence(l).row(e).is_empty())
                            .map(|e| union_edge(j, e))
                            .collect()
                    })
                    .collect()
            })
            .collect();

        let target_rows: Vec<usize> = items
            .iter()
            .enumerate()
            .map(|(j, it)| match it.instance.target {
                Target::Node(v) => node_off[j] + v,
                Target::Graph => unreachable!("fusable() requires node targets"),
            })
            .collect();

        let build_loss = || {
            let masks = layer_masks();
            let logits = model
                .node_logits(&mp, &x, Some(&masks))
                .gather_rows(&target_rows);
            let logp = logits.log_softmax_rows();
            let mut total: Option<Tensor> = None;
            for (j, it) in items.iter().enumerate() {
                let lp_c = logp
                    .gather_rows(&[j])
                    .slice_cols(it.instance.class, it.instance.class + 1);
                let objective = match cfg.objective {
                    Objective::Factual => lp_c.neg(),
                    Objective::Counterfactual => {
                        lp_c.exp().neg().add_scalar(1.0).clamp_min(1e-6).ln().neg()
                    }
                };
                let mut reg: Option<Tensor> = None;
                let mut used_count = 0usize;
                for (l, mask) in masks.iter().enumerate() {
                    if used[j][l].is_empty() {
                        continue;
                    }
                    let vals = mask.gather_rows(&used[j][l]);
                    let term = match cfg.objective {
                        Objective::Factual => vals.sum_all(),
                        Objective::Counterfactual => vals.neg().add_scalar(1.0).sum_all(),
                    };
                    used_count += used[j][l].len();
                    reg = Some(match reg {
                        None => term,
                        Some(r) => r.add(&term),
                    });
                }
                let loss_j = match reg {
                    Some(r) if used_count > 0 => {
                        objective.add(&r.mul_scalar(cfg.alpha / used_count as f32))
                    }
                    _ => objective,
                };
                total = Some(match total {
                    None => loss_j,
                    Some(t) => t.add(&loss_j),
                });
            }
            total.expect("batch has at least one job")
        };

        #[cfg(debug_assertions)]
        {
            let diags = revelio_analysis::audit_tape_with_params(&build_loss(), &params);
            assert!(
                diags.is_empty(),
                "batched REVELIO: static tape audit found {} defect(s):\n{}",
                diags.len(),
                diags
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }

        let mut opt = Adam::new(params, cfg.lr);
        for _ in 0..cfg.epochs {
            opt.zero_grad();
            build_loss().backward();
            opt.step();
        }

        // Per-job readout: slice the stacked state back apart and apply the
        // same score mapping as the serial path.
        let learned_all = flow_scores().to_vec();
        let union_mask_vals: Vec<Vec<f32>> = layer_masks().iter().map(Tensor::to_vec).collect();
        let out = items
            .iter()
            .enumerate()
            .map(|(j, it)| {
                let index = Arc::clone(&indexes[j]);
                let k_j = index.num_flows();
                let mut flow_scores: Vec<f32> =
                    learned_all[flow_off[j]..flow_off[j] + k_j].to_vec();
                let e_j = it.instance.mp.layer_edge_count();
                let mut layer_edge_scores: Vec<Vec<f32>> = union_mask_vals
                    .iter()
                    .map(|vals| (0..e_j).map(|e| vals[union_edge(j, e)]).collect())
                    .collect();
                if cfg.objective == Objective::Counterfactual {
                    for s in &mut flow_scores {
                        *s = -*s;
                    }
                    for ls in &mut layer_edge_scores {
                        for v in ls.iter_mut() {
                            *v = 1.0 - *v;
                        }
                    }
                }
                let m_j = it.instance.mp.num_orig_edges();
                let mut edge_scores = vec![f32::NEG_INFINITY; m_j];
                for l in 0..layers {
                    for (e, es) in edge_scores.iter_mut().enumerate() {
                        for &f in index.flows_through(l, e) {
                            *es = es.max(flow_scores[f as usize]);
                        }
                    }
                }
                for es in &mut edge_scores {
                    *es = if es.is_finite() {
                        (1.0 + *es) / 2.0
                    } else {
                        0.0
                    };
                }
                Explanation {
                    edge_scores,
                    layer_edge_scores: Some(layer_edge_scores),
                    flows: Some(FlowScores {
                        index,
                        scores: flow_scores,
                    }),
                }
            })
            .collect();
        Ok(out)
    }
}

/// `[0, x0, x0+x1, ...]` — offsets plus a trailing total.
fn prefix_sums(xs: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut out = vec![0usize];
    let mut acc = 0usize;
    for x in xs {
        acc += x;
        out.push(acc);
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use revelio_gnn::{GnnConfig, GnnKind};

    fn model(kind: GnnKind, seed: u64) -> Gnn {
        Gnn::new(GnnConfig::standard(
            kind,
            Task::NodeClassification,
            3,
            2,
            seed,
        ))
    }

    /// Three structurally different small instances against one model.
    fn instances(model: &Gnn) -> Vec<Instance> {
        let mut b1 = Graph::builder(3, 3);
        b1.edge(0, 1).edge(1, 2).edge(2, 0);
        b1.node_features(0, &[1.0, 0.0, 0.2]);
        b1.node_features(1, &[0.0, 1.0, 0.1]);
        let g1 = b1.build();

        let mut b2 = Graph::builder(4, 3);
        b2.edge(1, 0).edge(2, 0).edge(3, 0);
        b2.node_features(0, &[0.3, 0.3, 1.0]);
        b2.node_features(3, &[0.9, 0.1, 0.0]);
        let g2 = b2.build();

        let mut b3 = Graph::builder(3, 3);
        b3.undirected_edge(0, 1).undirected_edge(1, 2);
        b3.node_features(2, &[0.5, 0.5, 0.5]);
        let g3 = b3.build();

        vec![
            Instance::for_prediction(model, g1, Target::Node(1)),
            Instance::for_prediction(model, g2, Target::Node(0)),
            Instance::for_prediction(model, g3, Target::Node(2)),
        ]
    }

    fn assert_close(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= BATCH_TOLERANCE,
                "{what}[{i}]: batched {x} vs serial {y} exceeds tolerance"
            );
        }
    }

    fn check_equivalence(kind: GnnKind, cfg: RevelioConfig) {
        let m = model(kind, 11);
        let insts = instances(&m);
        let items: Vec<BatchItem<'_>> = insts
            .iter()
            .enumerate()
            .map(|(j, instance)| BatchItem {
                instance,
                seed: 40 + j as u64,
                flow_index: None,
            })
            .collect();
        let opt = BatchedOptimizer::new(cfg);
        assert!(
            opt.fusable(&m, &items),
            "fixture should take the fused path"
        );
        let batched = opt.explain_batch(&m, &items).unwrap();

        for (j, inst) in insts.iter().enumerate() {
            let serial = Revelio::new(RevelioConfig {
                seed: 40 + j as u64,
                ..cfg
            })
            .try_explain(&m, inst)
            .unwrap();
            assert_close(&batched[j].edge_scores, &serial.edge_scores, "edge_scores");
            assert_close(
                &batched[j].flows.as_ref().unwrap().scores,
                &serial.flows.as_ref().unwrap().scores,
                "flow_scores",
            );
            let bl = batched[j].layer_edge_scores.as_ref().unwrap();
            let sl = serial.layer_edge_scores.as_ref().unwrap();
            assert_eq!(bl.len(), sl.len());
            for (lb, ls) in bl.iter().zip(sl) {
                assert_close(lb, ls, "layer_edge_scores");
            }
        }
    }

    #[test]
    fn batched_gcn_matches_serial_within_tolerance() {
        check_equivalence(
            GnnKind::Gcn,
            RevelioConfig {
                epochs: 40,
                ..Default::default()
            },
        );
    }

    #[test]
    fn batched_gat_matches_serial_within_tolerance() {
        check_equivalence(
            GnnKind::Gat,
            RevelioConfig {
                epochs: 20,
                ..Default::default()
            },
        );
    }

    #[test]
    fn batched_counterfactual_matches_serial() {
        check_equivalence(
            GnnKind::Gin,
            RevelioConfig {
                epochs: 20,
                objective: Objective::Counterfactual,
                ..Default::default()
            },
        );
    }

    #[test]
    fn single_item_batch_is_bit_identical_to_serial() {
        let m = model(GnnKind::Gcn, 7);
        let insts = instances(&m);
        let cfg = RevelioConfig {
            epochs: 25,
            seed: 5,
            ..Default::default()
        };
        let opt = BatchedOptimizer::new(cfg);
        let items = [BatchItem {
            instance: &insts[0],
            seed: 5,
            flow_index: None,
        }];
        assert!(!opt.fusable(&m, &items), "singletons must stay serial");
        let batched = opt.explain_batch(&m, &items).unwrap();
        let serial = Revelio::new(cfg).try_explain(&m, &insts[0]).unwrap();
        assert_eq!(batched[0].edge_scores, serial.edge_scores);
        assert_eq!(
            batched[0].flows.as_ref().unwrap().scores,
            serial.flows.as_ref().unwrap().scores
        );
    }
}
