//! Cancellable / budgeted explanation control.
//!
//! The serving runtime (`revelio-runtime`) enforces per-job deadlines and
//! flow budgets; this module defines the vocabulary it shares with the
//! explainers: a [`Deadline`] the per-epoch optimisation loops check
//! cooperatively, an [`ExplainControl`] block carrying the deadline plus any
//! pre-built (cache-shared) flow index, and the [`ControlledExplanation`]
//! result that reports *how* the answer was degraded instead of erroring.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use revelio_graph::FlowIndex;
use revelio_trace::TraceHandle;

use crate::explanation::Explanation;

/// A soft wall-clock deadline plus an optional cooperative cancel flag.
///
/// Explainers poll [`Deadline::expired`] between optimisation epochs and
/// return their best-so-far answer once it trips; they never abort
/// mid-epoch, so a deadline is honoured within one epoch's latency.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    at: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Deadline {
    /// No deadline: [`Deadline::expired`] is always `false`.
    pub fn none() -> Deadline {
        Deadline::default()
    }

    /// Expires `budget` from now.
    pub fn within(budget: Duration) -> Deadline {
        Deadline {
            at: Some(Instant::now() + budget),
            cancel: None,
        }
    }

    /// Expires at the given instant.
    pub fn at(instant: Instant) -> Deadline {
        Deadline {
            at: Some(instant),
            cancel: None,
        }
    }

    /// Attaches a cancel flag: the deadline also counts as expired once the
    /// flag is set (used to abandon queued work on shutdown).
    #[must_use]
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Deadline {
        self.cancel = Some(flag);
        self
    }

    /// Whether any bound (deadline or cancel flag) is attached; callers use
    /// this to skip best-so-far bookkeeping on unbounded runs.
    pub fn is_set(&self) -> bool {
        self.at.is_some() || self.cancel.is_some()
    }

    /// Whether the deadline has passed or the job was cancelled.
    pub fn expired(&self) -> bool {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        self.at.is_some_and(|t| Instant::now() >= t)
    }

    /// Time left, if a deadline is set (`None` means unbounded).
    pub fn remaining(&self) -> Option<Duration> {
        self.at.map(|t| t.saturating_duration_since(Instant::now()))
    }
}

/// A converged mask state: the raw (pre-squash) parameters a
/// mask-learning run finished on, together with the flow selection they
/// are aligned with. Exported on [`ControlledExplanation`] so a
/// persistence layer can store it, and accepted back through
/// [`ExplainControl::warm_start`] to seed the next run on the same
/// instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergedMask {
    /// Raw mask parameters, one per selected flow.
    pub mask_params: Vec<f32>,
    /// Raw layer-weight parameters, one vector per weighting tensor
    /// (empty when the layer-weighting mode has no parameters).
    pub layer_weights: Vec<Vec<f32>>,
    /// Flow ids the mask parameters are aligned with; a warm start is
    /// accepted only when the new run selects the identical set.
    pub selected: Vec<u32>,
}

/// Per-job controls passed to [`Explainer::explain_controlled`].
///
/// [`Explainer`]: crate::Explainer
/// [`Explainer::explain_controlled`]: crate::Explainer::explain_controlled
#[derive(Clone, Default)]
pub struct ExplainControl {
    /// Cooperative deadline checked each optimisation epoch.
    pub deadline: Deadline,
    /// A pre-built flow index for this instance, typically shared through
    /// the serving runtime's artifact cache so concurrent requests against
    /// the same instance enumerate flows once. Flow-based explainers use it
    /// when its layer count matches; others ignore it.
    pub flow_index: Option<Arc<FlowIndex>>,
    /// When the instance exceeds the explainer's flow cap, shrink the flow
    /// set to the cap (degrading the answer) instead of failing the job.
    pub shrink_on_overflow: bool,
    /// Structured-tracing sink for this request. `None` means untraced;
    /// explainers that instrument themselves fall back to
    /// [`TraceHandle::noop`] (whose disabled collector makes every emit a
    /// branch, not an allocation). Per-epoch loss/grad-norm events are
    /// additionally gated on [`TraceHandle::verbose`], so an always-on
    /// metrics bridge never forces extra tensor reads.
    pub trace: Option<TraceHandle>,
    /// Seed the mask optimisation from a previously converged state
    /// instead of the cold random init. Mask-learning explainers apply it
    /// only when the stored selection matches the run's own flow selection
    /// exactly (and may then stop early once the loss plateaus — see
    /// [`Degradation::epochs_run`]); everything else ignores it. `None`
    /// leaves the cold path untouched, so disabled warm-start is
    /// bit-identical to a build without this field.
    pub warm_start: Option<Arc<ConvergedMask>>,
}

impl ExplainControl {
    /// A control block with the given deadline and defaults otherwise.
    pub fn with_deadline(deadline: Deadline) -> ExplainControl {
        ExplainControl {
            deadline,
            ..Default::default()
        }
    }
}

/// How (and how much) an explanation was degraded to meet its budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Degradation {
    /// The optimisation loop stopped early because the deadline expired.
    pub deadline_hit: bool,
    /// Optimisation epochs actually run (equals the configured count when
    /// the deadline never tripped; `0` for non-iterative methods).
    pub epochs_run: usize,
    /// Optimisation epochs the configuration asked for.
    pub epochs_planned: usize,
    /// Message flows dropped by cap-shrinking (`0` when the full flow set
    /// was scored).
    pub flows_dropped: u64,
}

impl Degradation {
    /// Whether the answer is degraded in any way.
    pub fn is_degraded(&self) -> bool {
        self.deadline_hit || self.flows_dropped > 0
    }
}

/// An explanation plus the record of any budget-driven degradation.
pub struct ControlledExplanation {
    /// The (possibly degraded, always structurally valid) explanation.
    pub explanation: Explanation,
    /// What was cut to meet the budget; check
    /// [`Degradation::is_degraded`].
    pub degradation: Degradation,
    /// The converged mask state this run finished on, for methods that
    /// learn one (REVELIO). A persistence layer stores it and replays it
    /// through [`ExplainControl::warm_start`] on repeat traffic.
    pub converged_mask: Option<ConvergedMask>,
}

impl ControlledExplanation {
    /// Wraps a fully converged explanation (no degradation).
    pub fn complete(explanation: Explanation) -> ControlledExplanation {
        ControlledExplanation {
            explanation,
            degradation: Degradation::default(),
            converged_mask: None,
        }
    }

    /// Whether any budget enforcement degraded this answer.
    pub fn degraded(&self) -> bool {
        self.degradation.is_degraded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_deadline_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert!(d.remaining().is_none());
    }

    #[test]
    fn elapsed_deadline_expires() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        let far = Deadline::within(Duration::from_secs(3600));
        assert!(!far.expired());
    }

    #[test]
    fn cancel_flag_expires_any_deadline() {
        let flag = Arc::new(AtomicBool::new(false));
        let d = Deadline::none().with_cancel(Arc::clone(&flag));
        assert!(!d.expired());
        flag.store(true, Ordering::Relaxed);
        assert!(d.expired());
    }

    #[test]
    fn degradation_flags() {
        assert!(!Degradation::default().is_degraded());
        assert!(Degradation {
            deadline_hit: true,
            ..Default::default()
        }
        .is_degraded());
        assert!(Degradation {
            flows_dropped: 3,
            ..Default::default()
        }
        .is_degraded());
    }
}
