//! REVELIO — the paper's primary contribution.
//!
//! Given a pretrained GNN and an instance (graph + prediction target),
//! REVELIO learns an importance score for every **message flow** — each
//! length-`L` layer-edge path — by:
//!
//! 1. allocating one learnable mask per flow (`M ∈ ℝ^{|F|}`),
//! 2. squashing them to scores `ω[F] = tanh(M)` (Eq. 4),
//! 3. distributing the scores onto layer edges through the sparse incidence
//!    matrices and per-layer learned weights,
//!    `ω[E] = σ(I · ω[F] ⊙ exp(w))` (Eqs. 5 & 7),
//! 4. multiplying the layer-edge masks into the GNN's message step (Eq. 6),
//! 5. optimising the factual (Eq. 1) or counterfactual (Eq. 2) objective with
//!    a sparsity regulariser (Eqs. 8–9).
//!
//! This crate also defines the [`Explainer`] trait and [`Explanation`] type
//! shared with every baseline in `revelio-baselines`.

#![deny(clippy::print_stdout, clippy::print_stderr)]

mod batch;
mod control;
mod explanation;
mod revelio;
pub mod wire;

pub use batch::{BatchItem, BatchedOptimizer, BATCH_TOLERANCE};
pub use control::{ControlledExplanation, ConvergedMask, Deadline, Degradation, ExplainControl};
pub use explanation::{aggregate_flow_scores, Explainer, Explanation, FlowScores, Objective};
pub use revelio::{ExplainError, LayerWeight, MaskSquash, Revelio, RevelioConfig};
pub use wire::{ControlSpec, WireDecodeError, WireReader};
