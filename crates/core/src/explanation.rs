//! The [`Explainer`] trait and [`Explanation`] output type shared by
//! REVELIO and every baseline.

use std::sync::Arc;

use revelio_gnn::{Gnn, Instance};
use revelio_graph::{FlowIndex, MpGraph};

use crate::control::{ControlledExplanation, ExplainControl};

/// Explanation objective (§IV-A).
///
/// * [`Objective::Factual`] — find components *sufficient* for the
///   prediction (Eq. 1); evaluated by Fidelity− (Eq. 10).
/// * [`Objective::Counterfactual`] — find components *necessary* for the
///   prediction (Eq. 2); evaluated by Fidelity+ (Eq. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    #[default]
    Factual,
    Counterfactual,
}

/// Flow-level scores attached to an explanation by flow-based methods
/// (REVELIO, GNN-LRP, FlowX).
pub struct FlowScores {
    /// The enumerated flows this explanation scored, shared via `Arc` so a
    /// cache-resident index is referenced rather than copied.
    pub index: Arc<FlowIndex>,
    /// One importance score per flow, aligned with `index`.
    pub scores: Vec<f32>,
}

impl FlowScores {
    /// Flow ids sorted by descending score (IEEE total order, so a `NaN`
    /// score from a diverged run sorts deterministically instead of
    /// panicking; ties broken by id).
    pub fn ranking(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.scores.len()).collect();
        ids.sort_by(|&a, &b| self.scores[b].total_cmp(&self.scores[a]).then(a.cmp(&b)));
        ids
    }

    /// The `k` highest-scoring flows as `(flow_id, score)` pairs.
    pub fn top_k(&self, k: usize) -> Vec<(usize, f32)> {
        self.ranking()
            .into_iter()
            .take(k)
            .map(|f| (f, self.scores[f]))
            .collect()
    }
}

/// The output of an explainer on one instance.
pub struct Explanation {
    /// Importance of each *original* (stored) edge of the instance graph,
    /// aggregated across GNN layers; higher = more important. Length equals
    /// `graph.num_edges()`.
    pub edge_scores: Vec<f32>,
    /// Per-layer scores over *layer edges* (original edges followed by
    /// self-loops), when the method distinguishes layers.
    pub layer_edge_scores: Option<Vec<Vec<f32>>>,
    /// Flow-level scores, for flow-based methods.
    pub flows: Option<FlowScores>,
}

impl Explanation {
    /// Builds an edge-only explanation.
    pub fn from_edge_scores(edge_scores: Vec<f32>) -> Explanation {
        Explanation {
            edge_scores,
            layer_edge_scores: None,
            flows: None,
        }
    }

    /// Edge ids sorted by descending importance (IEEE total order; ties
    /// broken by id for determinism).
    pub fn ranked_edges(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.edge_scores.len()).collect();
        ids.sort_by(|&a, &b| {
            self.edge_scores[b]
                .total_cmp(&self.edge_scores[a])
                .then(a.cmp(&b))
        });
        ids
    }

    /// The `k` most important edge ids.
    pub fn top_edges(&self, k: usize) -> Vec<usize> {
        self.ranked_edges().into_iter().take(k).collect()
    }

    /// Layer-edge ids ranked within one GNN layer — the paper's
    /// "importance scores for edges within individual GNN layers"
    /// translation. Returns `None` when the method does not distinguish
    /// layers.
    pub fn layer_ranked_edges(&self, layer: usize) -> Option<Vec<usize>> {
        let scores = self.layer_edge_scores.as_ref()?.get(layer)?;
        let mut ids: Vec<usize> = (0..scores.len()).collect();
        ids.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        Some(ids)
    }
}

/// A post-hoc instance-level GNN explainer.
pub trait Explainer {
    /// Method name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Explains the model's prediction on one instance.
    fn explain(&self, model: &Gnn, instance: &Instance) -> Explanation;

    /// Group-level methods (PGExplainer, GraphMask) train a shared network
    /// over a set of instances before explaining; instance-level methods
    /// ignore this call.
    fn fit(&self, _model: &Gnn, _instances: &[&Instance]) {}

    /// Deadline- and budget-aware entry point used by the serving runtime.
    ///
    /// Implementations should (a) reuse `ctl.flow_index` when compatible
    /// instead of re-enumerating flows, (b) poll `ctl.deadline` between
    /// optimisation epochs and return the best answer seen so far once it
    /// expires, and (c) when `ctl.shrink_on_overflow` is set, degrade (shrink
    /// the flow set to the cap) rather than fail on oversized instances —
    /// reporting everything through [`Degradation`].
    ///
    /// The default implementation ignores the controls and wraps
    /// [`Explainer::explain`], which keeps every method servable; methods
    /// with per-instance optimisation loops override it.
    ///
    /// [`Degradation`]: crate::Degradation
    fn explain_controlled(
        &self,
        model: &Gnn,
        instance: &Instance,
        ctl: &ExplainControl,
    ) -> ControlledExplanation {
        let _ = ctl;
        ControlledExplanation::complete(self.explain(model, instance))
    }
}

/// Translates flow scores into layer-edge and original-edge scores.
///
/// The layer-edge score is the sum of the scores of the flows traversing
/// that layer edge (the aggregation of Eq. 3 with `f = Σ`); the
/// original-edge score is the mean of its per-layer scores — the paper's
/// "across the entire GNN" translation.
pub fn aggregate_flow_scores(
    mp: &MpGraph,
    index: &FlowIndex,
    scores: &[f32],
) -> (Vec<Vec<f32>>, Vec<f32>) {
    assert_eq!(scores.len(), index.num_flows(), "one score per flow");
    let layers = index.num_layers();
    let ne = mp.layer_edge_count();
    let mut layer_scores = vec![vec![0.0f32; ne]; layers];
    for (l, ls) in layer_scores.iter_mut().enumerate() {
        for (e, s) in ls.iter_mut().enumerate() {
            for &f in index.flows_through(l, e) {
                *s += scores[f as usize];
            }
        }
    }
    let mut edge_scores = vec![0.0f32; mp.num_orig_edges()];
    for (e, es) in edge_scores.iter_mut().enumerate() {
        let sum: f32 = layer_scores.iter().map(|ls| ls[e]).sum();
        *es = sum / layers as f32;
    }
    (layer_scores, edge_scores)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use revelio_graph::{Graph, Target};

    #[test]
    fn ranked_edges_descending_and_deterministic() {
        let e = Explanation::from_edge_scores(vec![0.1, 0.9, 0.5, 0.9]);
        assert_eq!(e.ranked_edges(), vec![1, 3, 2, 0]);
        assert_eq!(e.top_edges(2), vec![1, 3]);
    }

    #[test]
    fn layer_ranked_edges_per_layer() {
        let e = Explanation {
            edge_scores: vec![0.0, 0.0],
            layer_edge_scores: Some(vec![vec![0.1, 0.9, 0.5], vec![0.7, 0.2, 0.3]]),
            flows: None,
        };
        assert_eq!(e.layer_ranked_edges(0).unwrap(), vec![1, 2, 0]);
        assert_eq!(e.layer_ranked_edges(1).unwrap(), vec![0, 2, 1]);
        assert!(e.layer_ranked_edges(2).is_none());
        let plain = Explanation::from_edge_scores(vec![0.5]);
        assert!(plain.layer_ranked_edges(0).is_none());
    }

    #[test]
    fn flow_ranking() {
        let mut b = Graph::builder(2, 1);
        b.edge(0, 1);
        let mp = MpGraph::new(&b.build());
        let index = Arc::new(FlowIndex::build(&mp, 2, Target::Node(1), 100).unwrap());
        let scores: Vec<f32> = (0..index.num_flows()).map(|i| i as f32).collect();
        let fs = FlowScores { index, scores };
        let top = fs.top_k(2);
        assert_eq!(top[0].0, fs.index.num_flows() - 1);
    }

    #[test]
    fn aggregate_distributes_and_averages() {
        // 0 -> 1, 2-layer flows to node 1: 0→1→1, 0→0→1(?), 1→1→1 ...
        let mut b = Graph::builder(2, 1);
        b.edge(0, 1);
        let g = b.build();
        let mp = MpGraph::new(&g);
        let index = FlowIndex::build(&mp, 2, Target::Node(1), 100).unwrap();
        let scores = vec![1.0f32; index.num_flows()];
        let (layer_scores, edge_scores) = aggregate_flow_scores(&mp, &index, &scores);
        // Per layer, total mass = num_flows.
        for ls in &layer_scores {
            let total: f32 = ls.iter().sum();
            assert!((total - index.num_flows() as f32).abs() < 1e-5);
        }
        assert_eq!(edge_scores.len(), 1);
        assert!(edge_scores[0] > 0.0);
    }
}
