//! Serde-free binary encoding for the serving vocabulary.
//!
//! The network layer (`revelio-server`) speaks a hand-rolled little-endian
//! wire format; this module owns the byte-level primitives plus the codecs
//! for the types *this* crate defines — [`Degradation`], score vectors, and
//! the serialisable [`ControlSpec`] subset of [`ExplainControl`] — so the
//! wire representation of core vocabulary lives next to the vocabulary
//! itself. Everything is explicit and versioned by the frame protocol above
//! it; there is no reflection and no derive machinery.
//!
//! Decoding never trusts a length before checking it against the bytes that
//! are actually present, so a truncated or hostile buffer costs at most the
//! bytes received — never an unbounded allocation.
//!
//! [`ExplainControl`]: crate::ExplainControl

use std::fmt;

use crate::control::Degradation;

/// Error raised by [`WireReader`] when a buffer does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireDecodeError {
    /// The buffer ended before the announced content did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A field held a value its type forbids (bad enum tag, non-UTF-8
    /// string, inconsistent lengths, …).
    Invalid(&'static str),
    /// Decoding finished with unread bytes left over — the sender and
    /// receiver disagree about the message layout.
    TrailingBytes(usize),
}

impl fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireDecodeError::Truncated { needed, remaining } => write!(
                f,
                "truncated message: needed {needed} more bytes, {remaining} remaining"
            ),
            WireDecodeError::Invalid(what) => write!(f, "invalid field: {what}"),
            WireDecodeError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after a complete message")
            }
        }
    }
}

impl std::error::Error for WireDecodeError {}

// ---------------------------------------------------------------------------
// Writer primitives: plain functions appending to a Vec<u8>.
// ---------------------------------------------------------------------------

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f32` as its little-endian IEEE-754 bits (bit-exact: `NaN`
/// payloads and signed zeros survive the round trip).
pub fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a `bool` as one byte (`0` / `1`).
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends `Some(v)` as `1` + the value, `None` as `0`.
pub fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
        None => out.push(0),
    }
}

/// Appends a `u32` length prefix followed by each value's IEEE bits.
pub fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_f32(out, v);
    }
}

/// Appends a `u32` length prefix followed by the values.
pub fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_u32(out, v);
    }
}

/// Appends a `u16` length prefix followed by the UTF-8 bytes.
///
/// # Panics
///
/// Panics if `s` is longer than `u16::MAX` bytes; wire strings are short
/// identifiers (method names, error messages are truncated by callers).
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    assert!(s.len() <= u16::MAX as usize, "wire string too long");
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Reader: bounds-checked cursor over a received buffer.
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian cursor over a received byte buffer.
///
/// Every getter checks the remaining length first and returns
/// [`WireDecodeError::Truncated`] instead of panicking; length-prefixed
/// getters additionally verify the prefix against the remaining bytes
/// *before* allocating.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireDecodeError> {
        if self.remaining() < n {
            return Err(WireDecodeError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireDecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireDecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireDecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireDecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads an `f32` from its IEEE bits.
    pub fn f32(&mut self) -> Result<f32, WireDecodeError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads a `bool`; any byte other than `0`/`1` is invalid.
    pub fn bool(&mut self) -> Result<bool, WireDecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireDecodeError::Invalid("bool byte")),
        }
    }

    /// Reads an optional `u64` written by [`put_opt_u64`].
    pub fn opt_u64(&mut self) -> Result<Option<u64>, WireDecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(WireDecodeError::Invalid("option tag")),
        }
    }

    /// Reads a `u32`-prefixed `f32` vector, validating the prefix against
    /// the remaining bytes before allocating.
    pub fn f32s(&mut self) -> Result<Vec<f32>, WireDecodeError> {
        let n = self.u32()? as usize;
        let needed = n.checked_mul(4).ok_or(WireDecodeError::Invalid(
            "f32 vector length overflows usize",
        ))?;
        if self.remaining() < needed {
            return Err(WireDecodeError::Truncated {
                needed,
                remaining: self.remaining(),
            });
        }
        (0..n).map(|_| self.f32()).collect()
    }

    /// Reads a `u32`-prefixed `u32` vector, validating the prefix first.
    pub fn u32s(&mut self) -> Result<Vec<u32>, WireDecodeError> {
        let n = self.u32()? as usize;
        let needed = n.checked_mul(4).ok_or(WireDecodeError::Invalid(
            "u32 vector length overflows usize",
        ))?;
        if self.remaining() < needed {
            return Err(WireDecodeError::Truncated {
                needed,
                remaining: self.remaining(),
            });
        }
        (0..n).map(|_| self.u32()).collect()
    }

    /// Reads a `u16`-prefixed UTF-8 string written by [`put_str`].
    pub fn str(&mut self) -> Result<String, WireDecodeError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireDecodeError::Invalid("string is not UTF-8"))
    }

    /// Asserts the buffer is fully consumed (a layout-drift tripwire).
    pub fn expect_end(&self) -> Result<(), WireDecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireDecodeError::TrailingBytes(self.remaining()))
        }
    }
}

// ---------------------------------------------------------------------------
// Codecs for core vocabulary.
// ---------------------------------------------------------------------------

/// The serialisable subset of [`ExplainControl`]: what a *remote* caller can
/// ask for. The process-local parts (the cancel flag, the cached flow
/// index) are attached server-side; the deadline crosses the wire as a
/// relative budget because `Instant`s are meaningless across machines.
///
/// [`ExplainControl`]: crate::ExplainControl
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlSpec {
    /// Per-request latency budget in milliseconds (`None` = the server's
    /// default deadline).
    pub deadline_ms: Option<u64>,
    /// Flow-enumeration cap; oversized instances are shrunk (and the drop
    /// reported via [`Degradation::flows_dropped`]) when
    /// `shrink_on_overflow` is set.
    pub max_flows: u64,
    /// Degrade oversized instances instead of failing them.
    pub shrink_on_overflow: bool,
    /// Capture a structured execution trace for this request. The server
    /// attaches a ring-buffer collector to the job and stores the finished
    /// trace for later retrieval by trace ID; untraced requests pay only the
    /// runtime's always-on phase metrics.
    pub trace: bool,
    /// Ask the server to seed the mask optimisation from its persistent
    /// store (the newest converged mask for the same model/graph/target/L
    /// key, guarded by a model fingerprint). Off by default: a cold run is
    /// bit-identical to one against a server without a store.
    pub warm_start: bool,
}

impl Default for ControlSpec {
    fn default() -> Self {
        ControlSpec {
            deadline_ms: None,
            max_flows: 100_000,
            shrink_on_overflow: true,
            trace: false,
            warm_start: false,
        }
    }
}

impl ControlSpec {
    /// Appends the spec to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_opt_u64(out, self.deadline_ms);
        put_u64(out, self.max_flows);
        put_bool(out, self.shrink_on_overflow);
        put_bool(out, self.trace);
        put_bool(out, self.warm_start);
    }

    /// Reads a spec written by [`ControlSpec::encode`].
    pub fn decode(r: &mut WireReader<'_>) -> Result<ControlSpec, WireDecodeError> {
        Ok(ControlSpec {
            deadline_ms: r.opt_u64()?,
            max_flows: r.u64()?,
            shrink_on_overflow: r.bool()?,
            trace: r.bool()?,
            warm_start: r.bool()?,
        })
    }
}

impl Degradation {
    /// Appends the degradation record to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_bool(out, self.deadline_hit);
        put_u64(out, self.epochs_run as u64);
        put_u64(out, self.epochs_planned as u64);
        put_u64(out, self.flows_dropped);
    }

    /// Reads a record written by [`Degradation::encode`].
    pub fn decode(r: &mut WireReader<'_>) -> Result<Degradation, WireDecodeError> {
        Ok(Degradation {
            deadline_hit: r.bool()?,
            epochs_run: r.u64()? as usize,
            epochs_planned: r.u64()? as usize,
            flows_dropped: r.u64()?,
        })
    }
}

/// Appends a score vector (importance scores are just `f32`s, but the named
/// helper keeps call sites self-describing).
pub fn put_scores(out: &mut Vec<u8>, scores: &[f32]) {
    put_f32s(out, scores);
}

/// Reads a score vector written by [`put_scores`].
pub fn read_scores(r: &mut WireReader<'_>) -> Result<Vec<f32>, WireDecodeError> {
    r.f32s()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 513);
        put_u32(&mut buf, 70_000);
        put_u64(&mut buf, u64::MAX - 1);
        put_f32(&mut buf, -0.0);
        put_bool(&mut buf, true);
        put_opt_u64(&mut buf, None);
        put_opt_u64(&mut buf, Some(42));
        put_str(&mut buf, "REVELIO");
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8(), Ok(7));
        assert_eq!(r.u16(), Ok(513));
        assert_eq!(r.u32(), Ok(70_000));
        assert_eq!(r.u64(), Ok(u64::MAX - 1));
        assert_eq!(r.f32().map(f32::to_bits), Ok((-0.0f32).to_bits()));
        assert_eq!(r.bool(), Ok(true));
        assert_eq!(r.opt_u64(), Ok(None));
        assert_eq!(r.opt_u64(), Ok(Some(42)));
        assert_eq!(r.str().as_deref(), Ok("REVELIO"));
        assert_eq!(r.expect_end(), Ok(()));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 99);
        let mut r = WireReader::new(&buf[..5]);
        assert!(matches!(
            r.u64(),
            Err(WireDecodeError::Truncated {
                needed: 8,
                remaining: 5
            })
        ));
    }

    #[test]
    fn length_prefix_is_validated_before_allocation() {
        // Claims 2^31 floats but carries none: must fail fast.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX / 2);
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.f32s(), Err(WireDecodeError::Truncated { .. })));
    }

    #[test]
    fn nan_scores_survive_bit_exact() {
        let weird = f32::from_bits(0x7FC0_0001); // NaN with a payload
        let mut buf = Vec::new();
        put_scores(&mut buf, &[1.5, weird, f32::NEG_INFINITY]);
        let mut r = WireReader::new(&buf);
        let back = read_scores(&mut r).expect("decodes");
        assert_eq!(back.len(), 3);
        assert_eq!(back[0].to_bits(), 1.5f32.to_bits());
        assert_eq!(back[1].to_bits(), weird.to_bits());
        assert_eq!(back[2].to_bits(), f32::NEG_INFINITY.to_bits());
    }

    #[test]
    fn control_spec_and_degradation_round_trip() {
        let spec = ControlSpec {
            deadline_ms: Some(250),
            max_flows: 60_000,
            shrink_on_overflow: false,
            trace: true,
            warm_start: true,
        };
        let mut buf = Vec::new();
        spec.encode(&mut buf);
        let deg = Degradation {
            deadline_hit: true,
            epochs_run: 17,
            epochs_planned: 500,
            flows_dropped: 1234,
        };
        deg.encode(&mut buf);
        let mut r = WireReader::new(&buf);
        assert_eq!(ControlSpec::decode(&mut r), Ok(spec));
        assert_eq!(Degradation::decode(&mut r), Ok(deg));
        assert_eq!(r.expect_end(), Ok(()));
    }

    #[test]
    fn invalid_tags_are_rejected() {
        let mut r = WireReader::new(&[2]);
        assert_eq!(r.bool(), Err(WireDecodeError::Invalid("bool byte")));
        let mut r = WireReader::new(&[9, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(r.opt_u64(), Err(WireDecodeError::Invalid("option tag")));
        let mut r = WireReader::new(&[2, 0, 0xFF, 0xFE]);
        assert_eq!(
            r.str(),
            Err(WireDecodeError::Invalid("string is not UTF-8"))
        );
    }

    #[test]
    fn trailing_bytes_detected() {
        let buf = [1u8, 2, 3];
        let mut r = WireReader::new(&buf);
        let _ = r.u8();
        assert_eq!(r.expect_end(), Err(WireDecodeError::TrailingBytes(2)));
    }
}
