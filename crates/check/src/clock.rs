//! Vector clocks for happens-before tracking.
//!
//! Every model thread carries a [`VClock`]; synchronising operations
//! (mutex unlock → lock, release-store → acquire-load, spawn, join)
//! propagate clocks between threads. Two accesses are concurrent — and a
//! pair of conflicting accesses to a [`RaceCell`] is a data race — exactly
//! when neither access's clock is `≤` the other's.
//!
//! [`RaceCell`]: crate::shim::RaceCell

/// A grow-on-demand vector clock. Component `t` is the number of visible
/// operations thread `t` had performed when this clock was last
/// synchronised with `t`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> VClock {
        VClock(Vec::new())
    }

    /// Component `t` (0 when never synchronised with `t`).
    pub fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Advances this thread's own component by one (call once per visible
    /// operation of thread `t`).
    pub fn tick(&mut self, t: usize) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }

    /// Component-wise maximum: after `self.join(other)`, everything that
    /// happened-before `other` also happens-before `self`.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Sets component `t` to `v` (used for per-thread read epochs).
    pub fn set(&mut self, t: usize, v: u64) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    /// Whether some component `t ≠ skip` of `self` exceeds `other`'s —
    /// i.e. an access recorded in `self` is *not* ordered before `other`.
    pub fn exceeds_somewhere(&self, other: &VClock, skip: usize) -> bool {
        self.0
            .iter()
            .enumerate()
            .any(|(t, &v)| t != skip && v > other.get(t))
    }

    /// Whether every component of `self` is `≤` the matching component of
    /// `other` — i.e. `self` happens-before (or equals) `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(t, &v)| v <= other.get(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(3), 0);
        c.tick(3);
        c.tick(3);
        c.tick(0);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 1);
        assert_eq!(c.get(7), 0);
    }

    #[test]
    fn join_is_componentwise_max_and_le_orders() {
        let mut a = VClock::new();
        a.tick(0); // a = [1]
        let mut b = VClock::new();
        b.tick(1);
        b.tick(1); // b = [0, 2]
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut j = a.clone();
        j.join(&b);
        assert_eq!(j.get(0), 1);
        assert_eq!(j.get(1), 2);
        assert!(a.le(&j));
        assert!(b.le(&j));
        assert!(!j.le(&a));
    }
}
