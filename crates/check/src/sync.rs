//! The swappable sync facade.
//!
//! Crates that want to be model-checkable import their entire sync
//! vocabulary from here instead of `std::sync` / `std::thread`:
//!
//! ```rust
//! use revelio_check::sync::atomic::{AtomicU64, Ordering};
//! use revelio_check::sync::{mpsc, thread, Arc, Mutex};
//! ```
//!
//! * **Default build** (no features): every name is a re-export of the
//!   `std` item itself — not a wrapper, the *same type* — so the facade
//!   costs literally nothing. `tests/facade_std.rs` proves this at
//!   compile time with type-identity coercions.
//! * **`--features check`**: the same names resolve to the
//!   scheduler-routed [`shim`](crate::shim) types. Code that runs inside
//!   [`explore`](crate::explore) gets deterministic interleaving control
//!   and happens-before tracking; code outside a model falls back to
//!   plain `std` behaviour, so unrelated tests in a unified feature graph
//!   keep working.
//!
//! [`RaceCell`](crate::shim::RaceCell) is exported in both modes (as a
//! plain mutex-backed cell when unchecked) so model-only helpers compile
//! unconditionally.

pub use std::sync::Arc;

pub use crate::shim::RaceCell;

#[cfg(not(feature = "check"))]
pub use std::sync::{mpsc, Condvar, Mutex, MutexGuard};

#[cfg(feature = "check")]
pub use crate::shim::{mpsc, Condvar, Mutex, MutexGuard};

/// Atomic types (facade-switched) and `Ordering` (always `std`'s — the
/// shims interpret the caller's ordering via vector clocks).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(feature = "check"))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

    #[cfg(feature = "check")]
    pub use crate::shim::{AtomicBool, AtomicU64, AtomicUsize};
}

/// Thread spawn/join/yield (facade-switched).
pub mod thread {
    #[cfg(not(feature = "check"))]
    pub use std::thread::{sleep, spawn, yield_now, Builder, JoinHandle};

    #[cfg(feature = "check")]
    pub use crate::shim::{sleep, spawn, yield_now, Builder, JoinHandle};
}
