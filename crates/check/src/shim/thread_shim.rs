//! Scheduler-routed thread spawn/join.
//!
//! Model-mode spawns still create real OS threads (the baton discipline
//! means at most one runs at a time), registered as model threads whose
//! first and last operations are scheduling points. Spawn and join create
//! the usual happens-before edges: the child starts with the parent's
//! clock, and a join acquires the child's final clock.

use std::sync::Arc;

use crate::sched::{current, run_model_thread, Exec, Pending};

use super::ride;

/// Spawn result slot shared with the model child (panics leave it empty;
/// they are reported as model failures, and `join` surfaces an `Err` like
/// `std` would).
type ResultSlot<T> = Arc<std::sync::Mutex<Option<T>>>;

enum Imp<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<Exec>,
        child: usize,
        os: std::thread::JoinHandle<()>,
        result: ResultSlot<T>,
    },
}

/// Handle mirroring [`std::thread::JoinHandle`].
pub struct JoinHandle<T>(Imp<T>);

impl<T> JoinHandle<T> {
    /// Mirrors [`std::thread::JoinHandle::join`]. In model mode this is a
    /// visible operation enabled only once the child has exited, so a
    /// cyclic join is reported as a deadlock instead of hanging.
    ///
    /// # Errors
    ///
    /// Returns the panic payload (std mode) or a placeholder payload
    /// (model mode — the panic itself is reported as a model failure).
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Imp::Std(handle) => handle.join(),
            Imp::Model {
                exec,
                child,
                os,
                result,
            } => {
                if let Some((cur, tid)) = current() {
                    if Arc::ptr_eq(&cur, &exec) {
                        exec.visible(tid, Pending::Join { target: child }, |inner, tid| {
                            inner.join_finished(tid, child);
                        });
                    }
                }
                // The child needs no baton past its exit, so this never
                // blocks the schedule.
                let _ = os.join();
                match ride(&result).take() {
                    Some(value) => Ok(value),
                    None => Err(Box::new("model thread panicked".to_owned())),
                }
            }
        }
    }

    /// Mirrors [`std::thread::JoinHandle::is_finished`].
    pub fn is_finished(&self) -> bool {
        match &self.0 {
            Imp::Std(handle) => handle.is_finished(),
            Imp::Model { os, .. } => os.is_finished(),
        }
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JoinHandle")
    }
}

/// Mirrors [`std::thread::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match Builder::new().spawn(f) {
        Ok(handle) => handle,
        Err(e) => panic!("failed to spawn thread: {e}"),
    }
}

/// Mirrors [`std::thread::Builder`].
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Mirrors `std`'s constructor.
    pub fn new() -> Builder {
        Builder { name: None }
    }

    /// Mirrors [`std::thread::Builder::name`].
    #[must_use]
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Mirrors [`std::thread::Builder::spawn`].
    ///
    /// # Errors
    ///
    /// Propagates the OS spawn failure.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let mut builder = std::thread::Builder::new();
        if let Some(name) = self.name {
            builder = builder.name(name);
        }
        match current() {
            Some((exec, parent)) => {
                let child = exec.spawn_child(parent);
                let result: ResultSlot<T> = Arc::new(std::sync::Mutex::new(None));
                let slot = Arc::clone(&result);
                let exec2 = Arc::clone(&exec);
                let os = builder.spawn(move || {
                    run_model_thread(&exec2, child, move || {
                        let value = f();
                        *ride(&slot) = Some(value);
                    });
                })?;
                Ok(JoinHandle(Imp::Model {
                    exec,
                    child,
                    os,
                    result,
                }))
            }
            None => builder.spawn(f).map(|h| JoinHandle(Imp::Std(h))),
        }
    }
}

/// Mirrors [`std::thread::yield_now`]; in model mode this is a pure
/// re-scheduling point (a cheap way to add an interleaving opportunity).
pub fn yield_now() {
    match current() {
        Some((exec, tid)) => {
            exec.visible(tid, Pending::Yield, |_, _| {});
        }
        None => std::thread::yield_now(),
    }
}

/// Mirrors [`std::thread::sleep`]; in model mode time is meaningless, so
/// this degrades to a single yield (documented in DESIGN §11).
pub fn sleep(duration: std::time::Duration) {
    match current() {
        Some((exec, tid)) => {
            exec.visible(tid, Pending::Yield, |_, _| {});
        }
        None => std::thread::sleep(duration),
    }
}
