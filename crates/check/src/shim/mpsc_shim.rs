//! Scheduler-routed unbounded mpsc channel.
//!
//! Values queue in a real `std` mutex-protected deque; the scheduler
//! tracks occupancy and endpoint liveness, so a `recv` is simply *not
//! enabled* until a message exists or every sender is gone — blocking
//! needs no retry loops and contributes no wasted schedule branches. A
//! single coarse per-channel vector clock makes every send happen-before
//! every subsequent receive (slightly stronger than per-message clocks;
//! extra happens-before edges can only suppress false races, never
//! invent one).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{RecvError, SendError, TryRecvError};
use std::sync::Arc;

use crate::clock::VClock;
use crate::sched::{Object, Pending, TryOutcome};

use super::{ride, ObjToken};

struct ChanState<T> {
    queue: std::sync::Mutex<VecDeque<T>>,
    /// Fallback-mode blocking (model mode parks via the scheduler).
    cv: std::sync::Condvar,
    /// Fallback-mode endpoint liveness (the scheduler keeps its own).
    senders: AtomicUsize,
    rx_alive: AtomicBool,
    token: Option<ObjToken>,
}

/// Creates an unbounded channel, mirroring [`std::sync::mpsc::channel`].
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let state = Arc::new(ChanState {
        queue: std::sync::Mutex::new(VecDeque::new()),
        cv: std::sync::Condvar::new(),
        senders: AtomicUsize::new(1),
        rx_alive: AtomicBool::new(true),
        token: ObjToken::register(Object::Channel {
            len: 0,
            senders: 1,
            rx_alive: true,
            clock: VClock::new(),
        }),
    });
    (
        Sender {
            state: Arc::clone(&state),
        },
        Receiver { state },
    )
}

/// Sending half, mirroring [`std::sync::mpsc::Sender`].
pub struct Sender<T> {
    state: Arc<ChanState<T>>,
}

impl<T> Sender<T> {
    /// Mirrors [`std::sync::mpsc::Sender::send`].
    ///
    /// # Errors
    ///
    /// Returns the value back when the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match self.state.token.as_ref().and_then(ObjToken::engage) {
            Some((exec, tid, obj)) => {
                let rejected = exec.visible(tid, Pending::ChanSend { obj }, |inner, tid| {
                    if inner.chan_send(tid, obj) {
                        ride(&self.state.queue).push_back(value);
                        None
                    } else {
                        Some(value)
                    }
                });
                match rejected {
                    None => Ok(()),
                    Some(value) => Err(SendError(value)),
                }
            }
            None => {
                if !self.state.rx_alive.load(Ordering::SeqCst) {
                    return Err(SendError(value));
                }
                ride(&self.state.queue).push_back(value);
                self.state.cv.notify_one();
                Ok(())
            }
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.state.senders.fetch_add(1, Ordering::SeqCst);
        if let Some((exec, tid, obj)) = self.state.token.as_ref().and_then(ObjToken::engage) {
            exec.visible(tid, Pending::ChanEndpoint { obj }, |inner, _| {
                inner.chan_sender_delta(obj, 1);
            });
        }
        Sender {
            state: Arc::clone(&self.state),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let last = self.state.senders.fetch_sub(1, Ordering::SeqCst) == 1;
        if let Some((exec, tid, obj)) = self.state.token.as_ref().and_then(ObjToken::engage) {
            exec.visible(tid, Pending::ChanEndpoint { obj }, |inner, _| {
                inner.chan_sender_delta(obj, -1);
            });
        } else if last {
            // Fence against a receiver between its emptiness check and its
            // wait, then wake it to observe the disconnect.
            drop(ride(&self.state.queue));
            self.state.cv.notify_all();
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender")
    }
}

/// Receiving half, mirroring [`std::sync::mpsc::Receiver`].
pub struct Receiver<T> {
    state: Arc<ChanState<T>>,
}

impl<T> Receiver<T> {
    /// Mirrors [`std::sync::mpsc::Receiver::recv`].
    ///
    /// # Errors
    ///
    /// Fails once the channel is drained and every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        match self.state.token.as_ref().and_then(ObjToken::engage) {
            Some((exec, tid, obj)) => {
                let popped = exec.visible(tid, Pending::ChanRecv { obj }, |inner, tid| {
                    inner.chan_recv(tid, obj)
                });
                if popped {
                    ride(&self.state.queue).pop_front().ok_or(RecvError)
                } else {
                    Err(RecvError)
                }
            }
            None => {
                let mut queue = ride(&self.state.queue);
                loop {
                    if let Some(value) = queue.pop_front() {
                        return Ok(value);
                    }
                    if self.state.senders.load(Ordering::SeqCst) == 0 {
                        return Err(RecvError);
                    }
                    queue = match self.state.cv.wait(queue) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            }
        }
    }

    /// Mirrors [`std::sync::mpsc::Receiver::try_recv`].
    ///
    /// # Errors
    ///
    /// `Empty` when no message is queued, `Disconnected` once drained with
    /// no senders left.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        match self.state.token.as_ref().and_then(ObjToken::engage) {
            Some((exec, tid, obj)) => {
                let outcome = exec.visible(tid, Pending::ChanTryRecv { obj }, |inner, tid| {
                    inner.chan_try_recv(tid, obj)
                });
                match outcome {
                    TryOutcome::Popped => ride(&self.state.queue)
                        .pop_front()
                        .ok_or(TryRecvError::Empty),
                    TryOutcome::Empty => Err(TryRecvError::Empty),
                    TryOutcome::Disconnected => Err(TryRecvError::Disconnected),
                }
            }
            None => {
                let mut queue = ride(&self.state.queue);
                match queue.pop_front() {
                    Some(value) => Ok(value),
                    None if self.state.senders.load(Ordering::SeqCst) == 0 => {
                        Err(TryRecvError::Disconnected)
                    }
                    None => Err(TryRecvError::Empty),
                }
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.state.rx_alive.store(false, Ordering::SeqCst);
        if let Some((exec, tid, obj)) = self.state.token.as_ref().and_then(ObjToken::engage) {
            exec.visible(tid, Pending::ChanEndpoint { obj }, |inner, _| {
                inner.chan_rx_closed(obj);
            });
        }
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver")
    }
}
