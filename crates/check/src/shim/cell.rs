//! [`RaceCell`]: plain shared data with FastTrack-style race detection.
//!
//! In real code, unsynchronized shared mutation is undefined behaviour;
//! the workspace forbids `unsafe`, so nothing in production can create
//! one. `RaceCell` exists for *models*: it stands in for "a plain field
//! two threads touch" so the checker can prove (via vector clocks)
//! whether every conflicting access pair is ordered by happens-before.
//! Outside a model it degrades to a mutex-protected value with no
//! detection.

use crate::clock::VClock;
use crate::sched::{Object, Pending};

use super::{ride, ObjToken};

/// Shared data whose accesses are checked for data races in model mode.
pub struct RaceCell<T> {
    value: std::sync::Mutex<T>,
    token: Option<ObjToken>,
}

impl<T: Copy> RaceCell<T> {
    /// Creates a cell; `label` names it in race reports.
    pub fn new(label: &'static str, value: T) -> RaceCell<T> {
        RaceCell {
            value: std::sync::Mutex::new(value),
            token: ObjToken::register(Object::Cell {
                label,
                write: None,
                reads: VClock::new(),
            }),
        }
    }

    /// Reads the value; a visible operation that races with any
    /// concurrent (unordered) write.
    pub fn get(&self) -> T {
        match self.token.as_ref().and_then(ObjToken::engage) {
            Some((exec, tid, obj)) => exec.visible(tid, Pending::CellRead { obj }, |inner, tid| {
                inner.cell_read(tid, obj);
                *ride(&self.value)
            }),
            None => *ride(&self.value),
        }
    }

    /// Writes the value; a visible operation that races with any
    /// concurrent (unordered) read or write.
    pub fn set(&self, value: T) {
        match self.token.as_ref().and_then(ObjToken::engage) {
            Some((exec, tid, obj)) => {
                exec.visible(tid, Pending::CellWrite { obj }, |inner, tid| {
                    inner.cell_write(tid, obj);
                    *ride(&self.value) = value;
                });
            }
            None => *ride(&self.value) = value,
        }
    }

    /// Read-modify-write as a read step followed by a write step (so an
    /// interleaved remote write is a detectable lost update, exactly like
    /// a `load`/`store` pair on a plain field).
    pub fn update(&self, f: impl FnOnce(T) -> T) {
        let current = self.get();
        self.set(f(current));
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for RaceCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RaceCell")
            .field(&*ride(&self.value))
            .finish()
    }
}
