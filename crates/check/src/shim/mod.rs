//! Scheduler-routed shim implementations of the sync vocabulary.
//!
//! Each type mirrors its `std::sync` counterpart's API closely enough
//! that the facade can swap them in by re-export. Every operation first
//! checks whether the calling OS thread is a registered model thread of a
//! live exploration *and* the object was created inside that same
//! exploration; if so the operation becomes a scheduler-visible step
//! (deterministic interleaving, happens-before tracking), otherwise it
//! falls back to the plain `std` behaviour. The fallback is what keeps a
//! `--features check` build of unrelated test suites working: code that
//! never enters [`explore`](crate::sched::explore) behaves exactly as it
//! would on `std`, just a thread-local lookup slower.
//!
//! Values are always stored in real `std` primitives (the workspace
//! forbids `unsafe`, so there is no `UnsafeCell` trickery): the model's
//! baton discipline means those never contend during checking.

mod atomic;
mod cell;
mod mpsc_shim;
mod mutex;
mod thread_shim;

pub use atomic::{AtomicBool, AtomicU64, AtomicUsize};
pub use cell::RaceCell;
pub use mutex::{Condvar, Mutex, MutexGuard};
pub use thread_shim::{sleep, spawn, yield_now, Builder, JoinHandle};

/// Shim `mpsc` namespace (module re-exported by the facade).
pub mod mpsc {
    pub use super::mpsc_shim::{channel, Receiver, Sender};
    // The error types are `std`'s own (publicly constructible), so shim
    // and std signatures stay interchangeable.
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};
}

use std::sync::{Arc, Weak};

use crate::sched::{current, Exec, Object};

/// Locks a real `std` mutex, riding out poisoning (shim internals are
/// consistent even after a model-thread panic: every mutation is a whole
/// value or a whole queue node).
pub(crate) fn ride<T: ?Sized>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Ties a shim object to the exploration it was created in. Objects
/// created outside a model (or used from a different execution) have no
/// engaged token and fall back to `std` semantics.
pub(crate) struct ObjToken {
    exec: Weak<Exec>,
    obj: usize,
}

impl ObjToken {
    /// Registers `object` with the calling thread's live exploration, if
    /// there is one.
    pub(crate) fn register(object: Object) -> Option<ObjToken> {
        current().map(|(exec, _)| {
            let obj = exec.register(object);
            ObjToken {
                exec: Arc::downgrade(&exec),
                obj,
            }
        })
    }

    /// The `(execution, model thread, object id)` triple when the calling
    /// thread belongs to the same live exploration this object was
    /// registered in.
    pub(crate) fn engage(&self) -> Option<(Arc<Exec>, usize, usize)> {
        let (cur, tid) = current()?;
        let exec = self.exec.upgrade()?;
        if Arc::ptr_eq(&cur, &exec) {
            Some((exec, tid, self.obj))
        } else {
            None
        }
    }
}

impl std::fmt::Debug for ObjToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObjToken(#{})", self.obj)
    }
}
