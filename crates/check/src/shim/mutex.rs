//! Scheduler-routed `Mutex` and `Condvar`.
//!
//! The value always lives in a real [`std::sync::Mutex`]; in model mode
//! the *scheduler* decides who may acquire (a `MutexLock` pending op is
//! enabled only while the scheduler-side holder is `None`), so the real
//! lock is uncontended by construction and acquisition order is exactly
//! the explored schedule. Condvar waits are modelled without spurious
//! wakeups (an under-approximation of `std`, documented in DESIGN §11):
//! the release-and-enqueue is a single visible step, so the model can
//! still exhibit — and the checker can still catch — genuine lost-wakeup
//! bugs where a notify lands *before* the wait begins.

use std::sync::{LockResult, PoisonError};

use crate::clock::VClock;
use crate::sched::{Object, Pending};

use super::{ride, ObjToken};

/// Scheduler-routed [`std::sync::Mutex`].
pub struct Mutex<T: ?Sized> {
    token: Option<ObjToken>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Mirrors `std`'s constructor.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            token: ObjToken::register(Object::Mutex {
                holder: None,
                clock: VClock::new(),
            }),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Mirrors [`std::sync::Mutex::into_inner`].
    ///
    /// # Errors
    ///
    /// Propagates `std` poisoning in fallback mode (model mode never
    /// poisons: panics surface as model failures instead).
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Mirrors [`std::sync::Mutex::lock`].
    ///
    /// # Errors
    ///
    /// Propagates `std` poisoning in fallback mode.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match self.token.as_ref().and_then(ObjToken::engage) {
            Some((exec, tid, obj)) => {
                exec.visible(tid, Pending::MutexLock { obj }, |inner, tid| {
                    inner.mutex_acquired(tid, obj);
                });
                // Uncontended except in abandoned (free-running) executions,
                // where blocking briefly on the real lock is harmless.
                let guard = ride(&self.inner);
                Ok(MutexGuard {
                    inner: Some(guard),
                    lock: self,
                })
            }
            None => match self.inner.lock() {
                Ok(guard) => Ok(MutexGuard {
                    inner: Some(guard),
                    lock: self,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    inner: Some(poisoned.into_inner()),
                    lock: self,
                })),
            },
        }
    }

    /// Mirrors [`std::sync::Mutex::get_mut`].
    ///
    /// # Errors
    ///
    /// Propagates `std` poisoning in fallback mode.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

/// Guard for [`Mutex`]; releasing it is a visible scheduling step in
/// model mode.
pub struct MutexGuard<'a, T: ?Sized> {
    /// `None` once defused (taken by `Condvar::wait`'s re-lock protocol);
    /// a defused guard's drop performs no visible unlock.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard defused while borrowed")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard defused while borrowed")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(guard) = self.inner.take() {
            // Release the real lock *before* the visible unlock: the
            // scheduler only grants the next `MutexLock` after the visible
            // unlock runs, so no model thread ever contends on the real
            // lock while holding the baton.
            drop(guard);
            if let Some((exec, tid, obj)) = self.lock.token.as_ref().and_then(ObjToken::engage) {
                exec.visible(tid, Pending::MutexUnlock { obj }, |inner, tid| {
                    inner.mutex_released(tid, obj);
                });
            }
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(guard) => std::fmt::Debug::fmt(&**guard, f),
            None => f.write_str("MutexGuard(defused)"),
        }
    }
}

/// Scheduler-routed [`std::sync::Condvar`].
pub struct Condvar {
    token: Option<ObjToken>,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Mirrors `std`'s constructor.
    pub fn new() -> Condvar {
        Condvar {
            token: ObjToken::register(Object::Condvar {
                waiters: std::collections::VecDeque::new(),
                notified: Vec::new(),
            }),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Mirrors [`std::sync::Condvar::wait`]. In model mode the
    /// release-and-park is one visible step (no window for a lost wakeup
    /// that `std` would not also have), and the model never wakes
    /// spuriously.
    ///
    /// # Errors
    ///
    /// Propagates `std` poisoning in fallback mode.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        let cv_ctx = self.token.as_ref().and_then(ObjToken::engage);
        let mx_ctx = lock.token.as_ref().and_then(ObjToken::engage);
        let real = guard.inner.take();
        drop(guard); // defused: no visible unlock
        match (cv_ctx, mx_ctx) {
            (Some((exec, tid, cv)), Some((_, _, mx))) => {
                drop(real);
                exec.visible(tid, Pending::CvWait { cv, mutex: mx }, |inner, tid| {
                    inner.cv_enqueue(tid, cv);
                    inner.mutex_released(tid, mx);
                });
                exec.visible(tid, Pending::CvBlocked { cv }, |inner, tid| {
                    inner.cv_unpark(tid, cv);
                });
                exec.visible(tid, Pending::MutexLock { obj: mx }, |inner, tid| {
                    inner.mutex_acquired(tid, mx);
                });
                Ok(MutexGuard {
                    inner: Some(ride(&lock.inner)),
                    lock,
                })
            }
            _ => {
                let real = real.expect("guard holds the lock");
                match self.inner.wait(real) {
                    Ok(g) => Ok(MutexGuard {
                        inner: Some(g),
                        lock,
                    }),
                    Err(poisoned) => Err(PoisonError::new(MutexGuard {
                        inner: Some(poisoned.into_inner()),
                        lock,
                    })),
                }
            }
        }
    }

    /// Mirrors [`std::sync::Condvar::wait_while`].
    ///
    /// # Errors
    ///
    /// Propagates `std` poisoning in fallback mode.
    pub fn wait_while<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) -> LockResult<MutexGuard<'a, T>> {
        while condition(&mut *guard) {
            guard = self.wait(guard)?;
        }
        Ok(guard)
    }

    /// Mirrors [`std::sync::Condvar::notify_one`].
    pub fn notify_one(&self) {
        match self.token.as_ref().and_then(ObjToken::engage) {
            Some((exec, tid, cv)) => {
                exec.visible(tid, Pending::CvNotify { cv, all: false }, |inner, _| {
                    inner.cv_notify(cv, false);
                });
            }
            None => self.inner.notify_one(),
        }
    }

    /// Mirrors [`std::sync::Condvar::notify_all`].
    pub fn notify_all(&self) {
        match self.token.as_ref().and_then(ObjToken::engage) {
            Some((exec, tid, cv)) => {
                exec.visible(tid, Pending::CvNotify { cv, all: true }, |inner, _| {
                    inner.cv_notify(cv, true);
                });
            }
            None => self.inner.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}
