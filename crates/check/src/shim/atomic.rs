//! Scheduler-routed atomics. Every operation is one visible step; the
//! value itself lives in a real `std` atomic (accessed `SeqCst`
//! internally — the baton serialises model accesses, so the internal
//! ordering is irrelevant to the modelled semantics, which are derived
//! from the *caller's* `Ordering` via vector clocks).

use std::sync::atomic::Ordering;

use crate::clock::VClock;
use crate::sched::{Object, Pending};

use super::ObjToken;

macro_rules! shim_int_atomic {
    ($(#[$doc:meta])* $Name:ident, $Std:ty, $Prim:ty) => {
        $(#[$doc])*
        pub struct $Name {
            value: $Std,
            token: Option<ObjToken>,
        }

        impl $Name {
            /// Mirrors `std`'s constructor; additionally registers the
            /// location with the live exploration, if any.
            pub fn new(v: $Prim) -> $Name {
                $Name {
                    value: <$Std>::new(v),
                    token: ObjToken::register(Object::Atomic { release: VClock::new() }),
                }
            }

            /// Mirrors [`std::sync::atomic`]'s `load`.
            pub fn load(&self, ord: Ordering) -> $Prim {
                match self.token.as_ref().and_then(ObjToken::engage) {
                    Some((exec, tid, obj)) => {
                        exec.visible(tid, Pending::AtomicLoad { obj, ord }, |inner, tid| {
                            inner.hb_atomic_load(tid, obj, ord);
                            self.value.load(Ordering::SeqCst)
                        })
                    }
                    None => self.value.load(ord),
                }
            }

            /// Mirrors [`std::sync::atomic`]'s `store`.
            pub fn store(&self, v: $Prim, ord: Ordering) {
                match self.token.as_ref().and_then(ObjToken::engage) {
                    Some((exec, tid, obj)) => {
                        exec.visible(tid, Pending::AtomicStore { obj, ord }, |inner, tid| {
                            inner.hb_atomic_store(tid, obj, ord);
                            self.value.store(v, Ordering::SeqCst);
                        });
                    }
                    None => self.value.store(v, ord),
                }
            }

            /// Mirrors [`std::sync::atomic`]'s `swap`.
            pub fn swap(&self, v: $Prim, ord: Ordering) -> $Prim {
                self.rmw(ord, |value| value.swap(v, Ordering::SeqCst), |value| value.swap(v, ord))
            }

            /// Mirrors [`std::sync::atomic`]'s `fetch_add`.
            pub fn fetch_add(&self, v: $Prim, ord: Ordering) -> $Prim {
                self.rmw(
                    ord,
                    |value| value.fetch_add(v, Ordering::SeqCst),
                    |value| value.fetch_add(v, ord),
                )
            }

            /// Mirrors [`std::sync::atomic`]'s `fetch_sub`.
            pub fn fetch_sub(&self, v: $Prim, ord: Ordering) -> $Prim {
                self.rmw(
                    ord,
                    |value| value.fetch_sub(v, Ordering::SeqCst),
                    |value| value.fetch_sub(v, ord),
                )
            }

            /// Mirrors [`std::sync::atomic`]'s `fetch_max`.
            pub fn fetch_max(&self, v: $Prim, ord: Ordering) -> $Prim {
                self.rmw(
                    ord,
                    |value| value.fetch_max(v, Ordering::SeqCst),
                    |value| value.fetch_max(v, ord),
                )
            }

            /// Mirrors [`std::sync::atomic`]'s `compare_exchange` (both
            /// orderings are folded into the success ordering for
            /// happens-before purposes — the conservative direction).
            pub fn compare_exchange(
                &self,
                expected: $Prim,
                new: $Prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$Prim, $Prim> {
                self.rmw(
                    success,
                    |value| value.compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst),
                    |value| value.compare_exchange(expected, new, success, failure),
                )
            }

            fn rmw<R>(
                &self,
                ord: Ordering,
                model: impl FnOnce(&$Std) -> R,
                fallback: impl FnOnce(&$Std) -> R,
            ) -> R {
                match self.token.as_ref().and_then(ObjToken::engage) {
                    Some((exec, tid, obj)) => {
                        exec.visible(tid, Pending::AtomicRmw { obj, ord }, |inner, tid| {
                            inner.hb_atomic_rmw(tid, obj, ord);
                            model(&self.value)
                        })
                    }
                    None => fallback(&self.value),
                }
            }
        }

        impl Default for $Name {
            fn default() -> $Name {
                $Name::new(0)
            }
        }

        impl std::fmt::Debug for $Name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($Name))
                    .field(&self.value.load(Ordering::SeqCst))
                    .finish()
            }
        }
    };
}

shim_int_atomic!(
    /// Scheduler-routed [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
shim_int_atomic!(
    /// Scheduler-routed [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);

/// Scheduler-routed [`std::sync::atomic::AtomicBool`].
pub struct AtomicBool {
    value: std::sync::atomic::AtomicBool,
    token: Option<ObjToken>,
}

impl AtomicBool {
    /// Mirrors `std`'s constructor.
    pub fn new(v: bool) -> AtomicBool {
        AtomicBool {
            value: std::sync::atomic::AtomicBool::new(v),
            token: ObjToken::register(Object::Atomic {
                release: VClock::new(),
            }),
        }
    }

    /// Mirrors [`std::sync::atomic::AtomicBool::load`].
    pub fn load(&self, ord: Ordering) -> bool {
        match self.token.as_ref().and_then(ObjToken::engage) {
            Some((exec, tid, obj)) => {
                exec.visible(tid, Pending::AtomicLoad { obj, ord }, |inner, tid| {
                    inner.hb_atomic_load(tid, obj, ord);
                    self.value.load(Ordering::SeqCst)
                })
            }
            None => self.value.load(ord),
        }
    }

    /// Mirrors [`std::sync::atomic::AtomicBool::store`].
    pub fn store(&self, v: bool, ord: Ordering) {
        match self.token.as_ref().and_then(ObjToken::engage) {
            Some((exec, tid, obj)) => {
                exec.visible(tid, Pending::AtomicStore { obj, ord }, |inner, tid| {
                    inner.hb_atomic_store(tid, obj, ord);
                    self.value.store(v, Ordering::SeqCst);
                });
            }
            None => self.value.store(v, ord),
        }
    }

    /// Mirrors [`std::sync::atomic::AtomicBool::swap`].
    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        match self.token.as_ref().and_then(ObjToken::engage) {
            Some((exec, tid, obj)) => {
                exec.visible(tid, Pending::AtomicRmw { obj, ord }, |inner, tid| {
                    inner.hb_atomic_rmw(tid, obj, ord);
                    self.value.swap(v, Ordering::SeqCst)
                })
            }
            None => self.value.swap(v, ord),
        }
    }
}

impl Default for AtomicBool {
    fn default() -> AtomicBool {
        AtomicBool::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&self.value.load(Ordering::SeqCst))
            .finish()
    }
}
