//! The deterministic scheduler: bounded exhaustive DFS over thread
//! interleavings.
//!
//! # Execution model
//!
//! A *model* is a closure that spawns threads through the
//! [`shim`](crate::shim) sync types. The scheduler serialises the model:
//! exactly one model thread runs at a time, and control can change hands
//! only at *visible operations* (atomic access, lock/unlock, channel
//! send/recv, spawn/join/yield). At each visible operation the running
//! thread publishes what it is about to do, hands the baton to the
//! scheduler, and the scheduler grants it to one of the threads whose
//! pending operation is *enabled* (a lock acquisition is enabled only when
//! the mutex is free, a receive only when the channel has a message or no
//! senders, a join only when the target has exited). Because every visible
//! operation is performed while holding the baton, an execution is fully
//! determined by the sequence of scheduling choices — the [`Schedule`].
//!
//! # Exploration
//!
//! [`explore`] runs the model repeatedly. In DFS mode it backtracks over
//! the recorded choice points (last choice with an untried alternative,
//! replay the prefix, branch) until the bounded space is exhausted; the
//! *preemption bound* caps how many times a schedule may switch away from
//! a thread that could have kept running (unforced context switches),
//! which is the classic iterative-context-bounding trick: almost all real
//! concurrency bugs manifest within one or two preemptions, and the bound
//! turns an exponential space into a small polynomial one. In random mode
//! a seeded PRNG picks among enabled threads; the same seed always
//! produces the same schedules. Either way a failing execution reports its
//! [`Schedule`], and [`replay`] re-runs exactly that interleaving.
//!
//! # What counts as a failure
//!
//! * a panic in any model thread (assertion failures in the model body);
//! * a deadlock: live threads, none enabled;
//! * a data race on a [`RaceCell`](crate::shim::RaceCell), detected with
//!   vector-clock happens-before tracking (mutexes, acquire/release
//!   atomics, channels, and spawn/join all create happens-before edges;
//!   `Relaxed` atomics deliberately do not);
//! * blowing the per-execution step budget (runaway loop under some
//!   schedule).
//!
//! Interleavings are explored under sequential consistency: the checker
//! finds lost updates, torn multi-field snapshots, deadlocks, and
//! HB races, but does not model weak-memory reordering of `Relaxed`
//! accesses — that gap is covered by the `Ordering::Relaxed` source lint
//! in `revelio-analysis` and by the Miri CI job.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::clock::VClock;

/// How [`explore`] walks the schedule space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Bounded exhaustive depth-first search with backtracking (the
    /// default). Deterministic: the same model and config always visit
    /// schedules in the same order.
    Dfs,
    /// `iterations` independent executions driven by a SplitMix64 PRNG
    /// seeded from `seed` (execution `i` uses `mix(seed, i)`), for models
    /// whose full space is too large. Same seed → same schedules.
    Random {
        /// Base seed; every derived schedule is a pure function of it.
        seed: u64,
        /// Number of executions to sample.
        iterations: usize,
    },
}

/// Exploration limits and strategy.
#[derive(Debug, Clone)]
pub struct Config {
    /// Search strategy.
    pub mode: Mode,
    /// Maximum unforced context switches per schedule (`None` =
    /// unbounded). A switch is *forced* (not counted) when the previously
    /// running thread blocked.
    pub preemption_bound: Option<usize>,
    /// Hard cap on executions; exceeded ⇒ [`Report::complete`] is `false`.
    pub max_executions: usize,
    /// Visible-operation budget per execution; exceeded ⇒
    /// [`FailureKind::StepLimit`].
    pub max_steps: usize,
    /// Wall-clock budget for the whole exploration (`None` = uncapped;
    /// CI wraps the test run in an external cap as well).
    pub max_time: Option<Duration>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            mode: Mode::Dfs,
            preemption_bound: Some(2),
            max_executions: 100_000,
            max_steps: 20_000,
            max_time: None,
        }
    }
}

impl Config {
    /// Unbounded-preemption exhaustive DFS (use only for tiny models).
    pub fn exhaustive() -> Config {
        Config {
            preemption_bound: None,
            ..Config::default()
        }
    }

    /// DFS with the given preemption bound.
    pub fn bounded(preemptions: usize) -> Config {
        Config {
            preemption_bound: Some(preemptions),
            ..Config::default()
        }
    }

    /// Seeded random exploration.
    pub fn random(seed: u64, iterations: usize) -> Config {
        Config {
            mode: Mode::Random { seed, iterations },
            preemption_bound: None,
            ..Config::default()
        }
    }
}

/// One complete scheduling decision sequence: the thread id granted at
/// each choice point. Replayable via [`replay`]; renders as
/// `"0.1.1.0"` for pinning in regression tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule(pub Vec<usize>);

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for t in &self.0 {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{t}")?;
            first = false;
        }
        Ok(())
    }
}

impl std::str::FromStr for Schedule {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Schedule, Self::Err> {
        if s.is_empty() {
            return Ok(Schedule(Vec::new()));
        }
        s.split('.')
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map(Schedule)
    }
}

/// Why an execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure); carries the panic
    /// message.
    Panic(String),
    /// Live threads, none enabled; carries `(thread, pending op)` for each
    /// blocked thread.
    Deadlock(Vec<(usize, String)>),
    /// Two conflicting `RaceCell` accesses with no happens-before edge;
    /// carries the cell's label.
    DataRace(String),
    /// The execution exceeded [`Config::max_steps`] visible operations.
    StepLimit,
    /// A pinned schedule requested a thread that was not enabled at that
    /// point — the model changed since the schedule was recorded.
    ReplayDiverged {
        /// Choice index at which the divergence was detected.
        step: usize,
    },
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panic(msg) => write!(f, "panic: {msg}"),
            FailureKind::Deadlock(blocked) => {
                write!(f, "deadlock:")?;
                for (t, op) in blocked {
                    write!(f, " [thread {t} blocked on {op}]")?;
                }
                Ok(())
            }
            FailureKind::DataRace(cell) => write!(f, "data race on {cell}"),
            FailureKind::StepLimit => write!(f, "step limit exceeded"),
            FailureKind::ReplayDiverged { step } => {
                write!(f, "pinned schedule diverged at choice {step}")
            }
        }
    }
}

/// One failing execution: what went wrong and the exact schedule that
/// makes it happen again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The defect class.
    pub kind: FailureKind,
    /// The scheduling decisions up to (and including) the failure point;
    /// feed to [`replay`] to reproduce deterministically.
    pub schedule: Schedule,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} under schedule \"{}\"", self.kind, self.schedule)
    }
}

/// The outcome of an [`explore`] run.
#[derive(Debug)]
pub struct Report {
    /// Executions actually run.
    pub executions: usize,
    /// `true` iff DFS exhausted every schedule within the configured
    /// bounds without failing (random mode never claims completeness).
    pub complete: bool,
    /// The first failure found, if any (exploration stops at the first).
    pub failure: Option<Failure>,
    /// The longest execution seen, in visible operations.
    pub max_steps_seen: usize,
}

impl Report {
    /// Panics (with the failing schedule) unless the exploration found no
    /// failure.
    ///
    /// # Panics
    ///
    /// Panics if a failure was recorded.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model checking failed after {} execution(s): {f}",
                self.executions
            );
        }
    }

    /// Returns the failure, panicking if the model checked clean — for
    /// seeded-defect tests that *require* the checker to flag something.
    ///
    /// # Panics
    ///
    /// Panics if no failure was recorded.
    pub fn expect_failure(&self) -> &Failure {
        match &self.failure {
            Some(f) => f,
            None => panic!(
                "expected the checker to flag a defect, but {} execution(s) passed (complete={})",
                self.executions, self.complete
            ),
        }
    }
}

/// What a thread is about to do at a scheduling point. The scheduler uses
/// this to compute enabledness — a thread whose pending operation cannot
/// complete is simply never granted, so blocking needs no retry loops and
/// wastes no schedule branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pending {
    /// First grant after spawn.
    Start,
    /// Explicit yield (re-schedule point with no effect).
    Yield,
    /// Atomic load / store / read-modify-write on object `obj`.
    AtomicLoad { obj: usize, ord: Ordering },
    /// See [`Pending::AtomicLoad`].
    AtomicStore { obj: usize, ord: Ordering },
    /// See [`Pending::AtomicLoad`].
    AtomicRmw { obj: usize, ord: Ordering },
    /// Acquire `obj`; enabled only while unheld.
    MutexLock { obj: usize },
    /// Release `obj`.
    MutexUnlock { obj: usize },
    /// Atomically release `mutex` and enqueue on `cv`.
    CvWait { cv: usize, mutex: usize },
    /// Parked on `cv`; enabled once notified.
    CvBlocked { cv: usize },
    /// Notify one/all waiters of `cv`.
    CvNotify { cv: usize, all: bool },
    /// Push into channel `obj` (unbounded, always enabled).
    ChanSend { obj: usize },
    /// Pop from channel `obj`; enabled when non-empty or sender-less.
    ChanRecv { obj: usize },
    /// Non-blocking pop (always enabled).
    ChanTryRecv { obj: usize },
    /// A sender/receiver endpoint of `obj` is being dropped or cloned.
    ChanEndpoint { obj: usize },
    /// Spawn a new model thread.
    Spawn,
    /// Join `target`; enabled once it has exited.
    Join { target: usize },
    /// Read / write a `RaceCell`.
    CellRead { obj: usize },
    /// See [`Pending::CellRead`].
    CellWrite { obj: usize },
    /// Thread epilogue.
    Exit,
}

impl Pending {
    fn describe(self) -> String {
        match self {
            Pending::Start => "start".to_owned(),
            Pending::Yield => "yield".to_owned(),
            Pending::AtomicLoad { obj, .. } => format!("atomic load #{obj}"),
            Pending::AtomicStore { obj, .. } => format!("atomic store #{obj}"),
            Pending::AtomicRmw { obj, .. } => format!("atomic rmw #{obj}"),
            Pending::MutexLock { obj } => format!("lock mutex #{obj}"),
            Pending::MutexUnlock { obj } => format!("unlock mutex #{obj}"),
            Pending::CvWait { cv, .. } => format!("condvar wait #{cv}"),
            Pending::CvBlocked { cv } => format!("condvar park #{cv}"),
            Pending::CvNotify { cv, .. } => format!("condvar notify #{cv}"),
            Pending::ChanSend { obj } => format!("channel send #{obj}"),
            Pending::ChanRecv { obj } => format!("channel recv #{obj}"),
            Pending::ChanTryRecv { obj } => format!("channel try_recv #{obj}"),
            Pending::ChanEndpoint { obj } => format!("channel endpoint #{obj}"),
            Pending::Spawn => "spawn".to_owned(),
            Pending::Join { target } => format!("join thread {target}"),
            Pending::CellRead { obj } => format!("racecell read #{obj}"),
            Pending::CellWrite { obj } => format!("racecell write #{obj}"),
            Pending::Exit => "exit".to_owned(),
        }
    }
}

/// Scheduler-side state of one registered sync object. The shims own the
/// typed values; the scheduler owns enabledness and happens-before.
#[derive(Debug)]
pub(crate) enum Object {
    /// An atomic location: the clock released by the last
    /// release-or-stronger store (joined by acquire-or-stronger loads).
    Atomic { release: VClock },
    /// A mutex: who holds it, and the join of every release so far (each
    /// acquisition happens-after every prior critical section).
    Mutex {
        holder: Option<usize>,
        clock: VClock,
    },
    /// A condvar: parked waiters (FIFO) and waiters already notified but
    /// not yet re-granted.
    Condvar {
        waiters: VecDeque<usize>,
        notified: Vec<usize>,
    },
    /// A channel: scheduler-visible occupancy/endpoint counts (values live
    /// in the shim) plus the join of all sender clocks at send time —
    /// receives acquire it, so send happens-before the receive of any
    /// message (coarser than per-message clocks, which only ever *adds*
    /// happens-before edges and so never reports a false race).
    Channel {
        len: usize,
        senders: usize,
        rx_alive: bool,
        clock: VClock,
    },
    /// A plain-data cell with FastTrack-style race detection: the last
    /// write as `(thread, epoch)` and per-thread read epochs since then.
    Cell {
        label: &'static str,
        write: Option<(usize, u64)>,
        reads: VClock,
    },
}

#[derive(Debug)]
struct ThreadInfo {
    pending: Option<Pending>,
    finished: bool,
    clock: VClock,
    final_clock: Option<VClock>,
}

/// One recorded scheduling decision.
#[derive(Debug, Clone)]
struct ChoicePoint {
    /// Enabled thread ids at this point (ascending).
    enabled: Vec<usize>,
    /// The order alternatives are tried in (DFS canonical order: the
    /// non-preempting default first, then the rest ascending).
    order: Vec<usize>,
    /// Index into `order` of the alternative this execution took.
    pos: usize,
    /// The thread that performed the previous operation (preemption
    /// accounting).
    prev_running: Option<usize>,
}

impl ChoicePoint {
    fn chosen(&self) -> usize {
        self.order[self.pos]
    }

    fn is_preemption(&self) -> bool {
        preempts(self.prev_running, self.chosen(), &self.enabled)
    }
}

/// Granting `chosen` preempts iff the previous runner could have kept
/// going but was switched away from.
fn preempts(prev: Option<usize>, chosen: usize, enabled: &[usize]) -> bool {
    prev.is_some_and(|p| p != chosen && enabled.contains(&p))
}

pub(crate) struct Inner {
    threads: Vec<ThreadInfo>,
    objects: Vec<Object>,
    active: Option<usize>,
    live: usize,
    /// Forced choices (replayed prefix), as thread ids.
    prefix: Vec<usize>,
    tape: Vec<ChoicePoint>,
    prev_running: Option<usize>,
    ops: usize,
    max_steps: usize,
    failure: Option<Failure>,
    /// Post-failure teardown: keep token discipline, stop recording.
    failing: bool,
    /// Execution over (all threads exited, or abandoned): visible ops
    /// free-run so straggling threads can unwind without double panics.
    done: bool,
    /// SplitMix64 state for random mode.
    rng: Option<u64>,
}

impl Inner {
    fn enabled_of(&self, tid: usize) -> bool {
        let Some(pending) = self.threads[tid].pending else {
            return false;
        };
        match pending {
            Pending::MutexLock { obj } => {
                matches!(self.objects[obj], Object::Mutex { holder: None, .. })
            }
            Pending::CvBlocked { cv } => match &self.objects[cv] {
                Object::Condvar { notified, .. } => notified.contains(&tid),
                _ => false,
            },
            Pending::ChanRecv { obj } => match self.objects[obj] {
                Object::Channel { len, senders, .. } => len > 0 || senders == 0,
                _ => false,
            },
            Pending::Join { target } => self.threads[target].finished,
            _ => true,
        }
    }

    fn enabled(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.enabled_of(t))
            .collect()
    }

    fn schedule_so_far(&self) -> Schedule {
        Schedule(self.tape.iter().map(ChoicePoint::chosen).collect())
    }

    fn fail(&mut self, kind: FailureKind) {
        if self.failure.is_none() {
            self.failure = Some(Failure {
                kind,
                schedule: self.schedule_so_far(),
            });
            self.failing = true;
        }
    }
}

/// Outcome of a non-blocking channel pop, scheduler-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TryOutcome {
    Popped,
    Empty,
    Disconnected,
}

fn acquires(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Happens-before bookkeeping, run inside a granted visible operation
/// (the baton serialises these, so plain sequential updates are exact).
impl Inner {
    pub(crate) fn hb_atomic_load(&mut self, tid: usize, obj: usize, ord: Ordering) {
        if !acquires(ord) {
            return;
        }
        if let Object::Atomic { release } = &self.objects[obj] {
            let release = release.clone();
            self.threads[tid].clock.join(&release);
        }
    }

    pub(crate) fn hb_atomic_store(&mut self, tid: usize, obj: usize, ord: Ordering) {
        if !releases(ord) {
            return;
        }
        let clock = self.threads[tid].clock.clone();
        if let Object::Atomic { release } = &mut self.objects[obj] {
            *release = clock;
        }
    }

    pub(crate) fn hb_atomic_rmw(&mut self, tid: usize, obj: usize, ord: Ordering) {
        self.hb_atomic_load(tid, obj, ord);
        if !releases(ord) {
            return;
        }
        let clock = self.threads[tid].clock.clone();
        if let Object::Atomic { release } = &mut self.objects[obj] {
            release.join(&clock);
        }
    }

    pub(crate) fn mutex_acquired(&mut self, tid: usize, obj: usize) {
        if let Object::Mutex { holder, clock } = &mut self.objects[obj] {
            debug_assert!(holder.is_none() || self.done, "lock granted while held");
            *holder = Some(tid);
            let clock = clock.clone();
            self.threads[tid].clock.join(&clock);
        }
    }

    pub(crate) fn mutex_released(&mut self, tid: usize, obj: usize) {
        let mine = self.threads[tid].clock.clone();
        if let Object::Mutex { holder, clock } = &mut self.objects[obj] {
            *holder = None;
            clock.join(&mine);
        }
    }

    pub(crate) fn cv_enqueue(&mut self, tid: usize, cv: usize) {
        if let Object::Condvar { waiters, .. } = &mut self.objects[cv] {
            waiters.push_back(tid);
        }
    }

    pub(crate) fn cv_unpark(&mut self, tid: usize, cv: usize) {
        if let Object::Condvar { notified, .. } = &mut self.objects[cv] {
            notified.retain(|&t| t != tid);
        }
    }

    pub(crate) fn cv_notify(&mut self, cv: usize, all: bool) {
        if let Object::Condvar { waiters, notified } = &mut self.objects[cv] {
            if all {
                notified.extend(waiters.drain(..));
            } else if let Some(t) = waiters.pop_front() {
                notified.push(t);
            }
        }
    }

    /// Returns `false` when the receiver is gone (the send fails).
    pub(crate) fn chan_send(&mut self, tid: usize, obj: usize) -> bool {
        let mine = self.threads[tid].clock.clone();
        if let Object::Channel {
            len,
            rx_alive,
            clock,
            ..
        } = &mut self.objects[obj]
        {
            if !*rx_alive {
                return false;
            }
            *len += 1;
            clock.join(&mine);
            true
        } else {
            false
        }
    }

    /// Returns `true` when a message was consumed, `false` when the
    /// channel is drained and sender-less (disconnected).
    pub(crate) fn chan_recv(&mut self, tid: usize, obj: usize) -> bool {
        if let Object::Channel { len, clock, .. } = &mut self.objects[obj] {
            if *len > 0 {
                *len -= 1;
                let clock = clock.clone();
                self.threads[tid].clock.join(&clock);
                return true;
            }
        }
        false
    }

    pub(crate) fn chan_try_recv(&mut self, tid: usize, obj: usize) -> TryOutcome {
        let outcome = match &self.objects[obj] {
            Object::Channel { len, senders, .. } => {
                if *len > 0 {
                    TryOutcome::Popped
                } else if *senders == 0 {
                    TryOutcome::Disconnected
                } else {
                    TryOutcome::Empty
                }
            }
            _ => TryOutcome::Disconnected,
        };
        if outcome == TryOutcome::Popped {
            self.chan_recv(tid, obj);
        }
        outcome
    }

    pub(crate) fn chan_sender_delta(&mut self, obj: usize, delta: isize) {
        if let Object::Channel { senders, .. } = &mut self.objects[obj] {
            *senders = senders.saturating_add_signed(delta);
        }
    }

    pub(crate) fn chan_rx_closed(&mut self, obj: usize) {
        if let Object::Channel { rx_alive, .. } = &mut self.objects[obj] {
            *rx_alive = false;
        }
    }

    pub(crate) fn join_finished(&mut self, tid: usize, target: usize) {
        if let Some(final_clock) = self.threads[target].final_clock.clone() {
            self.threads[tid].clock.join(&final_clock);
        }
    }

    pub(crate) fn cell_read(&mut self, tid: usize, obj: usize) {
        let mine = self.threads[tid].clock.clone();
        let raced = match &mut self.objects[obj] {
            Object::Cell {
                label,
                write,
                reads,
            } => {
                let race = write.is_some_and(|(w, epoch)| w != tid && mine.get(w) < epoch);
                reads.set(tid, mine.get(tid));
                race.then_some(*label)
            }
            _ => None,
        };
        if let Some(label) = raced {
            self.fail(FailureKind::DataRace(label.to_owned()));
        }
    }

    pub(crate) fn cell_write(&mut self, tid: usize, obj: usize) {
        let mine = self.threads[tid].clock.clone();
        let raced = match &mut self.objects[obj] {
            Object::Cell {
                label,
                write,
                reads,
            } => {
                let write_race = write.is_some_and(|(w, epoch)| w != tid && mine.get(w) < epoch);
                let read_race = reads.exceeds_somewhere(&mine, tid);
                *write = Some((tid, mine.get(tid)));
                *reads = VClock::new();
                (write_race || read_race).then_some(*label)
            }
            _ => None,
        };
        if let Some(label) = raced {
            self.fail(FailureKind::DataRace(label.to_owned()));
        }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One execution's shared state: the scheduler proper.
pub(crate) struct Exec {
    inner: Mutex<Inner>,
    cv: Condvar,
}

fn lock(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Panic payload used to unwind model threads out of an abandoned
/// execution (never surfaces as a reported failure: abandonment implies a
/// failure was already recorded or every thread had exited).
const ABANDONED: &str = "revelio-check: execution abandoned";

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

/// The execution and model-thread id the calling OS thread is registered
/// under, if any — `None` means the shim falls back to plain `std`
/// behaviour.
pub(crate) fn current() -> Option<(Arc<Exec>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

impl Exec {
    fn new(prefix: Vec<usize>, max_steps: usize, rng: Option<u64>) -> Arc<Exec> {
        Arc::new(Exec {
            inner: Mutex::new(Inner {
                threads: Vec::new(),
                objects: Vec::new(),
                active: None,
                live: 0,
                prefix,
                tape: Vec::new(),
                prev_running: None,
                ops: 0,
                max_steps,
                failure: None,
                failing: false,
                done: false,
                rng,
            }),
            cv: Condvar::new(),
        })
    }

    /// Registers a new sync object, returning its id.
    pub(crate) fn register(&self, object: Object) -> usize {
        let mut inner = lock(&self.inner);
        inner.objects.push(object);
        inner.objects.len() - 1
    }

    /// Allocates a model thread (clock seeded from `parent`'s, pending on
    /// its first grant). The OS thread is spawned by the caller.
    fn alloc_thread(inner: &mut Inner, parent: Option<usize>) -> usize {
        let tid = inner.threads.len();
        let mut clock = match parent {
            Some(p) => inner.threads[p].clock.clone(),
            None => VClock::new(),
        };
        clock.tick(tid);
        inner.threads.push(ThreadInfo {
            pending: Some(Pending::Start),
            finished: false,
            clock,
            final_clock: None,
        });
        inner.live += 1;
        tid
    }

    /// The heart: publish `pending`, release the baton, wait to be
    /// granted, then perform the operation while holding it.
    ///
    /// In a `done` (abandoned) execution the thread must not keep running
    /// its model body — stragglers re-acquiring real locks would turn a
    /// *detected* model deadlock into a real one. Instead the op panics
    /// with a sentinel (caught by [`run_model_thread`]) so the body
    /// unwinds; visible ops reached *during* that unwind (guard drops,
    /// endpoint drops — releases only, never blocking) free-run.
    pub(crate) fn visible<R>(
        &self,
        tid: usize,
        pending: Pending,
        perform: impl FnOnce(&mut Inner, usize) -> R,
    ) -> R {
        let mut inner = lock(&self.inner);
        if !inner.done {
            inner.threads[tid].pending = Some(pending);
            inner.active = None;
            self.schedule(&mut inner);
            while inner.active != Some(tid) && !inner.done {
                inner = match self.cv.wait(inner) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }
        if inner.done && !std::thread::panicking() {
            drop(inner);
            panic!("{ABANDONED}");
        }
        inner.ops += 1;
        inner.threads[tid].pending = None;
        inner.threads[tid].clock.tick(tid);
        perform(&mut inner, tid)
    }

    /// Picks the next thread to run (or ends the execution). Called with
    /// the baton free (`active == None`).
    fn schedule(&self, inner: &mut Inner) {
        if inner.done {
            self.cv.notify_all();
            return;
        }
        if inner.live == 0 {
            inner.done = true;
            self.cv.notify_all();
            return;
        }
        let enabled = inner.enabled();
        if enabled.is_empty() {
            if !inner.failing {
                let blocked = inner
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.finished)
                    .map(|(i, t)| {
                        (
                            i,
                            t.pending
                                .map_or_else(|| "running".to_owned(), Pending::describe),
                        )
                    })
                    .collect();
                inner.fail(FailureKind::Deadlock(blocked));
            }
            // Nothing can ever run again; abandon so stragglers free-run.
            inner.done = true;
            self.cv.notify_all();
            return;
        }
        if inner.ops >= inner.max_steps && !inner.failing {
            inner.fail(FailureKind::StepLimit);
            inner.done = true;
            self.cv.notify_all();
            return;
        }

        let chosen = if inner.failing {
            // Teardown: no recording, prefer the current thread so unwinds
            // run straight through.
            match inner.prev_running {
                Some(p) if enabled.contains(&p) => p,
                _ => enabled[0],
            }
        } else {
            // Canonical try-order: non-preempting default first, then the
            // rest ascending. Backtracking walks this order, so the first
            // execution down any subtree costs zero extra preemptions.
            let default = match inner.prev_running {
                Some(p) if enabled.contains(&p) => p,
                _ => enabled[0],
            };
            let mut order = vec![default];
            order.extend(enabled.iter().copied().filter(|&t| t != default));
            let step = inner.tape.len();
            let pos = if step < inner.prefix.len() {
                let want = inner.prefix[step];
                match order.iter().position(|&t| t == want) {
                    Some(p) => p,
                    None => {
                        inner.fail(FailureKind::ReplayDiverged { step });
                        inner.done = true;
                        self.cv.notify_all();
                        return;
                    }
                }
            } else if let Some(state) = &mut inner.rng {
                (splitmix(state) % order.len() as u64) as usize
            } else {
                0
            };
            let chosen = order[pos];
            inner.tape.push(ChoicePoint {
                enabled,
                order,
                pos,
                prev_running: inner.prev_running,
            });
            chosen
        };
        inner.prev_running = Some(chosen);
        inner.active = Some(chosen);
        self.cv.notify_all();
    }

    /// Spawn protocol: a visible op whose `perform` allocates the child;
    /// the shim then starts the OS thread.
    pub(crate) fn spawn_child(&self, parent: usize) -> usize {
        self.visible(parent, Pending::Spawn, |inner, p| {
            Exec::alloc_thread(inner, Some(p))
        })
    }

    /// Thread epilogue: record panic (if any), run the Exit visible op,
    /// release the baton for good.
    pub(crate) fn thread_exit(&self, tid: usize, panic_msg: Option<String>) {
        let mut inner = lock(&self.inner);
        if let Some(msg) = panic_msg {
            if !inner.failing {
                inner.fail(FailureKind::Panic(msg));
            }
        }
        if !inner.done {
            inner.threads[tid].pending = Some(Pending::Exit);
            inner.active = None;
            self.schedule(&mut inner);
            while inner.active != Some(tid) && !inner.done {
                inner = match self.cv.wait(inner) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }
        inner.ops += 1;
        inner.threads[tid].pending = None;
        inner.threads[tid].clock.tick(tid);
        inner.threads[tid].finished = true;
        inner.threads[tid].final_clock = Some(inner.threads[tid].clock.clone());
        inner.live = inner.live.saturating_sub(1);
        if inner.done {
            return;
        }
        inner.active = None;
        self.schedule(&mut inner);
    }

    /// Runs one execution of `f` as model thread 0 and waits for it to
    /// finish (or be abandoned). Returns the recorded tape and failure.
    fn run(
        self: &Arc<Exec>,
        f: Arc<dyn Fn() + Send + Sync>,
    ) -> (Vec<ChoicePoint>, Option<Failure>, usize) {
        let root = {
            let mut inner = lock(&self.inner);
            Exec::alloc_thread(&mut inner, None)
        };
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("revelio-check-model".to_owned())
            .spawn(move || run_model_thread(&exec, root, move || f()))
            .expect("spawn model root thread");
        // Kick the first grant.
        {
            let mut inner = lock(&self.inner);
            if inner.active.is_none() && !inner.done {
                self.schedule(&mut inner);
            }
        }
        // Wait for the execution to end.
        {
            let mut inner = lock(&self.inner);
            while !inner.done {
                inner = match self.cv.wait(inner) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }
        let _ = handle.join();
        let inner = lock(&self.inner);
        (inner.tape.clone(), inner.failure.clone(), inner.ops)
    }
}

/// Body shared by the root thread and shim-spawned threads: register the
/// thread-local context, wait for the Start grant, run, exit.
pub(crate) fn run_model_thread(exec: &Arc<Exec>, tid: usize, f: impl FnOnce()) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(exec), tid)));
    // Consume the Start grant. A thread started into an already-abandoned
    // execution never runs its body at all.
    let proceed = {
        let mut inner = lock(&exec.inner);
        while inner.active != Some(tid) && !inner.done {
            inner = match exec.cv.wait(inner) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        inner.ops += 1;
        inner.threads[tid].pending = None;
        inner.threads[tid].clock.tick(tid);
        !inner.done
    };
    let panic_msg = if proceed {
        let outcome = catch_unwind(AssertUnwindSafe(f));
        outcome.err().and_then(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_owned());
            (msg != ABANDONED).then_some(msg)
        })
    } else {
        None
    };
    exec.thread_exit(tid, panic_msg);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Computes the next DFS prefix: the deepest choice point with an untried
/// alternative within the preemption bound, or `None` when the bounded
/// space is exhausted.
fn next_prefix(tape: &[ChoicePoint], bound: Option<usize>) -> Option<Vec<usize>> {
    // preemptions_before[i] = unforced switches among choices 0..i.
    let mut preemptions_before = Vec::with_capacity(tape.len() + 1);
    preemptions_before.push(0usize);
    for cp in tape {
        let last = *preemptions_before.last().unwrap_or(&0);
        preemptions_before.push(last + usize::from(cp.is_preemption()));
    }
    for i in (0..tape.len()).rev() {
        let cp = &tape[i];
        for pos in cp.pos + 1..cp.order.len() {
            let cand = cp.order[pos];
            let cost =
                preemptions_before[i] + usize::from(preempts(cp.prev_running, cand, &cp.enabled));
            if bound.is_none_or(|b| cost <= b) {
                let mut prefix: Vec<usize> = tape[..i].iter().map(ChoicePoint::chosen).collect();
                prefix.push(cand);
                return Some(prefix);
            }
        }
    }
    None
}

/// Explores the model's interleavings under `cfg`; stops at the first
/// failure. The model closure is run once per execution and must be
/// self-contained (fresh state each run).
pub fn explore(cfg: &Config, model: impl Fn() + Send + Sync + 'static) -> Report {
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let deadline = cfg.max_time.map(|d| Instant::now() + d);
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    let mut max_steps_seen = 0usize;
    let budget = match cfg.mode {
        Mode::Dfs => cfg.max_executions,
        Mode::Random { iterations, .. } => iterations.min(cfg.max_executions),
    };
    loop {
        if executions >= budget || deadline.is_some_and(|d| Instant::now() >= d) {
            return Report {
                executions,
                complete: false,
                failure: None,
                max_steps_seen,
            };
        }
        let rng = match cfg.mode {
            Mode::Dfs => None,
            Mode::Random { seed, .. } => {
                let mut s = seed ^ (executions as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                Some(splitmix(&mut s))
            }
        };
        let exec = Exec::new(prefix.clone(), cfg.max_steps, rng);
        let (tape, failure, ops) = exec.run(Arc::clone(&model));
        executions += 1;
        max_steps_seen = max_steps_seen.max(ops);
        if failure.is_some() {
            return Report {
                executions,
                complete: false,
                failure,
                max_steps_seen,
            };
        }
        match cfg.mode {
            Mode::Dfs => match next_prefix(&tape, cfg.preemption_bound) {
                Some(p) => prefix = p,
                None => {
                    return Report {
                        executions,
                        complete: true,
                        failure: None,
                        max_steps_seen,
                    }
                }
            },
            Mode::Random { .. } => prefix.clear(),
        }
    }
}

/// Replays exactly one execution along `schedule` (continuing with
/// default choices past its end) and returns its failure, if any. The
/// tool for pinning a discovered bug as a deterministic regression test.
pub fn replay(schedule: &Schedule, model: impl Fn() + Send + Sync + 'static) -> Option<Failure> {
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let exec = Exec::new(schedule.0.clone(), Config::default().max_steps, None);
    let (_, failure, _) = exec.run(model);
    failure
}
