//! `revelio-check`: a miniature deterministic concurrency model checker
//! (in the spirit of `loom` and CHESS) plus a swappable sync facade for
//! the Revelio serving stack.
//!
//! # The two halves
//!
//! 1. **The facade** ([`sync`]) — `revelio-trace` and `revelio-runtime`
//!    import their atomics, mutexes, channels, and thread spawns from
//!    `revelio_check::sync`. In default builds these are re-exports of
//!    the `std` items themselves (zero overhead, proven by compile-time
//!    type identity); with `--features check` they become the
//!    scheduler-routed [`shim`] types.
//! 2. **The checker** ([`explore`] / [`replay`]) — runs a model closure
//!    under every interleaving (bounded exhaustive DFS, or seeded random
//!    sampling) of its shim-visible operations, detecting panics, lost
//!    updates, torn snapshots, deadlocks, and vector-clock data races.
//!    Every failure carries a [`Schedule`] that [`replay`] reproduces
//!    deterministically — the unit of a pinned regression test.
//!
//! # Quickstart
//!
//! ```rust
//! use revelio_check::shim::{spawn, AtomicU64};
//! use revelio_check::sync::atomic::Ordering;
//! use revelio_check::sync::Arc;
//! use revelio_check::{explore, Config};
//!
//! // Two relaxed increments can never lose an update (RMWs are atomic):
//! let report = explore(&Config::default(), || {
//!     let n = Arc::new(AtomicU64::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = spawn(move || n2.fetch_add(1, Ordering::Relaxed));
//!     n.fetch_add(1, Ordering::Relaxed);
//!     t.join().expect("child ok");
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! report.assert_ok();
//! assert!(report.complete);
//! ```
//!
//! The checker explores interleavings under sequential consistency; the
//! weak-memory gap (`Relaxed` reordering) is covered by the
//! `revelio-analysis` atomics source lint and the Miri CI job. See
//! DESIGN.md §11 for the full architecture.

pub mod clock;
pub mod sched;
pub mod shim;
pub mod sync;

pub use sched::{explore, replay, Config, Failure, FailureKind, Mode, Report, Schedule};

/// `true` when this build routes the [`sync`] facade through the model
/// checker (`--features check`); `false` for the zero-overhead `std`
/// re-export build.
pub const fn is_checked() -> bool {
    cfg!(feature = "check")
}
