//! The seeded-defect suite: three deliberately planted concurrency bugs
//! modelled on the workspace's real structures. The checker must flag
//! every one (CI fails otherwise), the failing schedule must replay
//! deterministically, and the corrected variant of each must verify
//! clean — so a regression in either the detector or the fix shows up.
//!
//! 1. *Relaxed drop counter* — the ring journal's dropped-event counter
//!    updated as a separate load + store (lost update).
//! 2. *Unsynchronized histogram bucket* — a bucket cell published by a
//!    relaxed flag instead of release/acquire (data race).
//! 3. *Double lock* — two registries locked in opposite orders from two
//!    threads (deadlock).

use revelio_check::shim::{spawn, AtomicU64, Mutex, RaceCell};
use revelio_check::sync::atomic::Ordering;
use revelio_check::sync::Arc;
use revelio_check::{explore, replay, Config, FailureKind};

fn join<T>(handle: revelio_check::shim::JoinHandle<T>) -> T {
    match handle.join() {
        Ok(value) => value,
        Err(_) => panic!("model thread panicked"),
    }
}

// --- defect 1: relaxed drop counter (lost update) -----------------------

/// BUG: increments the drop counter as a load followed by a store; two
/// overflowing writers can interleave and lose a drop.
fn drop_counter_buggy() {
    let dropped = Arc::new(AtomicU64::new(0));
    let d2 = Arc::clone(&dropped);
    let t = spawn(move || {
        let seen = d2.load(Ordering::Relaxed);
        d2.store(seen + 1, Ordering::Relaxed);
    });
    let seen = dropped.load(Ordering::Relaxed);
    dropped.store(seen + 1, Ordering::Relaxed);
    join(t);
    assert_eq!(
        dropped.load(Ordering::Relaxed),
        2,
        "a drop went unaccounted"
    );
}

/// FIX: a single atomic read-modify-write per drop.
fn drop_counter_fixed() {
    let dropped = Arc::new(AtomicU64::new(0));
    let d2 = Arc::clone(&dropped);
    let t = spawn(move || {
        d2.fetch_add(1, Ordering::Relaxed);
    });
    dropped.fetch_add(1, Ordering::Relaxed);
    join(t);
    assert_eq!(
        dropped.load(Ordering::Relaxed),
        2,
        "a drop went unaccounted"
    );
}

#[test]
fn seeded_drop_counter_lost_update_is_flagged() {
    let report = explore(&Config::default(), drop_counter_buggy);
    let failure = report.expect_failure().clone();
    assert!(
        matches!(&failure.kind, FailureKind::Panic(msg) if msg.contains("unaccounted")),
        "unexpected failure: {failure}"
    );
    let replayed = replay(&failure.schedule, drop_counter_buggy)
        .unwrap_or_else(|| panic!("schedule \"{}\" must replay", failure.schedule));
    assert_eq!(replayed.kind, failure.kind);
}

#[test]
fn seeded_drop_counter_fix_verifies_clean() {
    let report = explore(&Config::exhaustive(), drop_counter_fixed);
    report.assert_ok();
    assert!(report.complete);
}

// --- defect 2: unsynchronized histogram bucket (data race) --------------

/// BUG: the bucket cell is written, then "published" with a relaxed
/// flag; the reader's relaxed load creates no happens-before edge, so
/// reading the bucket races with the write.
fn histogram_bucket_buggy() {
    let bucket = Arc::new(RaceCell::new("histogram-bucket", 0u64));
    let ready = Arc::new(AtomicU64::new(0));
    let (b2, r2) = (Arc::clone(&bucket), Arc::clone(&ready));
    let t = spawn(move || {
        b2.set(1);
        r2.store(1, Ordering::Relaxed);
    });
    if ready.load(Ordering::Relaxed) == 1 {
        let _count = bucket.get();
    }
    join(t);
}

/// FIX: release store / acquire load publication.
fn histogram_bucket_fixed() {
    let bucket = Arc::new(RaceCell::new("histogram-bucket", 0u64));
    let ready = Arc::new(AtomicU64::new(0));
    let (b2, r2) = (Arc::clone(&bucket), Arc::clone(&ready));
    let t = spawn(move || {
        b2.set(1);
        r2.store(1, Ordering::Release);
    });
    if ready.load(Ordering::Acquire) == 1 {
        assert_eq!(bucket.get(), 1);
    }
    join(t);
}

#[test]
fn seeded_histogram_bucket_race_is_flagged() {
    let report = explore(&Config::default(), histogram_bucket_buggy);
    let failure = report.expect_failure().clone();
    assert!(
        matches!(&failure.kind, FailureKind::DataRace(label) if label == "histogram-bucket"),
        "unexpected failure: {failure}"
    );
    let replayed = replay(&failure.schedule, histogram_bucket_buggy)
        .unwrap_or_else(|| panic!("schedule \"{}\" must replay", failure.schedule));
    assert_eq!(replayed.kind, failure.kind);
}

#[test]
fn seeded_histogram_bucket_fix_verifies_clean() {
    let report = explore(&Config::exhaustive(), histogram_bucket_fixed);
    report.assert_ok();
    assert!(report.complete);
}

// --- defect 3: double lock (deadlock) -----------------------------------

/// BUG: thread 1 locks registry→journal, thread 2 locks journal→registry.
fn double_lock_buggy() {
    let registry = Arc::new(Mutex::new(0u64));
    let journal = Arc::new(Mutex::new(0u64));
    let (r2, j2) = (Arc::clone(&registry), Arc::clone(&journal));
    let t = spawn(move || {
        let r = r2.lock().expect("registry");
        let mut j = j2.lock().expect("journal");
        *j += *r;
    });
    let j = journal.lock().expect("journal");
    let mut r = registry.lock().expect("registry");
    *r += *j;
    drop((r, j));
    join(t);
}

/// FIX: a single global lock order (registry before journal).
fn double_lock_fixed() {
    let registry = Arc::new(Mutex::new(0u64));
    let journal = Arc::new(Mutex::new(0u64));
    let (r2, j2) = (Arc::clone(&registry), Arc::clone(&journal));
    let t = spawn(move || {
        let r = r2.lock().expect("registry");
        let mut j = j2.lock().expect("journal");
        *j += *r;
    });
    {
        let r = registry.lock().expect("registry");
        let mut j = journal.lock().expect("journal");
        *j += *r;
    }
    join(t);
}

#[test]
fn seeded_double_lock_deadlock_is_flagged() {
    let report = explore(&Config::default(), double_lock_buggy);
    let failure = report.expect_failure().clone();
    assert!(
        matches!(&failure.kind, FailureKind::Deadlock(_)),
        "unexpected failure: {failure}"
    );
    let replayed = replay(&failure.schedule, double_lock_buggy)
        .unwrap_or_else(|| panic!("schedule \"{}\" must replay", failure.schedule));
    assert_eq!(replayed.kind, failure.kind);
}

#[test]
fn seeded_double_lock_fix_verifies_clean() {
    let report = explore(&Config::exhaustive(), double_lock_fixed);
    report.assert_ok();
    assert!(report.complete);
}
