//! Check-mode exploration of the *real* workspace structures.
//!
//! These tests only exist under `--features check`: the whole dependency
//! graph (including `revelio-trace` and `revelio-runtime`, built here as
//! dev-dependencies) is then compiled against the shim facade, so the
//! structures explored below are the production types themselves — the
//! actual ring journal, metrics registry, cache shard, and worker pool —
//! not models of them.
//!
//! The newest-sequence-wins fix to `RingCollector::record` (a stalled
//! writer from an earlier lap must not clobber a later lap's event) is
//! additionally pinned by a deterministic single-threaded regression in
//! `revelio-trace`'s unit suite; here the checker sweeps the genuinely
//! concurrent interleavings around it.

#![cfg(feature = "check")]

use revelio_check::shim::spawn;
use revelio_check::sync::atomic::Ordering;
use revelio_check::sync::Arc;
use revelio_check::{explore, Config};
use revelio_core::Degradation;
use revelio_graph::Target;
use revelio_runtime::{Metrics, PoolCore, ShardedLru};
use revelio_store::{ExplanationRecord, LogStore, MaskKey, PhaseSummary, Store, StoredMask};
use revelio_trace::{Collector, Event, EventKind, RingCollector, TraceId};

fn join<T>(handle: revelio_check::shim::JoinHandle<T>) -> T {
    match handle.join() {
        Ok(value) => value,
        Err(_) => panic!("model thread panicked"),
    }
}

fn note(n: u64, text: &'static str) -> Event {
    Event {
        trace: TraceId(0),
        at_ns: n,
        kind: EventKind::Note(text),
    }
}

/// Two writers race into a capacity-1 ring. In *every* interleaving the
/// drained journal must hold exactly one event with exact drop accounting
/// — and the checker must see no deadlock or race inside the real
/// `RingCollector` (facade atomics + slot mutexes).
#[test]
fn ring_journal_overwrite_race_keeps_exact_accounting() {
    let report = explore(&Config::exhaustive(), || {
        let ring = Arc::new(RingCollector::new(1));
        let r2 = Arc::clone(&ring);
        let t = spawn(move || r2.record(note(1, "child")));
        ring.record(note(2, "main"));
        join(t);
        let trace = ring.drain(TraceId(7));
        assert_eq!(ring.total(), 2);
        assert_eq!(trace.dropped, 1, "dropped must be exact: total - capacity");
        assert_eq!(trace.events.len(), 1, "capacity-1 ring keeps one event");
    });
    report.assert_ok();
    assert!(report.complete, "two-writer ring must be fully explorable");
    assert!(report.executions > 1, "schedules must actually branch");
}

/// A quiesced ring (writers joined before the drain) is an exact journal
/// tail, not a sample: with capacity >= total, nothing may be dropped and
/// every recorded event must be present in sequence order.
#[test]
fn ring_journal_quiescent_drain_is_exact() {
    let report = explore(&Config::exhaustive(), || {
        let ring = Arc::new(RingCollector::new(4));
        let r2 = Arc::clone(&ring);
        let t = spawn(move || {
            r2.record(note(1, "child-a"));
            r2.record(note(2, "child-b"));
        });
        ring.record(note(3, "main"));
        join(t);
        let trace = ring.drain(TraceId(7));
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.events.len(), 3);
    });
    report.assert_ok();
    assert!(report.complete);
}

/// The metrics registry's relaxed counters are pure accumulators: after
/// the workers quiesce, the snapshot is exact in every interleaving (no
/// lost update — the seeded-defect suite shows what the checker says when
/// this is done with a load + store instead of `fetch_add`).
#[test]
fn metrics_snapshot_is_exact_after_quiescence() {
    let report = explore(&Config::exhaustive(), || {
        let metrics = Arc::new(Metrics::default());
        let m2 = Arc::clone(&metrics);
        let t = spawn(move || {
            m2.jobs_submitted.fetch_add(1, Ordering::Relaxed);
            m2.explain_latency
                .observe(std::time::Duration::from_micros(300));
        });
        metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        metrics
            .explain_latency
            .observe(std::time::Duration::from_micros(500));
        join(t);
        let snap = metrics.snapshot(0, 0);
        assert_eq!(snap.jobs_submitted, 2);
        assert_eq!(snap.explain_latency.count, 2);
        assert_eq!(snap.explain_latency.total_us, 800);
        assert_eq!(snap.explain_latency.max_us, 500);
    });
    report.assert_ok();
    assert!(report.complete);
}

/// Concurrent get/insert on one LRU shard: hit/miss accounting must match
/// the gets that actually ran, a get may only return a value some insert
/// put there, and no interleaving deadlocks the shard mutex.
#[test]
fn cache_shard_get_insert_interleavings_stay_coherent() {
    let report = explore(&Config::exhaustive(), || {
        let cache: Arc<ShardedLru<u32, u64>> = Arc::new(ShardedLru::new(1, 2));
        let c2 = Arc::clone(&cache);
        let t = spawn(move || {
            c2.insert(1, 10);
            c2.get(&1)
        });
        let seen = cache.get(&1);
        let child_seen = join(t);
        assert_eq!(
            child_seen,
            Some(10),
            "a shard read after its own insert must hit"
        );
        assert!(
            seen.is_none() || seen == Some(10),
            "a get may only observe an inserted value"
        );
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 2, "every get is either a hit or a miss");
        let expected_hits = 1 + u64::from(seen.is_some());
        assert_eq!(hits, expected_hits);
    });
    report.assert_ok();
    assert!(report.complete);
}

/// Eviction under concurrency: a capacity-1 shard holding two competing
/// keys ends every interleaving with exactly one resident entry.
#[test]
fn cache_shard_eviction_keeps_capacity_invariant() {
    let report = explore(&Config::exhaustive(), || {
        let cache: Arc<ShardedLru<u32, u64>> = Arc::new(ShardedLru::new(1, 1));
        let c2 = Arc::clone(&cache);
        let t = spawn(move || c2.insert(1, 10));
        cache.insert(2, 20);
        join(t);
        assert_eq!(cache.len(), 1, "capacity bound must hold post-quiescence");
        let survivors = [cache.get(&1), cache.get(&2)];
        assert_eq!(
            survivors.iter().flatten().count(),
            1,
            "exactly one of the two inserts survives"
        );
    });
    report.assert_ok();
    assert!(report.complete);
}

fn mask_key() -> MaskKey {
    MaskKey {
        model_id: 0,
        graph_id: 1,
        target: Target::Node(2),
        layers: 2,
    }
}

fn stored(job_id: u64, flow: u32) -> ExplanationRecord {
    ExplanationRecord {
        job_id,
        key: mask_key(),
        model_fingerprint: 0xFEED,
        edge_scores: vec![0.5, 0.25],
        layer_edge_scores: None,
        flow_scores: None,
        degradation: Degradation::default(),
        phases: PhaseSummary::default(),
        mask: Some(StoredMask {
            mask_params: vec![flow as f32],
            layer_weights: vec![vec![1.0]],
            selected: vec![flow],
        }),
    }
}

/// Two threads race explanation appends into one `LogStore` while the main
/// thread also reads mid-flight. The store's facade mutex must serialize
/// the file in every interleaving: a concurrent listing is always a clean
/// prefix of completed appends (never a torn entry), and after quiescence
/// both records are durable with the newest mask winning the shared key.
#[test]
fn log_store_concurrent_append_and_read_stay_serialized() {
    // Distinct backing file per explored execution (std atomics on
    // purpose: the counter is test bookkeeping, not explored state).
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

    let report = explore(&Config::exhaustive(), || {
        let path = std::env::temp_dir().join(format!(
            "revelio-check-store-{}-{}.log",
            std::process::id(),
            NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let store = Arc::new(LogStore::open(&path).expect("open store"));
        let s2 = Arc::clone(&store);
        let t = spawn(move || s2.put_explanation(&stored(1, 7)).expect("child append"));
        store.put_explanation(&stored(2, 9)).expect("main append");
        let mid = store.list_explanations().expect("concurrent list");
        assert!(mid.len() <= 2, "at most the two appends can be visible");
        for s in &mid {
            assert!(
                (s.job_id == 1 || s.job_id == 2) && s.has_mask,
                "a listed entry must be a completed append, never torn"
            );
        }
        join(t);
        let done = store.list_explanations().expect("quiescent list");
        assert_eq!(done.len(), 2, "both appends are durable after the join");
        let hit = store
            .newest_mask(&mask_key())
            .expect("mask lookup")
            .expect("a mask was stored");
        // Both writers share the key; which append lands second — and so
        // supersedes — depends on the schedule, but it is always one of
        // them, intact.
        assert_eq!(hit.mask.selected.len(), 1);
        assert!(
            (hit.job_id == 1 && hit.mask.selected == [7])
                || (hit.job_id == 2 && hit.mask.selected == [9]),
            "newest mask must be one writer's record, intact"
        );
        let full = store.explanation(1).expect("read").expect("record 1");
        assert_eq!(full.edge_scores, vec![0.5, 0.25]);
        drop(store);
        let _ = std::fs::remove_file(&path);
    });
    report.assert_ok();
    assert!(report.complete, "two-writer store must be fully explorable");
    assert!(report.executions > 1, "schedules must actually branch");
}

/// `PoolCore` shutdown drains: every job submitted before the drop is
/// handled in every interleaving — the queue closes, the worker finishes
/// the backlog, and the join never deadlocks.
#[test]
fn pool_core_drop_drains_every_submitted_job() {
    let report = explore(&Config::default(), || {
        let sum = Arc::new(revelio_check::shim::AtomicU64::new(0));
        let pool = {
            let sum = Arc::clone(&sum);
            PoolCore::spawn(
                "model-pool",
                1,
                |_i| (),
                move |(), job: u64| {
                    sum.fetch_add(job, Ordering::Relaxed);
                },
            )
            .expect("spawn")
        };
        pool.submit(1).expect("submit");
        pool.submit(2).expect("submit");
        drop(pool); // close + drain + join
        assert_eq!(sum.load(Ordering::Relaxed), 3, "a submitted job was lost");
    });
    report.assert_ok();
}

/// An idle pool (no jobs) shuts down cleanly from every schedule: the
/// worker may still be blocked on its first `recv` when the drop closes
/// the channel.
#[test]
fn pool_core_idle_shutdown_never_hangs() {
    let report = explore(&Config::default(), || {
        let pool: PoolCore<u64> =
            PoolCore::spawn("model-pool-idle", 2, |_i| (), |(), _job| {}).expect("spawn");
        assert_eq!(pool.workers(), 2);
        drop(pool);
    });
    report.assert_ok();
}
