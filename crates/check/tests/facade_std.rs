//! Zero-overhead proof for the default-build facade.
//!
//! With the `check` feature off, `revelio_check::sync` names must be
//! re-exports of the `std` items themselves — the *same types*, not
//! wrappers — so production builds of `revelio-trace`/`revelio-runtime`
//! compile to exactly the codegen they had before the facade existed.
//! The identity functions below only compile if that holds, which makes
//! this file the no-overhead test: any accidental wrapper turns it into
//! a build failure, not a benchmark regression to notice later.

#![cfg(not(feature = "check"))]

use revelio_check::sync;

// Compile-time type-identity coercions: facade type in, std type out.
fn _mutex_is_std(x: sync::Mutex<Vec<u8>>) -> std::sync::Mutex<Vec<u8>> {
    x
}
fn _guard_is_std(x: sync::MutexGuard<'_, u8>) -> std::sync::MutexGuard<'_, u8> {
    x
}
fn _condvar_is_std(x: sync::Condvar) -> std::sync::Condvar {
    x
}
fn _arc_is_std(x: sync::Arc<u8>) -> std::sync::Arc<u8> {
    x
}
fn _atomic_u64_is_std(x: sync::atomic::AtomicU64) -> std::sync::atomic::AtomicU64 {
    x
}
fn _atomic_usize_is_std(x: sync::atomic::AtomicUsize) -> std::sync::atomic::AtomicUsize {
    x
}
fn _atomic_bool_is_std(x: sync::atomic::AtomicBool) -> std::sync::atomic::AtomicBool {
    x
}
fn _ordering_is_std(x: sync::atomic::Ordering) -> std::sync::atomic::Ordering {
    x
}
fn _sender_is_std(x: sync::mpsc::Sender<u8>) -> std::sync::mpsc::Sender<u8> {
    x
}
fn _receiver_is_std(x: sync::mpsc::Receiver<u8>) -> std::sync::mpsc::Receiver<u8> {
    x
}
fn _join_handle_is_std(x: sync::thread::JoinHandle<u8>) -> std::thread::JoinHandle<u8> {
    x
}
fn _builder_is_std(x: sync::thread::Builder) -> std::thread::Builder {
    x
}

#[test]
fn facade_reports_unchecked() {
    assert!(!revelio_check::is_checked());
}

#[test]
fn facade_functions_are_std_functions() {
    // Function-item identity: coercing to the std fn pointer type only
    // works when the facade re-exports the std function itself.
    let _: fn() = sync::thread::yield_now;
    let spawn_fn: fn(fn() -> u8) -> std::thread::JoinHandle<u8> = sync::thread::spawn;
    let channel_fn: fn() -> (std::sync::mpsc::Sender<u8>, std::sync::mpsc::Receiver<u8>) =
        sync::mpsc::channel;
    let handle = spawn_fn(|| 7);
    assert_eq!(handle.join().expect("join"), 7);
    let (tx, rx) = channel_fn();
    tx.send(9).expect("send");
    assert_eq!(rx.recv().expect("recv"), 9);
}
