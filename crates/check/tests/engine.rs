//! Engine-level tests for the model checker itself: exploration
//! semantics, failure detection, determinism, and schedule replay.
//!
//! These run in the default (no-feature) build: the shim types always
//! route through a live exploration regardless of the facade setting.

use revelio_check::shim::{spawn, AtomicU64, Condvar, Mutex, RaceCell};
use revelio_check::sync::atomic::Ordering;
use revelio_check::sync::Arc;
use revelio_check::{explore, replay, Config, FailureKind, Schedule};

fn join<T>(handle: revelio_check::shim::JoinHandle<T>) -> T {
    match handle.join() {
        Ok(value) => value,
        Err(_) => panic!("model thread panicked"),
    }
}

#[test]
fn trivial_model_is_complete() {
    let report = explore(&Config::default(), || {
        let n = AtomicU64::new(1);
        assert_eq!(n.load(Ordering::SeqCst), 1);
    });
    report.assert_ok();
    assert!(
        report.complete,
        "single-thread model must exhaust trivially"
    );
    assert_eq!(report.executions, 1);
}

#[test]
fn atomic_rmw_increments_never_lose_updates() {
    let report = explore(&Config::exhaustive(), || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        join(t);
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    report.assert_ok();
    assert!(report.complete);
    assert!(
        report.executions > 1,
        "interleavings were actually explored"
    );
}

#[test]
fn load_store_increment_loses_an_update() {
    // The classic: read-modify-write torn into a load and a store.
    let report = explore(&Config::default(), || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        join(t);
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    });
    let failure = report.expect_failure();
    assert!(
        matches!(&failure.kind, FailureKind::Panic(msg) if msg.contains("lost update")),
        "unexpected failure: {failure}"
    );
}

#[test]
fn ab_ba_double_lock_deadlocks() {
    let report = explore(&Config::default(), || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = spawn(move || {
            let ga = a2.lock().expect("lock a");
            let mut gb = b2.lock().expect("lock b");
            *gb += *ga;
        });
        let gb = b.lock().expect("lock b");
        let mut ga = a.lock().expect("lock a");
        *ga += *gb;
        drop((ga, gb));
        join(t);
    });
    let failure = report.expect_failure();
    match &failure.kind {
        FailureKind::Deadlock(blocked) => {
            assert_eq!(blocked.len(), 2, "both threads reported: {blocked:?}");
            assert!(blocked.iter().all(|(_, op)| op.contains("lock mutex")));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn unsynchronized_cell_write_write_is_a_race() {
    let report = explore(&Config::default(), || {
        let cell = Arc::new(RaceCell::new("shared-field", 0u64));
        let cell2 = Arc::clone(&cell);
        let t = spawn(move || cell2.set(1));
        cell.set(2);
        join(t);
    });
    let failure = report.expect_failure();
    assert!(
        matches!(&failure.kind, FailureKind::DataRace(label) if label == "shared-field"),
        "unexpected failure: {failure}"
    );
}

#[test]
fn mutex_guarded_cell_is_race_free() {
    let report = explore(&Config::exhaustive(), || {
        let cell = Arc::new(RaceCell::new("guarded-field", 0u64));
        let lock = Arc::new(Mutex::new(()));
        let (cell2, lock2) = (Arc::clone(&cell), Arc::clone(&lock));
        let t = spawn(move || {
            let _g = lock2.lock().expect("lock");
            cell2.update(|v| v + 1);
        });
        {
            let _g = lock.lock().expect("lock");
            cell.update(|v| v + 1);
        }
        join(t);
        assert_eq!(cell.get(), 2);
    });
    report.assert_ok();
    assert!(report.complete);
}

#[test]
fn release_acquire_publication_orders_the_cell() {
    // Message passing: data write, then Release flag; an Acquire load of
    // the flag orders the subsequent data read.
    let report = explore(&Config::exhaustive(), || {
        let data = Arc::new(RaceCell::new("published-data", 0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let (data2, flag2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = spawn(move || {
            data2.set(42);
            flag2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.get(), 42);
        }
        join(t);
    });
    report.assert_ok();
    assert!(report.complete);
}

#[test]
fn relaxed_publication_is_flagged_as_a_race() {
    // Identical shape, but the flag is Relaxed: no happens-before edge,
    // so the data read races with the data write.
    let report = explore(&Config::default(), || {
        let data = Arc::new(RaceCell::new("relaxed-data", 0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let (data2, flag2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = spawn(move || {
            data2.set(42);
            flag2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            let _ = data.get();
        }
        join(t);
    });
    let failure = report.expect_failure();
    assert!(
        matches!(&failure.kind, FailureKind::DataRace(label) if label == "relaxed-data"),
        "unexpected failure: {failure}"
    );
}

#[test]
fn notify_before_wait_is_a_lost_wakeup_deadlock() {
    // A condvar wait with no predicate re-check: if the notify fires
    // before the wait parks, the waiter sleeps forever. The checker must
    // find the interleaving and report the deadlock.
    let report = explore(&Config::default(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock().expect("lock");
            *ready = true;
            drop(ready);
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let ready = lock.lock().expect("lock");
        // BUG (deliberate): waits unconditionally instead of re-checking
        // `*ready` — the notify can land before this wait begins.
        let _ready = cv.wait(ready).expect("wait");
        join(t);
    });
    let failure = report.expect_failure();
    assert!(
        matches!(&failure.kind, FailureKind::Deadlock(_)),
        "unexpected failure: {failure}"
    );
}

#[test]
fn wait_while_has_no_lost_wakeup() {
    let report = explore(&Config::exhaustive(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock().expect("lock") = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let guard = lock.lock().expect("lock");
        let guard = cv.wait_while(guard, |ready| !*ready).expect("wait");
        assert!(*guard);
        drop(guard);
        join(t);
    });
    report.assert_ok();
    assert!(report.complete);
}

#[test]
fn dfs_is_deterministic_and_replay_reproduces() {
    let model = || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        join(t);
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    };
    let first = explore(&Config::default(), model);
    let second = explore(&Config::default(), model);
    let (f1, f2) = (first.expect_failure(), second.expect_failure());
    assert_eq!(f1, f2, "same config must find the same failure schedule");
    assert_eq!(first.executions, second.executions);

    // The printed schedule round-trips and replays to the same failure.
    let pinned: Schedule = f1.schedule.to_string().parse().expect("parse schedule");
    assert_eq!(pinned, f1.schedule);
    let replayed = replay(&pinned, model).expect("replay must reproduce the failure");
    assert_eq!(replayed.kind, f1.kind);
}

#[test]
fn random_mode_is_seed_deterministic() {
    let model = || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        join(t);
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    };
    let a = explore(&Config::random(0xDEAD_BEEF, 500), model);
    let b = explore(&Config::random(0xDEAD_BEEF, 500), model);
    match (&a.failure, &b.failure) {
        (Some(fa), Some(fb)) => assert_eq!(fa, fb),
        (None, None) => {}
        other => panic!("seed determinism violated: {other:?}"),
    }
}

#[test]
fn replay_diverges_on_a_stale_schedule() {
    // A schedule that demands thread 3 at the first choice can never be
    // honoured by a single-thread model.
    let failure = replay(&Schedule(vec![3]), || {
        let n = AtomicU64::new(0);
        n.store(1, Ordering::SeqCst);
    });
    match failure {
        Some(f) => assert!(
            matches!(f.kind, FailureKind::ReplayDiverged { step: 0 }),
            "unexpected failure: {f}"
        ),
        None => panic!("stale schedule must be reported as divergence"),
    }
}

#[test]
fn step_limit_catches_runaway_schedules() {
    let cfg = Config {
        max_steps: 50,
        ..Config::default()
    };
    let report = explore(&cfg, || {
        let n = AtomicU64::new(0);
        loop {
            if n.fetch_add(1, Ordering::Relaxed) > 1_000 {
                break;
            }
        }
    });
    let failure = report.expect_failure();
    assert!(matches!(failure.kind, FailureKind::StepLimit));
}

#[test]
fn channel_send_happens_before_recv() {
    let report = explore(&Config::exhaustive(), || {
        let data = Arc::new(RaceCell::new("channel-payload", 0u64));
        let (tx, rx) = revelio_check::shim::mpsc::channel::<u64>();
        let data2 = Arc::clone(&data);
        let t = spawn(move || {
            data2.set(7);
            tx.send(7).expect("send");
        });
        let got = rx.recv().expect("recv");
        assert_eq!(data.get(), got, "send ordered the cell write");
        join(t);
    });
    report.assert_ok();
    assert!(report.complete);
}

#[test]
fn recv_after_all_senders_drop_disconnects() {
    let report = explore(&Config::exhaustive(), || {
        let (tx, rx) = revelio_check::shim::mpsc::channel::<u64>();
        let t = spawn(move || {
            tx.send(1).expect("send");
            // tx drops here
        });
        assert_eq!(rx.recv().ok(), Some(1));
        assert!(rx.recv().is_err(), "drained + senderless must disconnect");
        join(t);
    });
    report.assert_ok();
    assert!(report.complete);
}

#[test]
fn preemption_bound_zero_misses_what_bound_one_finds() {
    // Bound semantics check: a lost update needs at least one unforced
    // context switch, so bound 0 explores only switch-free schedules.
    let model = || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        join(t);
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    };
    let strict = explore(&Config::bounded(0), model);
    strict.assert_ok();
    assert!(strict.complete);
    explore(&Config::bounded(1), model).expect_failure();
}

#[test]
fn shim_types_fall_back_to_std_outside_a_model() {
    // No explore() in sight: every shim op must behave like plain std.
    let n = Arc::new(AtomicU64::new(0));
    let m = Arc::new(Mutex::new(Vec::new()));
    let (tx, rx) = revelio_check::shim::mpsc::channel::<u64>();
    let handles: Vec<_> = (0..4u64)
        .map(|i| {
            let (n2, m2, tx2) = (Arc::clone(&n), Arc::clone(&m), tx.clone());
            spawn(move || {
                n2.fetch_add(i, Ordering::SeqCst);
                m2.lock().expect("lock").push(i);
                tx2.send(i).expect("send");
            })
        })
        .collect();
    drop(tx);
    let mut received: Vec<u64> = Vec::new();
    while let Ok(v) = rx.recv() {
        received.push(v);
    }
    for h in handles {
        join(h);
    }
    assert_eq!(n.load(Ordering::SeqCst), 6);
    assert_eq!(m.lock().expect("lock").len(), 4);
    received.sort_unstable();
    assert_eq!(received, vec![0, 1, 2, 3]);
}
