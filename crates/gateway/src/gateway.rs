//! The gateway process: accept loop, request dispatch, backend pool, and
//! the health-check/failover state machine.
//!
//! The gateway speaks the same wire protocol as `revelio-serve` on both
//! sides. Requests are dispatched by kind:
//!
//! - `Explain` is **routed**: the ring hashes `(model, graph_id, target)`
//!   to one owning shard, preserving artifact-cache and warm-start
//!   locality. Transport failures re-route to the next live shard
//!   (bounded attempts, each failed backend excluded), while `Busy` and
//!   typed server errors propagate to the caller verbatim — the gateway
//!   never hides backpressure.
//! - `RegisterModel` **fans out**: every healthy shard gets a replica, so
//!   any owner can serve any key. The gateway assigns the caller-visible
//!   model id (its registration-log index) and keeps a per-backend id
//!   map, so a backend whose own id space diverged (e.g. it was replayed
//!   after a restart) is still addressed correctly.
//! - `Trace` / `FetchExplanation` / `ListExplanations` **scatter**: job
//!   ids are shard-local, so the gateway asks every healthy shard and
//!   merges (first hit for point reads, id-sorted union for lists).
//! - `Stats` **aggregates**: live per-backend stats merge into one
//!   fleet-wide [`ServerStats`] with a [`GatewayStats`] tail.
//! - `Shutdown` fans out to every healthy backend, then stops the
//!   gateway itself.
//!
//! Health: a poller issues `Stats` to every backend each interval. After
//! [`GatewayConfig::fail_after`] consecutive errors (polls or forwards) a
//! backend is marked dead and the ring walks past its points; a
//! successful poll on a dead backend triggers a full registration replay
//! and then re-admits it.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use revelio_gnn::GnnConfig;
use revelio_server::server::{read_frame_cancellable, POLL_INTERVAL};
use revelio_server::wire::{
    write_frame, ErrorKind, ExplainRequest, GatewayBackendStats, GatewayStats, Request, Response,
    ServerStats, WireExplanationSummary, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use revelio_server::{Client, ClientConfig, ClientError};
use revelio_trace::{hex_trace_id, AssembledSpan, AssembledTrace, Sampler, TraceContext};

use crate::ring::{route_key, Ring};

/// Gateway configuration; [`GatewayConfig::validate`] is called by
/// [`Gateway::start`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address; port 0 picks a free port (see [`Gateway::local_addr`]).
    pub addr: String,
    /// Backend addresses (`host:port`), one per shard, in ring order.
    pub shards: Vec<String>,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Health-poll period.
    pub health_interval: Duration,
    /// Consecutive errors (health polls or forwards) before a backend is
    /// marked dead and its ring segments re-route.
    pub fail_after: u32,
    /// Distinct backends tried for one routed request before giving up.
    pub forward_attempts: u32,
    /// Idle connections kept per backend.
    pub pool_capacity: usize,
    /// Per-frame payload cap on the client-facing listener.
    pub max_frame_len: usize,
    /// Budget for one in-progress client frame to finish arriving.
    pub read_timeout: Duration,
    /// Budget for writing one response frame to a client.
    pub write_timeout: Duration,
    /// Budget for a forwarded request's response (explanations can
    /// legitimately take a while).
    pub backend_read_timeout: Duration,
    /// Budget for one health poll; short, so a hung backend is detected
    /// within a few intervals rather than a full request timeout.
    pub health_timeout: Duration,
    /// Head-based sampling rate in `[0, 1]`: each routed `Explain`
    /// without an inherited trace context is traced fleet-wide with this
    /// probability. `0.0` (the default) traces only on explicit request.
    pub trace_sample_rate: f64,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: Vec::new(),
            vnodes: 64,
            health_interval: Duration::from_millis(500),
            fail_after: 3,
            forward_attempts: 3,
            pool_capacity: 4,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            backend_read_timeout: Duration::from_secs(120),
            health_timeout: Duration::from_secs(2),
            trace_sample_rate: 0.0,
        }
    }
}

/// Why a [`GatewayConfig`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayConfigError {
    /// `--shards` was empty.
    NoShards,
    /// `vnodes` was zero.
    ZeroVnodes,
    /// `fail_after` was zero (every backend would be born dead).
    ZeroFailAfter,
    /// `forward_attempts` was zero (no request could ever be forwarded).
    ZeroForwardAttempts,
    /// `trace_sample_rate` was not a number in `[0, 1]`.
    BadSampleRate,
}

impl std::fmt::Display for GatewayConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayConfigError::NoShards => write!(f, "at least one shard address is required"),
            GatewayConfigError::ZeroVnodes => write!(f, "vnodes must be at least 1"),
            GatewayConfigError::ZeroFailAfter => write!(f, "fail-after must be at least 1"),
            GatewayConfigError::ZeroForwardAttempts => {
                write!(f, "forward-attempts must be at least 1")
            }
            GatewayConfigError::BadSampleRate => {
                write!(f, "trace-sample-rate must be a number in 0..=1")
            }
        }
    }
}

impl std::error::Error for GatewayConfigError {}

impl GatewayConfig {
    /// Checks the configuration for values that could never serve.
    pub fn validate(&self) -> Result<(), GatewayConfigError> {
        if self.shards.is_empty() {
            return Err(GatewayConfigError::NoShards);
        }
        if self.vnodes == 0 {
            return Err(GatewayConfigError::ZeroVnodes);
        }
        if self.fail_after == 0 {
            return Err(GatewayConfigError::ZeroFailAfter);
        }
        if self.forward_attempts == 0 {
            return Err(GatewayConfigError::ZeroForwardAttempts);
        }
        if !(0.0..=1.0).contains(&self.trace_sample_rate) {
            return Err(GatewayConfigError::BadSampleRate);
        }
        Ok(())
    }
}

/// Why [`Gateway::start`] failed.
#[derive(Debug)]
pub enum GatewayStartError {
    /// Binding or configuring the listener failed.
    Io(std::io::Error),
    /// The configuration was rejected.
    Config(GatewayConfigError),
}

impl std::fmt::Display for GatewayStartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayStartError::Io(e) => write!(f, "bind failed: {e}"),
            GatewayStartError::Config(e) => write!(f, "config: {e}"),
        }
    }
}

impl std::error::Error for GatewayStartError {}

impl From<std::io::Error> for GatewayStartError {
    fn from(e: std::io::Error) -> Self {
        GatewayStartError::Io(e)
    }
}

impl From<GatewayConfigError> for GatewayStartError {
    fn from(e: GatewayConfigError) -> Self {
        GatewayStartError::Config(e)
    }
}

/// Locks a mutex, recovering the inner value from a poisoned guard (the
/// gateway's shared state stays usable even if a handler panicked).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// One backend shard: connection pool, health state, and counters.
struct Backend {
    addr: String,
    /// Idle pooled connections; checkout pops, successful calls check
    /// back in (up to [`GatewayConfig::pool_capacity`]).
    pool: Mutex<Vec<Client>>,
    healthy: AtomicBool,
    consecutive_failures: AtomicU32,
    /// Gateway model id (registration-log index) → this backend's own
    /// model id; `None` while a registration hasn't reached it yet.
    model_ids: Mutex<Vec<Option<u32>>>,
    forwarded: AtomicU64,
    errors: AtomicU64,
    busy: AtomicU64,
    health_checks: AtomicU64,
    // Cache/job counters lifted from the most recent stats poll.
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    jobs_completed: AtomicU64,
}

impl Backend {
    fn new(addr: String) -> Backend {
        Backend {
            addr,
            pool: Mutex::new(Vec::new()),
            healthy: AtomicBool::new(true),
            consecutive_failures: AtomicU32::new(0),
            model_ids: Mutex::new(Vec::new()),
            forwarded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            health_checks: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
        }
    }

    fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }

    fn model_id(&self, gateway_id: usize) -> Option<u32> {
        lock(&self.model_ids).get(gateway_id).copied().flatten()
    }

    fn set_model_id(&self, gateway_id: usize, backend_id: u32) {
        let mut ids = lock(&self.model_ids);
        if ids.len() <= gateway_id {
            ids.resize(gateway_id + 1, None);
        }
        ids[gateway_id] = Some(backend_id);
    }

    fn snapshot(&self) -> GatewayBackendStats {
        GatewayBackendStats {
            addr: self.addr.clone(),
            healthy: self.is_healthy(),
            consecutive_failures: self.consecutive_failures.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            health_checks: self.health_checks.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
        }
    }
}

/// How many assembled-trace records the gateway retains (drop-oldest),
/// mirroring the backend's own trace retention window.
const ASSEMBLY_RETENTION: usize = 128;

/// Seed for gateway-minted trace ids and sampling decisions; fixed, so a
/// replayed workload produces the same ids (the repo-wide determinism
/// stance).
const TRACE_SEED: u64 = 0x6761_7465_7761_7921;

/// The gateway half of one traced request, buffered until a client asks
/// for the assembled trace.
#[derive(Clone)]
struct TraceRecord {
    hi: u64,
    lo: u64,
    /// Index of the backend that served the explain.
    owner: usize,
    /// µs offset of the successful forward on the route timeline; the
    /// backend fragment is replayed anchored here, so its spans land
    /// inside the forward span instead of at the origin.
    anchor_us: u64,
    /// Gateway-side spans (lane 0): route, checkouts, forwards, failover
    /// hops.
    spans: Vec<AssembledSpan>,
}

/// State shared between the acceptor, handlers, and the health poller.
struct Shared {
    cfg: GatewayConfig,
    ring: Ring,
    backends: Vec<Backend>,
    /// Every accepted registration in arrival order; a backend's gateway
    /// model ids are indices into this log. Held across fan-out and
    /// replay so registrations reach every backend in the same order.
    registrations: Mutex<Vec<(GnnConfig, Vec<Vec<f32>>)>>,
    stop: AtomicBool,
    routed: AtomicU64,
    fanout: AtomicU64,
    rerouted: AtomicU64,
    scatter: AtomicU64,
    /// Head-based sampler for routed `Explain`s without an inherited
    /// context; off (`rate 0`) it costs one branch per request.
    sampler: Sampler,
    /// Counter feeding [`TraceContext::generate`] so minted ids are
    /// distinct and deterministic.
    trace_counter: AtomicU64,
    trace_sampled: AtomicU64,
    trace_dropped: AtomicU64,
    /// Bounded drop-oldest buffer of gateway trace halves, keyed by the
    /// global trace id; the assembly layer stitches these with the owning
    /// shard's fragment on demand.
    assembled: Mutex<std::collections::VecDeque<TraceRecord>>,
}

impl Shared {
    fn backend_client_cfg(&self, read_timeout: Duration) -> ClientConfig {
        ClientConfig {
            max_frame_len: self.cfg.max_frame_len,
            read_timeout,
            write_timeout: self.cfg.write_timeout,
            // The gateway does its own bounded re-routing; the underlying
            // client must not retry on its behalf.
            max_attempts: 1,
            ..ClientConfig::default()
        }
    }

    /// One request/response exchange with a backend, through the pool.
    ///
    /// A pooled connection that fails in transport is dropped and the
    /// call retried once on a fresh connection (the backend may simply
    /// have restarted since the connection was pooled); a fresh
    /// connection's failure is the backend's failure.
    fn call(
        &self,
        b: &Backend,
        req: &Request,
        read_timeout: Duration,
    ) -> Result<Response, ClientError> {
        self.call_timed(b, req, read_timeout).0
    }

    /// [`Shared::call`] that also reports how long obtaining a usable
    /// connection took (pool pop, or a fresh connect when the pool was
    /// empty or the pooled stream was stale) — the "pool checkout" span
    /// of a traced route.
    fn call_timed(
        &self,
        b: &Backend,
        req: &Request,
        read_timeout: Duration,
    ) -> (Result<Response, ClientError>, Duration) {
        let t0 = Instant::now();
        // Note: pop via a scoped guard — an `if let` on `lock(..).pop()`
        // would hold the pool mutex across the request and deadlock
        // against `checkin`.
        let pooled = lock(&b.pool).pop();
        if let Some(mut c) = pooled {
            let checkout = t0.elapsed();
            match c.request(req) {
                Ok(resp) => {
                    self.checkin(b, c);
                    return (Ok(resp), checkout);
                }
                Err(e) if e.is_transport() => { /* stale pooled stream; retry fresh */ }
                Err(e) => return (Err(e), checkout),
            }
        }
        let mut c = match Client::connect_with(&b.addr, self.backend_client_cfg(read_timeout)) {
            Ok(c) => c,
            Err(e) => return (Err(e), t0.elapsed()),
        };
        let checkout = t0.elapsed();
        match c.request(req) {
            Ok(resp) => {
                self.checkin(b, c);
                (Ok(resp), checkout)
            }
            Err(e) => (Err(e), checkout),
        }
    }

    fn checkin(&self, b: &Backend, c: Client) {
        let mut pool = lock(&b.pool);
        if pool.len() < self.cfg.pool_capacity {
            pool.push(c);
        }
    }

    fn record_failure(&self, b: &Backend) {
        b.errors.fetch_add(1, Ordering::Relaxed);
        let fails = b.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if fails >= self.cfg.fail_after {
            b.healthy.store(false, Ordering::Release);
            // Pooled connections to a dead backend are stale by
            // definition; drop them so recovery starts clean.
            lock(&b.pool).clear();
        }
    }

    fn record_success(&self, b: &Backend) {
        b.consecutive_failures.store(0, Ordering::Relaxed);
    }

    fn gateway_stats(&self) -> GatewayStats {
        GatewayStats {
            routed: self.routed.load(Ordering::Relaxed),
            fanout: self.fanout.load(Ordering::Relaxed),
            rerouted: self.rerouted.load(Ordering::Relaxed),
            scatter: self.scatter.load(Ordering::Relaxed),
            backends: self.backends.iter().map(Backend::snapshot).collect(),
        }
    }

    // ------------------------------------------------------------------
    // Dispatch.

    fn dispatch(&self, req: Request) -> (Response, bool) {
        match req {
            Request::Ping => (
                Response::Pong {
                    version: PROTOCOL_VERSION,
                },
                false,
            ),
            Request::RegisterModel { config, state } => (self.register(config, state), false),
            Request::Explain(req) => (self.route_explain(req), false),
            Request::Stats => (self.aggregate_stats(), false),
            Request::Trace(id, context) => (self.scatter_trace(id, context), false),
            Request::AssembledTrace { hi, lo } => (self.assemble_trace(hi, lo), false),
            Request::FetchExplanation(id, context) => (self.scatter_fetch(id, context), false),
            Request::ListExplanations => (self.scatter_list(), false),
            Request::Shutdown => {
                // Stop the fleet first (best-effort), then ourselves; the
                // ack closes the connection.
                for b in &self.backends {
                    if b.is_healthy() {
                        let _ = self.call(b, &Request::Shutdown, self.cfg.health_timeout);
                    }
                }
                self.stop.store(true, Ordering::Release);
                (Response::ShutdownAck, true)
            }
        }
    }

    /// Replicates a registration to every healthy backend. The
    /// caller-visible id is the registration-log index; per-backend ids
    /// are recorded in each backend's map.
    fn register(&self, config: GnnConfig, state: Vec<Vec<f32>>) -> Response {
        let mut log = lock(&self.registrations);
        let gateway_id = log.len() as u32;
        let mut accepted = 0usize;
        for b in &self.backends {
            if !b.is_healthy() {
                continue; // will be replayed on re-admission
            }
            let req = Request::RegisterModel {
                config: config.clone(),
                state: state.clone(),
            };
            match self.call(b, &req, self.cfg.backend_read_timeout) {
                Ok(Response::ModelRegistered { model }) => {
                    b.set_model_id(gateway_id as usize, model);
                    self.record_success(b);
                    self.fanout.fetch_add(1, Ordering::Relaxed);
                    accepted += 1;
                }
                Ok(Response::Error { kind, message }) => {
                    // Validation is deterministic: every backend would
                    // refuse the same model, so refuse without logging it.
                    return Response::Error { kind, message };
                }
                Ok(_) => {
                    return Response::Error {
                        kind: ErrorKind::Internal,
                        message: format!("backend {} answered out of protocol", b.addr),
                    };
                }
                Err(e) => {
                    // The backend misses this registration for now; the
                    // health poller replays the log when it recovers.
                    self.record_failure(b);
                    let _ = e;
                }
            }
        }
        if accepted == 0 {
            return Response::Error {
                kind: ErrorKind::Internal,
                message: "no healthy backend accepted the registration".to_owned(),
            };
        }
        log.push((config, state));
        Response::ModelRegistered { model: gateway_id }
    }

    /// Routes one explanation to the ring owner of its key, re-routing
    /// past backends that fail in transport. `Busy` and typed errors from
    /// a backend are answers, not failures: they propagate verbatim.
    ///
    /// Traced requests (inherited context, explicit `control.trace`, or a
    /// local sampler hit) additionally record the gateway's own spans —
    /// route, per-attempt pool checkout and forward, failover hops — into
    /// the assembly buffer under the global trace id.
    fn route_explain(&self, req: ExplainRequest) -> Response {
        let gateway_model = req.model as usize;
        if gateway_model >= lock(&self.registrations).len() {
            return Response::Error {
                kind: ErrorKind::UnknownModel,
                message: format!("model {} was never registered via this gateway", req.model),
            };
        }
        self.routed.fetch_add(1, Ordering::Relaxed);
        // Head-based sampling: an inherited context carries the upstream
        // decision; otherwise flip the coin here, once, and mint a fresh
        // 128-bit id. Downstream hops never re-decide.
        let (ctx, traced) = match req.context {
            Some(c) => (c, c.sampled || req.control.trace),
            None => {
                let sampled = self.sampler.sample() || req.control.trace;
                if sampled {
                    let n = self.trace_counter.fetch_add(1, Ordering::Relaxed);
                    (TraceContext::generate(TRACE_SEED, n), true)
                } else {
                    (
                        TraceContext {
                            trace_hi: 0,
                            trace_lo: 0,
                            parent_span: 0,
                            sampled: false,
                        },
                        false,
                    )
                }
            }
        };
        if traced {
            self.trace_sampled.fetch_add(1, Ordering::Relaxed);
        } else {
            self.trace_dropped.fetch_add(1, Ordering::Relaxed);
        }
        let route_start = Instant::now();
        let mut spans: Vec<AssembledSpan> = Vec::new();
        let mut outcome: Option<(Response, usize, u64)> = None;
        let key = route_key(req.model, req.graph_id, req.target);
        let mut excluded = vec![false; self.backends.len()];
        for attempt in 0..self.cfg.forward_attempts {
            let owner = self.ring.owner_where(key, |s| {
                !excluded[s]
                    && self.backends[s].is_healthy()
                    && self.backends[s].model_id(gateway_model).is_some()
            });
            let Some(owner) = owner else { break };
            let b = &self.backends[owner];
            let Some(backend_model) = b.model_id(gateway_model) else {
                excluded[owner] = true;
                continue;
            };
            if attempt > 0 {
                self.rerouted.fetch_add(1, Ordering::Relaxed);
            }
            let mut fwd = req.clone();
            fwd.model = backend_model;
            if traced {
                // The backend parents under the routing span and journals
                // its fragment under the global id's low half.
                fwd.context = Some(TraceContext {
                    parent_span: 1,
                    sampled: true,
                    ..ctx
                });
            }
            let attempt_start = us(route_start.elapsed());
            let (result, checkout) =
                self.call_timed(b, &Request::Explain(fwd), self.cfg.backend_read_timeout);
            let forward_start = attempt_start + us(checkout);
            if traced {
                spans.push(AssembledSpan {
                    lane: 0,
                    name: format!("checkout shard-{owner}"),
                    start_us: attempt_start,
                    dur_us: us(checkout),
                });
            }
            match result {
                Ok(resp @ Response::Busy { .. }) => {
                    // Backpressure is the backend's answer; hiding it
                    // behind gateway-side retries would defeat admission
                    // control. The caller owns the backoff policy.
                    b.busy.fetch_add(1, Ordering::Relaxed);
                    self.record_success(b);
                    outcome = Some((resp, owner, forward_start));
                    break;
                }
                Ok(resp) => {
                    b.forwarded.fetch_add(1, Ordering::Relaxed);
                    self.record_success(b);
                    if traced {
                        spans.push(AssembledSpan {
                            lane: 0,
                            name: format!("forward shard-{owner}"),
                            start_us: forward_start,
                            dur_us: us(route_start.elapsed()).saturating_sub(forward_start),
                        });
                    }
                    outcome = Some((resp, owner, forward_start));
                    break;
                }
                Err(e) => {
                    debug_assert!(e.is_transport(), "Client::request only fails in transport");
                    self.record_failure(b);
                    excluded[owner] = true;
                    if traced {
                        spans.push(AssembledSpan {
                            lane: 0,
                            name: format!("failover-hop shard-{owner}"),
                            start_us: attempt_start,
                            dur_us: us(route_start.elapsed()).saturating_sub(attempt_start),
                        });
                    }
                }
            }
        }
        let Some((resp, owner, anchor_us)) = outcome else {
            return Response::Error {
                kind: ErrorKind::Internal,
                message: "no live shard could serve this key".to_owned(),
            };
        };
        if traced {
            spans.insert(
                0,
                AssembledSpan {
                    lane: 0,
                    name: "route".to_owned(),
                    start_us: 0,
                    dur_us: us(route_start.elapsed()),
                },
            );
            self.remember_trace(TraceRecord {
                hi: ctx.trace_hi,
                lo: ctx.trace_lo,
                owner,
                anchor_us,
                spans,
            });
        }
        resp
    }

    /// Buffers the gateway half of a traced route (bounded, drop-oldest;
    /// a re-used id replaces its previous record).
    fn remember_trace(&self, rec: TraceRecord) {
        let mut buf = lock(&self.assembled);
        buf.retain(|r| !(r.hi == rec.hi && r.lo == rec.lo));
        while buf.len() >= ASSEMBLY_RETENTION {
            buf.pop_front();
        }
        buf.push_back(rec);
    }

    /// Resolves a global (or `(0, 0)` = newest) trace id against the
    /// assembly buffer, fetches the owning shard's fragment, and stitches
    /// both into one cross-process trace: lane 0 is the gateway, lane 1
    /// the shard, with backend spans anchored at the forward offset. A
    /// shard whose fragment already aged out still yields the gateway
    /// lane (with `dropped` untouched — the spans were never captured
    /// here).
    fn assemble_trace(&self, hi: u64, lo: u64) -> Response {
        self.scatter.fetch_add(1, Ordering::Relaxed);
        let record = {
            let buf = lock(&self.assembled);
            if hi == 0 && lo == 0 {
                buf.back().cloned()
            } else {
                // `hi == 0` matches on the low half alone — all a caller
                // has when they only saw the `trace_id` echoed on an
                // Explained response.
                buf.iter()
                    .rev()
                    .find(|r| r.lo == lo && (hi == 0 || r.hi == hi))
                    .cloned()
            }
        };
        let Some(rec) = record else {
            return Response::Error {
                kind: ErrorKind::UnknownTrace,
                message: format!(
                    "trace {} is not in the gateway's assembly window",
                    hex_trace_id(hi, lo)
                ),
            };
        };
        let mut out = AssembledTrace {
            trace_hi: rec.hi,
            trace_lo: rec.lo,
            lanes: vec!["gateway".to_owned()],
            spans: rec.spans.clone(),
            dropped: 0,
        };
        let b = &self.backends[rec.owner];
        if b.is_healthy() {
            match self.call(
                b,
                &Request::AssembledTrace {
                    hi: rec.hi,
                    lo: rec.lo,
                },
                self.cfg.backend_read_timeout,
            ) {
                Ok(Response::Assembled(frag)) => {
                    self.record_success(b);
                    let lane = out.lanes.len() as u32;
                    out.lanes.push(format!("shard-{} ({})", rec.owner, b.addr));
                    for s in frag.spans {
                        out.spans.push(AssembledSpan {
                            lane,
                            start_us: s.start_us.saturating_add(rec.anchor_us),
                            ..s
                        });
                    }
                    out.dropped += frag.dropped;
                }
                Ok(_) => self.record_success(b),
                Err(_) => self.record_failure(b),
            }
        }
        Response::Assembled(Box::new(out))
    }

    /// Merges live stats from every healthy backend and attaches the
    /// gateway tail.
    fn aggregate_stats(&self) -> Response {
        let mut merged = ServerStats::default();
        for b in &self.backends {
            if !b.is_healthy() {
                continue;
            }
            match self.call(b, &Request::Stats, self.cfg.health_timeout) {
                Ok(Response::Stats(s, _)) => {
                    self.record_success(b);
                    self.update_poll_counters(b, &s);
                    merged.merge(&s);
                }
                Ok(_) => {}
                Err(_) => self.record_failure(b),
            }
        }
        // The gateway makes its own sampling decisions on top of whatever
        // the backends recorded for direct traffic.
        merged.trace_sampled += self.trace_sampled.load(Ordering::Relaxed);
        merged.trace_dropped += self.trace_dropped.load(Ordering::Relaxed);
        Response::Stats(Box::new(merged), Some(Box::new(self.gateway_stats())))
    }

    fn update_poll_counters(&self, b: &Backend, s: &ServerStats) {
        b.cache_hits.store(s.runtime.cache_hits, Ordering::Relaxed);
        b.cache_misses
            .store(s.runtime.cache_misses, Ordering::Relaxed);
        b.jobs_completed
            .store(s.runtime.jobs_completed, Ordering::Relaxed);
    }

    /// Point read for one trace. A *global* trace id resolves through the
    /// assembly buffer straight to its owning shard; ids the gateway never
    /// routed (shard-local job ids) fall back to the fleet scatter. A
    /// miss everywhere is a typed [`ErrorKind::UnknownTrace`], not an
    /// empty result.
    fn scatter_trace(&self, id: u64, context: Option<TraceContext>) -> Response {
        self.scatter.fetch_add(1, Ordering::Relaxed);
        let known_owner = lock(&self.assembled)
            .iter()
            .rev()
            .find(|r| r.lo == id)
            .map(|r| r.owner);
        let targeted = known_owner.map(|o| &self.backends[o]);
        let scan = targeted.into_iter().chain(
            self.backends
                .iter()
                // Don't re-ask the owner during the fallback scatter.
                .filter(|b| !std::ptr::eq(*b, targeted.map_or(std::ptr::null(), |t| t))),
        );
        for b in scan {
            if !b.is_healthy() {
                continue;
            }
            match self.call(
                b,
                &Request::Trace(id, context),
                self.cfg.backend_read_timeout,
            ) {
                Ok(Response::Trace(Some(t))) => {
                    self.record_success(b);
                    return Response::Trace(Some(t));
                }
                Ok(_) => self.record_success(b),
                Err(_) => self.record_failure(b),
            }
        }
        Response::Error {
            kind: ErrorKind::UnknownTrace,
            message: format!("no shard retains a trace under id {id}"),
        }
    }

    fn scatter_fetch(&self, id: u64, context: Option<TraceContext>) -> Response {
        self.scatter.fetch_add(1, Ordering::Relaxed);
        let mut last_error: Option<Response> = None;
        let mut any_negative = false;
        for b in &self.backends {
            if !b.is_healthy() {
                continue;
            }
            match self.call(
                b,
                &Request::FetchExplanation(id, context),
                self.cfg.backend_read_timeout,
            ) {
                Ok(Response::Explanation(Some(e))) => {
                    self.record_success(b);
                    return Response::Explanation(Some(e));
                }
                Ok(Response::Explanation(None)) => {
                    self.record_success(b);
                    any_negative = true;
                }
                Ok(resp @ Response::Error { .. }) => {
                    self.record_success(b);
                    last_error = Some(resp);
                }
                Ok(_) => {}
                Err(_) => self.record_failure(b),
            }
        }
        match (any_negative, last_error) {
            // Some shard could have held it and answered "no" — not found.
            (true, _) => Response::Explanation(None),
            // Every reachable shard refused (e.g. the whole fleet runs
            // storeless): surface the refusal rather than a silent None.
            (false, Some(err)) => err,
            (false, None) => Response::Explanation(None),
        }
    }

    /// List scattered to the fleet; the union is sorted by job id. Job
    /// ids from different shards may collide (each backend numbers its
    /// own jobs), so entries are *not* deduplicated.
    fn scatter_list(&self) -> Response {
        self.scatter.fetch_add(1, Ordering::Relaxed);
        let mut all: Vec<WireExplanationSummary> = Vec::new();
        let mut last_error: Option<Response> = None;
        let mut any_ok = false;
        for b in &self.backends {
            if !b.is_healthy() {
                continue;
            }
            match self.call(b, &Request::ListExplanations, self.cfg.backend_read_timeout) {
                Ok(Response::ExplanationList(list)) => {
                    self.record_success(b);
                    all.extend(list);
                    any_ok = true;
                }
                Ok(resp @ Response::Error { .. }) => {
                    self.record_success(b);
                    last_error = Some(resp);
                }
                Ok(_) => {}
                Err(_) => self.record_failure(b),
            }
        }
        if !any_ok {
            if let Some(err) = last_error {
                return err;
            }
        }
        all.sort_by_key(|s| s.job_id);
        Response::ExplanationList(all)
    }

    // ------------------------------------------------------------------
    // Health.

    /// One health pass over the fleet: poll `Stats` everywhere, demote
    /// repeat offenders, replay-and-re-admit recovered backends.
    fn health_pass(&self) {
        for b in &self.backends {
            match self.call(b, &Request::Stats, self.cfg.health_timeout) {
                Ok(Response::Stats(s, _)) => {
                    b.health_checks.fetch_add(1, Ordering::Relaxed);
                    self.update_poll_counters(b, &s);
                    if b.is_healthy() {
                        self.record_success(b);
                    } else {
                        self.try_readmit(b);
                    }
                }
                Ok(_) | Err(_) => self.record_failure(b),
            }
        }
    }

    /// Replays the registration log to a recovered backend and re-admits
    /// it. Holding the log lock serializes replay against new
    /// registrations, so the backend sees the same order as everyone
    /// else. A backend that only lost connectivity (no restart) receives
    /// duplicate registrations — its old ids stay valid and the id map is
    /// rebuilt against the fresh ones, so correctness only costs memory.
    fn try_readmit(&self, b: &Backend) {
        let log = lock(&self.registrations);
        let mut fresh_ids: Vec<Option<u32>> = Vec::with_capacity(log.len());
        for (config, state) in log.iter() {
            let req = Request::RegisterModel {
                config: config.clone(),
                state: state.clone(),
            };
            match self.call(b, &req, self.cfg.backend_read_timeout) {
                Ok(Response::ModelRegistered { model }) => fresh_ids.push(Some(model)),
                _ => {
                    // Relapsed mid-replay; stay dead and try again on the
                    // next pass.
                    self.record_failure(b);
                    return;
                }
            }
        }
        *lock(&b.model_ids) = fresh_ids;
        b.consecutive_failures.store(0, Ordering::Relaxed);
        b.healthy.store(true, Ordering::Release);
    }
}

/// A running gateway; dropping it stops and joins every thread.
pub struct Gateway {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<thread::JoinHandle<()>>,
    health: Option<thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl Gateway {
    /// Binds, spawns the acceptor and the health poller, and returns
    /// immediately; the gateway is accepting once this returns. Backends
    /// start presumed-healthy and the first poll corrects the optimism.
    ///
    /// # Errors
    ///
    /// I/O errors from binding, or an invalid [`GatewayConfig`].
    pub fn start(cfg: GatewayConfig) -> Result<Gateway, GatewayStartError> {
        cfg.validate()?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let ring = Ring::new(cfg.shards.len(), cfg.vnodes);
        let backends = cfg.shards.iter().cloned().map(Backend::new).collect();
        let sampler = Sampler::new(cfg.trace_sample_rate, TRACE_SEED);
        let shared = Arc::new(Shared {
            cfg,
            ring,
            backends,
            registrations: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            routed: AtomicU64::new(0),
            fanout: AtomicU64::new(0),
            rerouted: AtomicU64::new(0),
            scatter: AtomicU64::new(0),
            sampler,
            trace_counter: AtomicU64::new(0),
            trace_sampled: AtomicU64::new(0),
            trace_dropped: AtomicU64::new(0),
            assembled: Mutex::new(std::collections::VecDeque::new()),
        });
        let handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            thread::Builder::new()
                .name("gateway-acceptor".to_owned())
                .spawn(move || accept_loop(&listener, &shared, &handlers))?
        };
        let health = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("gateway-health".to_owned())
                .spawn(move || health_loop(&shared))?
        };
        Ok(Gateway {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            health: Some(health),
            handlers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether a shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Requests shutdown without blocking.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
    }

    /// Current gateway counters and per-backend health.
    pub fn gateway_stats(&self) -> GatewayStats {
        self.shared.gateway_stats()
    }

    /// Stops and joins all threads, returning the final gateway stats.
    pub fn shutdown(mut self) -> GatewayStats {
        self.stop();
        self.join_threads();
        self.shared.gateway_stats()
    }

    /// Blocks until the gateway stops (a `Shutdown` request over the
    /// wire) and all threads are joined; returns the final stats.
    pub fn wait(mut self) -> GatewayStats {
        while !self.stopping() {
            thread::sleep(POLL_INTERVAL);
        }
        self.join_threads();
        self.shared.gateway_stats()
    }

    fn join_threads(&mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
        let drained: Vec<_> = lock(&self.handlers).drain(..).collect();
        for h in drained {
            let _ = h.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.stop();
        self.join_threads();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reap finished handlers so the vec doesn't grow without
                // bound on long-lived gateways.
                lock(handlers).retain(|h| !h.is_finished());
                let shared = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name("gateway-conn".to_owned())
                    .spawn(move || handle_connection(stream, &shared));
                if let Ok(h) = spawned {
                    lock(handlers).push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    // Short socket timeouts turn blocking reads into a stop-flag poll
    // loop, exactly like the backend server's connection handler.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.set_nodelay(true);

    loop {
        let frame = read_frame_cancellable(
            &mut stream,
            shared.cfg.max_frame_len,
            shared.cfg.read_timeout,
            &shared.stop,
        );
        let payload = match frame {
            Ok(Some((payload, _len))) => payload,
            Ok(None) => return,
            Err(e) => {
                let resp = Response::Error {
                    kind: ErrorKind::Malformed,
                    message: e.to_string(),
                };
                let _ = write_frame(&mut stream, &resp.encode(), shared.cfg.max_frame_len);
                return;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                let resp = Response::Error {
                    kind: ErrorKind::Malformed,
                    message: e.to_string(),
                };
                let _ = write_frame(&mut stream, &resp.encode(), shared.cfg.max_frame_len);
                return;
            }
        };
        let (response, close_after) = shared.dispatch(request);
        let wrote = write_frame(&mut stream, &response.encode(), shared.cfg.max_frame_len);
        if wrote.is_err() || close_after {
            return;
        }
    }
}

fn health_loop(shared: &Arc<Shared>) {
    let mut last: Option<Instant> = None; // None → poll immediately
    while !shared.stop.load(Ordering::Acquire) {
        let due = !matches!(last, Some(t) if t.elapsed() < shared.cfg.health_interval);
        if due {
            shared.health_pass();
            last = Some(Instant::now());
        }
        thread::sleep(POLL_INTERVAL.min(shared.cfg.health_interval));
    }
}
