//! Consistent-hash sharding gateway over a fleet of `revelio-serve`
//! backends.
//!
//! One backend process caps out at one machine; this crate scales the
//! serving layer out while keeping the property that made one machine
//! fast: *locality*. Every explanation is keyed by
//! `(model, graph_id, target)` — the same key the backend's artifact
//! cache and warm-start store use — and the gateway consistent-hashes
//! that key across shards ([`ring::Ring`]), so repeat traffic for an
//! instance always lands where its subgraph, flow index, and converged
//! mask already live. Random load balancing would destroy exactly that.
//!
//! Registrations replicate to every shard (any owner can serve any key),
//! backends are health-checked and failed over with deterministic
//! successor selection, and the gateway speaks the ordinary wire protocol
//! on both sides — clients cannot tell it from a single big backend,
//! except that `Stats` answers carry a fleet-rollup
//! [`revelio_server::GatewayStats`] tail.
//!
//! ```no_run
//! use revelio_gateway::{Gateway, GatewayConfig};
//!
//! let gw = Gateway::start(GatewayConfig {
//!     shards: vec!["127.0.0.1:7141".into(), "127.0.0.1:7142".into()],
//!     ..GatewayConfig::default()
//! })
//! .unwrap();
//! // Clients connect to gw.local_addr() exactly as to revelio-serve.
//! ```

#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod gateway;
pub mod ring;

pub use gateway::{Gateway, GatewayConfig, GatewayConfigError, GatewayStartError};
pub use ring::{fnv1a, route_key, Ring};
