//! Consistent-hash ring over shard indices.
//!
//! Each shard contributes `vnodes` points to a 64-bit hash circle; a key
//! is owned by the first point clockwise from its hash whose shard passes
//! the caller's liveness predicate. Virtual nodes smooth the load split
//! (with one point per shard, removing a shard would dump its whole arc
//! on a single successor), and walking past dead shards' points gives
//! deterministic failover: every key of a dead shard lands on the next
//! *live* point clockwise, and keys of live shards never move.
//!
//! Hashes are FNV-1a over little-endian field encodings, passed through
//! a splitmix64 finalizer — stable across processes and platforms, so a
//! gateway restart (or a second gateway in front of the same fleet)
//! routes identically.

use revelio_graph::Target;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// splitmix64 finalizer. Raw FNV-1a avalanches poorly on short,
/// structured inputs (sequential ids differ in few bits and land
/// clustered on the circle, skewing the load split badly); one mixing
/// round spreads them. Still fully deterministic and platform-stable.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// Hashes the explanation cache key `(model, graph_id, target)` onto the
/// ring circle. This is the same key shape the backend's artifact cache
/// and warm-start store use, so routing by it preserves locality: repeat
/// traffic for one instance always lands on the same live shard.
pub fn route_key(model: u32, graph_id: u64, target: Target) -> u64 {
    let mut buf = [0u8; 4 + 8 + 1 + 8];
    buf[0..4].copy_from_slice(&model.to_le_bytes());
    buf[4..12].copy_from_slice(&graph_id.to_le_bytes());
    match target {
        Target::Node(v) => {
            buf[12] = 0;
            buf[13..21].copy_from_slice(&(v as u64).to_le_bytes());
        }
        Target::Graph => buf[12] = 1,
    }
    mix(fnv1a(&buf))
}

/// A fixed shard set hashed onto a circle. The ring itself is immutable;
/// failover is expressed at lookup time through the liveness predicate,
/// so no rebuild (and no lock) is needed when a shard dies or recovers.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point hash, shard index)`, sorted by hash (ties broken by shard
    /// then vnode, via the construction order).
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// Builds a ring of `shards` shards with `vnodes` points each.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `vnodes` is zero (a gateway validates its
    /// config before building the ring).
    pub fn new(shards: usize, vnodes: usize) -> Ring {
        assert!(shards > 0, "ring needs at least one shard");
        assert!(vnodes > 0, "ring needs at least one vnode per shard");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                let mut buf = [0u8; 8];
                buf[0..4].copy_from_slice(&(shard as u32).to_le_bytes());
                buf[4..8].copy_from_slice(&(vnode as u32).to_le_bytes());
                points.push((mix(fnv1a(&buf)), shard));
            }
        }
        // Sort by hash; on the (astronomically unlikely) equal hash, by
        // shard index so construction is deterministic.
        points.sort_unstable();
        Ring { points, shards }
    }

    /// Number of shards the ring was built over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key` among shards accepted by `ok`: the first
    /// point clockwise from `key` whose shard passes. Returns `None` when
    /// no shard passes.
    pub fn owner_where(&self, key: u64, ok: impl Fn(usize) -> bool) -> Option<usize> {
        let start = self.points.partition_point(|&(h, _)| h < key);
        let n = self.points.len();
        for i in 0..n {
            let (_, shard) = self.points[(start + i) % n];
            if ok(shard) {
                return Some(shard);
            }
        }
        None
    }

    /// The shard owning `key` among the shards marked `true` in `alive`.
    pub fn owner(&self, key: u64, alive: &[bool]) -> Option<usize> {
        self.owner_where(key, |s| alive.get(s).copied().unwrap_or(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_alive_routes_are_stable_and_in_range() {
        let ring = Ring::new(3, 64);
        let alive = [true, true, true];
        for k in 0..1000u64 {
            let key = route_key(0, k, Target::Node(k as usize));
            let a = ring.owner(key, &alive).expect("live shard");
            let b = ring.owner(key, &alive).expect("live shard");
            assert_eq!(a, b);
            assert!(a < 3);
        }
    }

    #[test]
    fn dead_shard_keys_move_and_live_shard_keys_stay() {
        let ring = Ring::new(3, 64);
        let all = [true, true, true];
        let without_1 = [true, false, true];
        let mut moved = 0;
        for k in 0..2000u64 {
            let key = route_key(1, k, Target::Graph);
            let before = ring.owner(key, &all).expect("live");
            let after = ring.owner(key, &without_1).expect("live");
            if before == 1 {
                assert_ne!(after, 1, "dead shard still owns a key");
                moved += 1;
            } else {
                assert_eq!(before, after, "a live shard's key moved");
            }
        }
        assert!(moved > 0, "shard 1 owned nothing out of 2000 keys");
    }

    #[test]
    fn vnodes_spread_load_roughly_evenly() {
        let ring = Ring::new(3, 64);
        let alive = [true, true, true];
        let mut counts = [0usize; 3];
        for k in 0..3000u64 {
            let key = route_key(0, k, Target::Node((k % 97) as usize));
            counts[ring.owner(key, &alive).expect("live")] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            // A perfectly even split is 1000 each; vnode smoothing should
            // keep every shard within a loose 2x band.
            assert!(
                (500..=2000).contains(&c),
                "shard {shard} got {c} of 3000 keys (counts: {counts:?})"
            );
        }
    }

    #[test]
    fn no_live_shard_yields_none() {
        let ring = Ring::new(2, 8);
        assert_eq!(ring.owner(42, &[false, false]), None);
    }

    #[test]
    fn route_key_distinguishes_fields() {
        let a = route_key(0, 7, Target::Node(3));
        assert_ne!(a, route_key(1, 7, Target::Node(3)));
        assert_ne!(a, route_key(0, 8, Target::Node(3)));
        assert_ne!(a, route_key(0, 7, Target::Node(4)));
        assert_ne!(a, route_key(0, 7, Target::Graph));
    }
}
