//! `revelio-gateway`: the sharding gateway as a process.
//!
//! ```text
//! revelio-gateway --shards HOST:PORT,HOST:PORT,... [--addr HOST:PORT]
//!                 [--vnodes N] [--health-interval-ms MS] [--fail-after K]
//!                 [--forward-attempts N] [--trace-sample-rate R]
//! ```
//!
//! Fronts a fleet of `revelio-serve` backends: clients connect to the
//! gateway exactly as they would to a single backend. Prints
//! `listening on ...` plus a machine-readable `READY addr=<bound-addr>`
//! line once accepting, serves until a client sends `Shutdown` (which is
//! fanned out to the fleet first), and prints the final gateway report on
//! the way out.

use std::process::ExitCode;
use std::time::Duration;

use revelio_gateway::{Gateway, GatewayConfig};

struct Args {
    cfg: GatewayConfig,
}

const USAGE: &str = "usage: revelio-gateway --shards HOST:PORT,... [--addr HOST:PORT] \
[--vnodes N] [--health-interval-ms MS] [--fail-after K] [--forward-attempts N] \
[--trace-sample-rate R]";

fn value(argv: &[String], i: &mut usize, name: &str) -> Result<String, String> {
    *i += 1;
    argv.get(*i)
        .cloned()
        .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = GatewayConfig {
        addr: "127.0.0.1:7140".to_owned(),
        ..GatewayConfig::default()
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => cfg.addr = value(&argv, &mut i, "--addr")?,
            "--shards" => {
                cfg.shards = value(&argv, &mut i, "--shards")?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--vnodes" => {
                cfg.vnodes = value(&argv, &mut i, "--vnodes")?
                    .parse()
                    .map_err(|e| format!("--vnodes: {e}"))?;
            }
            "--health-interval-ms" => {
                let ms: u64 = value(&argv, &mut i, "--health-interval-ms")?
                    .parse()
                    .map_err(|e| format!("--health-interval-ms: {e}"))?;
                cfg.health_interval = Duration::from_millis(ms.max(10));
            }
            "--fail-after" => {
                cfg.fail_after = value(&argv, &mut i, "--fail-after")?
                    .parse()
                    .map_err(|e| format!("--fail-after: {e}"))?;
            }
            "--forward-attempts" => {
                cfg.forward_attempts = value(&argv, &mut i, "--forward-attempts")?
                    .parse()
                    .map_err(|e| format!("--forward-attempts: {e}"))?;
            }
            "--trace-sample-rate" => {
                cfg.trace_sample_rate = value(&argv, &mut i, "--trace-sample-rate")?
                    .parse()
                    .map_err(|e| format!("--trace-sample-rate: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    Ok(Args { cfg })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let gateway = match Gateway::start(args.cfg) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("revelio-gateway: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", gateway.local_addr());
    println!("READY addr={}", gateway.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    let stats = gateway.wait();
    println!("{}", stats.report());
    ExitCode::SUCCESS
}
